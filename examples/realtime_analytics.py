"""Real-time analytics pipeline (§2.2, Figure 2 — and the VeniceDB §5 shape).

Events stream in via distributed COPY, are pre-aggregated into a co-located
rollup with INSERT..SELECT, and a dashboard reads both the rollup and the
raw events — including the VeniceDB-style nested subquery whose inner
GROUP BY on the distribution column pushes down entirely.

Run with: python examples/realtime_analytics.py
"""

from repro import make_cluster
from repro.workloads import gharchive

citus = make_cluster(workers=4, shard_count=16)
session = citus.coordinator_session()

# Raw events + trigram index for substring search, like §4.2's setup.
gharchive.create_schema(session, distributed=True)
config = gharchive.ArchiveConfig(events=800, days=7)
loaded = gharchive.load_events(session, config)
print(f"ingested {loaded} events via distributed COPY")

# Incremental rollup: INSERT..SELECT on co-located tables runs fully in
# parallel on shard pairs (strategy 1 of §3.8).
result = session.execute(gharchive.TRANSFORM_QUERY)
print(f"rollup insert..select wrote {result.rowcount} rows "
      f"(strategy: co-located pushdown)")

# Dashboard query: GIN trigram index + pushdown aggregation (Fig 7b).
print("\ncommits mentioning postgres, per day:")
for day, commits in session.execute(gharchive.DASHBOARD_QUERY).rows:
    print(f"  {day}  {commits}")

# The VeniceDB pattern (§5): inner subquery groups by the distribution
# column (device/event grain) and pushes down; the outer aggregation is
# split into worker partials merged on the coordinator.
venice = session.execute("""
    SELECT repo_day, avg(event_commits) AS avg_commits_per_event
    FROM (
        SELECT event_id,
               (data->>'created_at')::date AS repo_day,
               jsonb_array_length(data->'payload'->'commits') AS event_commits
        FROM github_events
        WHERE data->>'type' = 'PushEvent'
        GROUP BY event_id, (data->>'created_at')::date,
                 jsonb_array_length(data->'payload'->'commits')
    ) AS per_event
    GROUP BY repo_day
    ORDER BY repo_day
""")
print("\nVeniceDB-style two-level aggregation:")
for row in venice.rows:
    print(f"  {row[0]}  {row[1]:.2f}")

# HyperLogLog-style approximate distinct (the hll extension VeniceDB uses).
approx = session.execute(
    "SELECT approx_count_distinct(data->>'repo') FROM github_events"
).scalar()
exact = session.execute(
    "SELECT count(DISTINCT data->>'repo') FROM github_events"
).scalar()
print(f"\ndistinct repos: exact={exact} approx={approx}")

print("\nEXPLAIN for the dashboard query:")
for line in session.execute("EXPLAIN " + gharchive.DASHBOARD_QUERY).rows:
    print("  " + line[0])
