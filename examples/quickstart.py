"""Quickstart: create a Citus cluster, distribute tables, run queries.

Run with: python examples/quickstart.py
"""

from repro import make_cluster

# A coordinator plus four workers — the paper's "Citus 4+1" shape.
citus = make_cluster(workers=4, shard_count=16)
session = citus.coordinator_session()

# Citus tables start as regular PostgreSQL tables ...
session.execute("""
    CREATE TABLE companies (
        company_id int PRIMARY KEY,
        name text NOT NULL
    )
""")
session.execute("""
    CREATE TABLE campaigns (
        company_id int REFERENCES companies (company_id),
        campaign_id int,
        name text,
        budget float,
        PRIMARY KEY (company_id, campaign_id)
    )
""")

# ... and are converted by calling Citus UDFs, exactly as in the paper.
session.execute("SELECT create_distributed_table('companies', 'company_id')")
session.execute(
    "SELECT create_distributed_table('campaigns', 'company_id',"
    " colocate_with := 'companies')"
)

# Writes are routed to shards by hashing the distribution column.
for company in range(1, 21):
    session.execute(
        "INSERT INTO companies VALUES ($1, $2)", [company, f"company-{company}"]
    )
    for campaign in range(1, 4):
        session.execute(
            "INSERT INTO campaigns VALUES ($1, $2, $3, $4)",
            [company, campaign, f"campaign-{campaign}", 100.0 * campaign],
        )

# A single-tenant query uses the router planner: the whole query ships to
# one worker with minimal overhead.
result = session.execute("""
    SELECT c.name, sum(g.budget) AS total_budget
    FROM companies c JOIN campaigns g ON c.company_id = g.company_id
    WHERE c.company_id = 7
    GROUP BY c.name
""")
print("router query:", result.rows)

# A cross-tenant analytical query uses the logical pushdown planner with
# two-phase aggregation across all shards in parallel.
result = session.execute("""
    SELECT count(DISTINCT c.company_id) FROM companies c
""")
print("companies:", result.rows)

result = session.execute("""
    SELECT g.name, avg(g.budget) AS avg_budget, count(*)
    FROM campaigns g
    GROUP BY g.name ORDER BY avg_budget DESC
""")
print("cross-tenant aggregate:")
for row in result.rows:
    print("  ", row)

# EXPLAIN shows which of the four planners handled a query.
for sql in (
    "SELECT * FROM campaigns WHERE company_id = 7 AND campaign_id = 1",
    "SELECT name, sum(budget) FROM campaigns GROUP BY name",
):
    print(f"\nEXPLAIN {sql}")
    for line in session.execute("EXPLAIN " + sql).rows:
        print("  " + line[0])

# Transactions across tenants use two-phase commit transparently.
session.execute("BEGIN")
session.execute("UPDATE campaigns SET budget = budget + 10 WHERE company_id = 3")
session.execute("UPDATE campaigns SET budget = budget - 10 WHERE company_id = 11")
session.execute("COMMIT")
print("\n2PC commits so far:", session.stats.get("citus_2pc_commits", 0))
print("planner stats:", dict(citus.coordinator_ext.stats))
