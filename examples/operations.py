"""Day-2 operations: elastic scaling, rebalancing, HA failover, and
consistent cluster-wide restore points (§3.4, §3.9).

Run with: python examples/operations.py
"""

from collections import Counter

from repro import make_cluster
from repro.citus.rebalancer import BY_DISK_SIZE, Rebalancer
from repro.net.cluster import StandbyConfig

citus = make_cluster(workers=2, shard_count=12)
session = citus.coordinator_session()

session.execute("""
    CREATE TABLE measurements (
        device_id int,
        ts int,
        metric float,
        PRIMARY KEY (device_id, ts)
    )
""")
session.execute("SELECT create_distributed_table('measurements', 'device_id')")
rows = [[d, t, float(d * t % 97)] for d in range(1, 61) for t in range(20)]
session.copy_rows("measurements", rows)
print("loaded", len(rows), "rows on 2 workers")


def placement_counts():
    ext = citus.coordinator_ext
    return Counter(ext.metadata.cache.placements.values())


print("placements:", dict(placement_counts()))

# -- Elastic scaling: add a node, rebalance shards onto it ---------------
citus.add_worker("worker3")
admin = citus.coordinator_session("admin")
moves = admin.execute("SELECT rebalance_table_shards()").scalar()
print(f"\nadded worker3; rebalancer moved {moves} shards")
print("placements:", dict(placement_counts()))
print("data intact:", session.execute("SELECT count(*) FROM measurements").scalar())

# Rebalancing by data size instead of shard count:
moves = Rebalancer(citus.coordinator_ext, BY_DISK_SIZE).rebalance(admin)
print(f"by-size rebalance: {len(moves)} additional moves")

# -- HA: standby promotion after node failure (§3.9) ---------------------
citus.cluster.enable_standby("worker1", StandbyConfig(mode="synchronous"))
before = session.execute("SELECT count(*) FROM measurements").scalar()
citus.cluster.fail_node("worker1")
citus.cluster.promote_standby("worker1")
citus.coordinator_ext._utility_connections.clear()
after = session.execute("SELECT count(*) FROM measurements").scalar()
print(f"\nfailover: count before={before} after={after}"
      f" (synchronous replication loses nothing)")
print("failover events:", citus.cluster.failover_log)

# -- Consistent restore point across all nodes (§3.9) --------------------
admin.execute("SELECT citus_create_restore_point('before_bad_deploy')")
session.execute("DELETE FROM measurements WHERE device_id <= 30")
print("\nafter bad deploy:", session.execute(
    "SELECT count(*) FROM measurements").scalar())
citus.restore_to_point("before_bad_deploy")
restored = citus.coordinator_session("post_restore")
print("after restore:", restored.execute(
    "SELECT count(*) FROM measurements").scalar())
