"""High-performance CRUD (§2.3 / §4.3): scaling reads, writes, and
connections.

Shows the YCSB-style key-value pattern on distributed tables, the
fast-path planner's minimal overhead, scaling the coordinator out by
syncing metadata to every worker ("each worker node assumes the role of
coordinator", §3.2.1), and PgBouncer-style pooling between nodes.

Run with: python examples/high_performance_crud.py
"""

from repro import make_cluster
from repro.net.pool import ConnectionPool
from repro.workloads import ycsb

citus = make_cluster(workers=4, shard_count=32)
session = citus.coordinator_session()

# Documents with a JSONB payload, distributed by key (§2.3's shape).
ycsb.create_schema(session, distributed=True)
config = ycsb.YcsbConfig(records=500)
loaded = ycsb.load_data(session, config)
print(f"loaded {loaded} documents")

# Single-key CRUD goes through the fast path planner: one task, no
# query-tree analysis.
key = ycsb.key_name(123)
print("\nEXPLAIN single-key read:")
for line in session.execute(
    "EXPLAIN SELECT * FROM usertable WHERE ycsb_key = $1", [key]
).rows:
    print("  " + line[0])

import dataclasses
workload_a = dataclasses.replace(config, read_fraction=0.5)
driver = ycsb.YcsbDriver(session, workload_a)
stats = driver.run(300)
print(f"\nworkload A via coordinator: {stats.operations} ops"
      f" ({stats.reads} reads / {stats.updates} updates, {stats.read_misses} misses)")
print("fast path queries:",
      citus.coordinator_ext.stats.get("fast_path_queries"))

# Scale the coordinator out: sync metadata so every node plans queries.
citus.enable_metadata_sync()
sessions = [citus.session_on(name) for name in citus.worker_names()]
balanced = ycsb.YcsbDriver(sessions, workload_a, seed_offset=1)
stats = balanced.run(300)
print(f"\nworkload A load-balanced over {len(sessions)} worker-coordinators:"
      f" {stats.operations} ops, {stats.read_misses} misses")

# Each worker-coordinator fans out intra-cluster connections; PgBouncer
# between the nodes bounds them (§3.2.1).
pool = ConnectionPool(citus.cluster.node("worker1"), pool_size=4,
                      max_client_conn=100)
clients = [pool.client() for _ in range(20)]
for i, client in enumerate(clients):
    client.execute("SELECT * FROM usertable WHERE ycsb_key = $1",
                   [ycsb.key_name(i)])
print(f"\npgbouncer: 20 clients served by ≤{pool.pool_size} server sessions"
      f" (peak leases: {pool.peak_leases})")

# Parallel scan across all documents (Table 2: parallel distributed SELECT
# is 'useful for performing scans and analytics across a large number of
# objects').
count = session.execute(
    "SELECT count(*) FROM usertable WHERE field0 LIKE 'a%'"
).scalar()
print(f"\ndocuments with field0 starting 'a': {count}")
