"""Time-series: distributed tables + locally partitioned shards (§6).

The related-work section describes the composition pattern real-time
analytics users run in production: Citus distributes a table by device,
and pg_partman partitions each *shard* by time on its worker — giving
distributed parallelism, bounded index sizes, and time-range pruning at
the same time.

Run with: python examples/timeseries_partitioning.py
"""

from repro import make_cluster
from repro.partman import install_partman

citus = make_cluster(workers=2, shard_count=8)

# Both extensions live on every node, installed through the same hook API.
for name in citus.cluster.node_names():
    install_partman(citus.cluster.node(name))

session = citus.coordinator_session()
session.execute("""
    CREATE TABLE sensor_data (
        device_id int,
        ts int,
        reading float,
        PRIMARY KEY (device_id, ts)
    )
""")
session.execute("SELECT create_distributed_table('sensor_data', 'device_id')")

# Stream a week of readings (ts buckets of 100 = "days").
rows = [
    [device, day * 100 + tick, float(device * day + tick)]
    for device in range(1, 13)
    for day in range(7)
    for tick in range(0, 100, 25)
]
session.copy_rows("sensor_data", rows)
print(f"ingested {len(rows)} readings across 8 shards")

# Partition every shard locally by time on its worker.
ext = citus.coordinator_ext
for shard in ext.metadata.cache.get_table("sensor_data").shards:
    node = ext.metadata.cache.placement_node(shard.shardid)
    ext.worker_connection(node).execute(
        f"SELECT create_parent('{shard.shard_name}', 'ts', 100)"
    )
print("every shard is now locally time-partitioned (width 100)")

# Distributed query planning is unchanged; inside each shard, partman
# prunes to the partitions that overlap the time filter.
day3 = session.execute(
    "SELECT count(*), avg(reading) FROM sensor_data"
    " WHERE ts >= 300 AND ts < 400"
).first()
print(f"day 3: {day3[0]} readings, avg {day3[1]:.1f}")

per_device = session.execute("""
    SELECT device_id, max(reading)
    FROM sensor_data
    WHERE ts >= 500
    GROUP BY device_id
    ORDER BY device_id LIMIT 5
""").rows
print("per-device maxima since day 5:", per_device)

# Retention: dropping old data is a pruned DELETE inside each shard.
deleted = session.execute("DELETE FROM sensor_data WHERE ts < 100")
print(f"retention pass deleted {deleted.rowcount} day-0 readings")
print("remaining:", session.execute("SELECT count(*) FROM sensor_data").scalar())

# Peek at one worker's local layout.
some_shard = ext.metadata.cache.get_table("sensor_data").shards[0]
node = ext.metadata.cache.placement_node(some_shard.shardid)
worker = citus.cluster.node(node)
children = sorted(t for t in worker.catalog.tables
                  if t.startswith(some_shard.shard_name + "_p"))
print(f"\n{node} layout for {some_shard.shard_name}: {children}")
