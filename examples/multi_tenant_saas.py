"""Multi-tenant SaaS example (§2.1 workload pattern).

Demonstrates the capabilities Table 2 lists for the MT column: co-located
distributed tables with foreign keys, reference tables, query routing by
tenant, JSONB tenant-specific fields, cross-tenant analytics, distributed
schema changes, and tenant isolation via the rebalancer's constraint
policy (the "noisy neighbor" story).

Run with: python examples/multi_tenant_saas.py
"""

from repro import make_cluster
from repro.citus.rebalancer import RebalanceStrategy, Rebalancer, move_shard

citus = make_cluster(workers=4, shard_count=16)
session = citus.coordinator_session()

# -- Schema: the paper's Figure 1 shape (tenants own stores of data) ------
session.execute("""
    CREATE TABLE plans (
        plan_id int PRIMARY KEY,
        name text,
        monthly_price float
    )
""")
session.execute("""
    CREATE TABLE tenants (
        tenant_id int PRIMARY KEY,
        name text NOT NULL,
        plan_id int,
        settings jsonb
    )
""")
session.execute("""
    CREATE TABLE tickets (
        tenant_id int,
        ticket_id int,
        subject text,
        status text,
        custom jsonb,
        PRIMARY KEY (tenant_id, ticket_id),
        FOREIGN KEY (tenant_id) REFERENCES tenants (tenant_id)
    )
""")
session.execute("""
    CREATE TABLE ticket_events (
        tenant_id int,
        ticket_id int,
        event_id int,
        kind text,
        PRIMARY KEY (tenant_id, ticket_id, event_id)
    )
""")

# Shared lookup data becomes a reference table; tenant data is distributed
# and co-located on tenant_id so joins and foreign keys stay local.
session.execute("SELECT create_reference_table('plans')")
session.execute("SELECT create_distributed_table('tenants', 'tenant_id')")
session.execute(
    "SELECT create_distributed_table('tickets', 'tenant_id', colocate_with := 'tenants')"
)
session.execute(
    "SELECT create_distributed_table('ticket_events', 'tenant_id',"
    " colocate_with := 'tenants')"
)

session.execute("INSERT INTO plans VALUES (1, 'free', 0), (2, 'pro', 49.0)")
for tenant in range(1, 31):
    session.execute(
        "INSERT INTO tenants VALUES ($1, $2, $3, $4)",
        [tenant, f"tenant-{tenant}", 1 + tenant % 2, {"theme": "dark"}],
    )
    for ticket in range(1, 6):
        session.execute(
            "INSERT INTO tickets VALUES ($1, $2, $3, $4, $5)",
            [tenant, ticket, f"issue {ticket}", "open" if ticket % 2 else "closed",
             {"priority": ticket % 3}],
        )

# -- Tenant-scoped OLTP: everything routes to one worker -----------------
result = session.execute("""
    SELECT t.name, p.name AS plan, count(k.ticket_id) AS open_tickets
    FROM tenants t
    JOIN plans p ON t.plan_id = p.plan_id
    JOIN tickets k ON k.tenant_id = t.tenant_id
    WHERE t.tenant_id = 7 AND k.status = 'open'
    GROUP BY t.name, p.name
""")
print("tenant 7 dashboard:", result.rows)

# Tenant-specific fields live in JSONB (the paper's §2.1 recommendation).
session.execute(
    "UPDATE tickets SET custom = custom || '{\"escalated\": true}'::jsonb"
    " WHERE tenant_id = 7 AND ticket_id = 1"
)
print("jsonb field:", session.execute(
    "SELECT custom->>'escalated' FROM tickets WHERE tenant_id = 7 AND ticket_id = 1"
).rows)

# -- Multi-statement tenant transaction: single-node, full ACID ----------
session.execute("BEGIN")
session.execute(
    "INSERT INTO tickets VALUES (7, 100, 'urgent', 'open', '{}')")
session.execute(
    "INSERT INTO ticket_events VALUES (7, 100, 1, 'created')")
session.execute("COMMIT")

# -- Cross-tenant analytics: parallel co-located joins -------------------
result = session.execute("""
    SELECT p.name, count(*) AS tickets
    FROM tickets k
    JOIN tenants t ON k.tenant_id = t.tenant_id
    JOIN plans p ON t.plan_id = p.plan_id
    GROUP BY p.name ORDER BY tickets DESC
""")
print("tickets by plan:", result.rows)

# -- Distributed schema change -------------------------------------------
session.execute("ALTER TABLE tickets ADD COLUMN assignee text")
session.execute("CREATE INDEX tickets_status_idx ON tickets (tenant_id, status)")
print("schema change propagated to all shards")

# -- Tenant isolation: move a noisy tenant's shard to its own node -------
ext = citus.coordinator_ext
dist = ext.metadata.cache.get_table("tenants")
from repro.engine.datum import hash_value

noisy = 7
index = dist.shard_index_for_hash(hash_value(noisy))
shard = dist.shards[index]
before = ext.metadata.cache.placement_node(shard.shardid)
target = next(n for n in citus.worker_names() if n != before)
admin = citus.coordinator_session("admin")
move_shard(ext, admin, shard.shardid, target)
print(f"tenant {noisy}: shard {shard.shardid} moved {before} -> {target}")
print("tenant 7 still reachable:", session.execute(
    "SELECT count(*) FROM tickets WHERE tenant_id = 7").scalar())

# A custom rebalance policy can keep the noisy tenant isolated.
pinned = {shard.shardid: target}


def keep_isolated(ext, shard_interval, node):
    want = pinned.get(shard_interval.shardid)
    return node == want if want else True


strategy = RebalanceStrategy(name="isolate-noisy", shard_allowed_on_node=keep_isolated)
moves = Rebalancer(ext, strategy).rebalance(admin)
print(f"rebalanced with isolation policy: {len(moves)} shard moves")
