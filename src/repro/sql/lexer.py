"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token`. Handles:

- identifiers (optionally double-quoted, lower-cased when unquoted,
  exactly like PostgreSQL),
- keywords (identified lazily by the parser — the lexer only tags WORD),
- string literals with ``''`` escaping and E'' strings,
- numeric literals (int / float / scientific),
- positional parameters ``$1`` and named parameters ``:name``,
- multi-character operators: ``::``, ``<=``, ``>=``, ``<>``, ``!=``, ``||``,
  ``->``, ``->>``, ``#>``, ``#>>``, ``@>``, ``<@``, ``~*``, ``!~``, ``:=``,
- comments ``--`` and ``/* */``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SyntaxErrorSQL

WORD = "word"
STRING = "string"
NUMBER = "number"
OP = "op"
PARAM = "param"
EOF = "eof"

# Longest-match-first operator table.
_OPERATORS = [
    "->>", "#>>", "::", "<=", ">=", "<>", "!=", "||", "->", "#>", "@>",
    "<@", "~*", "!~", ":=", "(", ")", ",", ";", "+", "-", "*", "/", "%",
    "=", "<", ">", ".", "[", "]", "~", "?",
]


@dataclass
class Token:
    kind: str
    value: object
    pos: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SyntaxErrorSQL("unterminated block comment")
            i = end + 2
            continue
        if ch == "'" or (ch in "eE" and i + 1 < n and sql[i + 1] == "'"):
            escapes = ch in "eE"
            if escapes:
                i += 1
            value, i = _read_string(sql, i, escapes)
            tokens.append(Token(STRING, value, i))
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end < 0:
                raise SyntaxErrorSQL("unterminated quoted identifier")
            tokens.append(Token(WORD, sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch == "$":
            j = i + 1
            while j < n and sql[j].isdigit():
                j += 1
            if j > i + 1:
                tokens.append(Token(PARAM, int(sql[i + 1 : j]), i))
                i = j
                continue
            # dollar-quoted string $$...$$ / $tag$...$tag$
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j < n and sql[j] == "$":
                tag = sql[i : j + 1]
                end = sql.find(tag, j + 1)
                if end < 0:
                    raise SyntaxErrorSQL("unterminated dollar-quoted string")
                tokens.append(Token(STRING, sql[j + 1 : end], i))
                i = end + len(tag)
                continue
            raise SyntaxErrorSQL(f"unexpected character {ch!r} at {i}")
        if ch == ":" and i + 1 < n and (sql[i + 1].isalpha() or sql[i + 1] == "_"):
            # Named parameter :name (pgbench style), unless it is a cast `::`
            if sql[i + 1] != ":":
                j = i + 1
                while j < n and (sql[j].isalnum() or sql[j] == "_"):
                    j += 1
                tokens.append(Token(PARAM, sql[i + 1 : j], i))
                i = j
                continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_" or sql[j] == "$"):
                j += 1
            tokens.append(Token(WORD, sql[i:j].lower(), i))
            i = j
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(OP, op, i))
                i += len(op)
                break
        else:
            raise SyntaxErrorSQL(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(EOF, None, n))
    return tokens


def _read_string(sql: str, i: int, escapes: bool = False) -> tuple[str, int]:
    """Read a string literal. Standard SQL strings treat backslash as an
    ordinary character; only E'' strings (``escapes=True``) process escape
    sequences — matching PostgreSQL's standard_conforming_strings=on."""
    assert sql[i] == "'"
    parts = []
    i += 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        if escapes and ch == "\\" and i + 1 < n and sql[i + 1] in "'\\nrt":
            esc = sql[i + 1]
            parts.append({"n": "\n", "r": "\r", "t": "\t"}.get(esc, esc))
            i += 2
            continue
        parts.append(ch)
        i += 1
    raise SyntaxErrorSQL("unterminated string literal")


def _read_number(sql: str, i: int):
    j = i
    n = len(sql)
    seen_dot = seen_exp = False
    while j < n:
        ch = sql[j]
        if ch.isdigit():
            j += 1
        elif ch == "." and not seen_dot and not seen_exp:
            # Don't consume `1..10`-style ranges or method-ish dots.
            if j + 1 < n and sql[j + 1] == ".":
                break
            seen_dot = True
            j += 1
        elif ch in "eE" and not seen_exp and j + 1 < n and (
            sql[j + 1].isdigit() or sql[j + 1] in "+-"
        ):
            seen_exp = True
            j += 2 if sql[j + 1] in "+-" else 1
        else:
            break
    text = sql[i:j]
    value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
    return value, j
