"""SQL front-end: lexer, AST, parser, deparser."""

from . import ast
from .deparse import deparse, quote_literal
from .lexer import tokenize
from .parser import parse, parse_expression, parse_one

__all__ = ["ast", "tokenize", "parse", "parse_one", "parse_expression", "deparse", "quote_literal"]
