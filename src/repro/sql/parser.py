"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees.

The accepted dialect is the PostgreSQL subset the paper's workloads use —
TPC-C/TPC-H/YCSB/pgbench-style queries, jsonb path operators, DDL, COPY,
two-phase-commit transaction control, and the ``SELECT udf(...)`` idiom
through which Citus exposes ``create_distributed_table`` and friends.
"""

from __future__ import annotations

from ..errors import SyntaxErrorSQL
from . import ast as A
from .lexer import EOF, NUMBER, OP, PARAM, STRING, WORD, Token, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_JSON_OPS = {"->", "->>", "#>", "#>>", "@>", "<@"}
_ADDITIVE_OPS = {"+", "-", "||"} | _JSON_OPS
_TYPED_LITERAL_TYPES = {"date", "timestamp", "timestamptz", "numeric", "jsonb", "uuid", "text"}

# Words that terminate an expression/target list when seen as a bare keyword.
_RESERVED_STOP = {
    "from", "where", "group", "having", "order", "limit", "offset", "union",
    "intersect", "except", "on", "using", "join", "inner", "left", "right",
    "full", "cross", "as", "asc", "desc", "nulls", "and", "or", "not", "when",
    "then", "else", "end", "returning", "set", "values", "for", "into",
}


def parse(sql: str) -> list[A.Statement]:
    """Parse a semicolon-separated SQL script into a list of statements."""
    return Parser(tokenize(sql)).parse_statements()


def parse_one(sql: str) -> A.Statement:
    """Parse exactly one statement (trailing semicolon allowed)."""
    stmts = parse(sql)
    if len(stmts) != 1:
        raise SyntaxErrorSQL(f"expected a single statement, got {len(stmts)}")
    return stmts[0]


def parse_expression(text: str) -> A.Expr:
    """Parse a standalone scalar expression (used by custom rebalancer
    policies and index expressions supplied through the API)."""
    parser = Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ---------------------------------------------------------------- utils

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def at_word(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == WORD and tok.value in words

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == OP and tok.value in ops

    def accept_word(self, *words: str) -> bool:
        if self.at_word(*words):
            self.next()
            return True
        return False

    def accept_op(self, *ops: str) -> bool:
        if self.at_op(*ops):
            self.next()
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            raise SyntaxErrorSQL(f"expected {word.upper()!r}, got {self.peek()!r}")

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SyntaxErrorSQL(f"expected {op!r}, got {self.peek()!r}")

    def expect_name(self) -> str:
        tok = self.next()
        if tok.kind != WORD:
            raise SyntaxErrorSQL(f"expected identifier, got {tok!r}")
        return tok.value

    def expect_eof(self) -> None:
        if self.peek().kind != EOF:
            raise SyntaxErrorSQL(f"unexpected trailing input: {self.peek()!r}")

    # ----------------------------------------------------------- statements

    def parse_statements(self) -> list[A.Statement]:
        stmts = []
        while self.peek().kind != EOF:
            if self.accept_op(";"):
                continue
            stmts.append(self.parse_statement())
            if self.peek().kind != EOF:
                self.expect_op(";")
        return stmts

    def parse_statement(self) -> A.Statement:
        tok = self.peek()
        if tok.kind != WORD and not self.at_op("("):
            raise SyntaxErrorSQL(f"unexpected token {tok!r}")
        word = tok.value if tok.kind == WORD else "("
        if word in ("select", "with", "("):
            return self.parse_select()
        handler = {
            "insert": self.parse_insert,
            "update": self.parse_update,
            "delete": self.parse_delete,
            "create": self.parse_create,
            "drop": self.parse_drop,
            "alter": self.parse_alter,
            "truncate": self.parse_truncate,
            "begin": self.parse_begin,
            "start": self.parse_begin,
            "commit": self.parse_commit,
            "end": self.parse_commit,
            "rollback": self.parse_rollback,
            "abort": self.parse_rollback,
            "prepare": self.parse_prepare_transaction,
            "copy": self.parse_copy,
            "vacuum": self.parse_vacuum,
            "explain": self.parse_explain,
            "set": self.parse_set,
            "show": self.parse_show,
            "call": self.parse_call,
        }.get(word)
        if handler is None:
            raise SyntaxErrorSQL(f"unsupported statement starting with {word.upper()!r}")
        return handler()

    # ----------------------------------------------------------- SELECT

    def parse_select(self) -> A.Select:
        ctes = []
        if self.accept_word("with"):
            self.accept_word("recursive")
            while True:
                name = self.expect_name()
                col_names = []
                if self.accept_op("("):
                    col_names = self._parse_name_list()
                    self.expect_op(")")
                self.expect_word("as")
                self.expect_op("(")
                query = self.parse_select()
                self.expect_op(")")
                ctes.append(A.CommonTableExpr(name, query, col_names))
                if not self.accept_op(","):
                    break
        select = self._parse_select_core()
        select.ctes = ctes
        while self.at_word("union", "intersect", "except"):
            op = self.next().value
            if self.accept_word("all"):
                op += " all"
            else:
                self.accept_word("distinct")
            rhs = self._parse_select_core()
            select.set_ops.append((op, rhs))
        select = self._parse_select_trailers(select)
        return select

    def _parse_select_core(self) -> A.Select:
        if self.accept_op("("):
            inner = self.parse_select()
            self.expect_op(")")
            return inner
        self.expect_word("select")
        select = A.Select()
        if self.accept_word("distinct"):
            select.distinct = True
            if self.accept_word("on"):
                self.expect_op("(")
                select.distinct_on = self._parse_expr_list()
                self.expect_op(")")
        self.accept_word("all")
        select.targets = self._parse_target_list()
        if self.accept_word("from"):
            select.from_items = self._parse_from_list()
        if self.accept_word("where"):
            select.where = self.parse_expr()
        if self.accept_word("group"):
            self.expect_word("by")
            select.group_by = self._parse_expr_list()
        if self.accept_word("having"):
            select.having = self.parse_expr()
        # ORDER BY / LIMIT may belong to this core when not inside a set op;
        # trailers are also parsed by the caller for set-op queries.
        select = self._parse_select_trailers(select)
        return select

    def _parse_select_trailers(self, select: A.Select) -> A.Select:
        if self.accept_word("order"):
            self.expect_word("by")
            select.order_by = self._parse_sort_list()
        if self.accept_word("limit"):
            if not self.accept_word("all"):
                select.limit = self.parse_expr()
        if self.accept_word("offset"):
            select.offset = self.parse_expr()
        if self.accept_word("for"):
            self.expect_word("update")
            select.for_update = True
        return select

    def _parse_target_list(self) -> list:
        targets = []
        while True:
            if self.at_op("*"):
                self.next()
                targets.append(A.TargetEntry(A.Star()))
            else:
                expr = self.parse_expr()
                alias = None
                if self.accept_word("as"):
                    alias = self.expect_name()
                elif self.peek().kind == WORD and self.peek().value not in _RESERVED_STOP:
                    alias = self.next().value
                if isinstance(expr, A.ColumnRef) and expr.name == "*":
                    targets.append(A.TargetEntry(A.Star(table=expr.table)))
                else:
                    targets.append(A.TargetEntry(expr, alias))
            if not self.accept_op(","):
                return targets

    def _parse_sort_list(self) -> list:
        keys = []
        while True:
            expr = self.parse_expr()
            ascending = True
            if self.accept_word("asc"):
                pass
            elif self.accept_word("desc"):
                ascending = False
            nulls_first = None
            if self.accept_word("nulls"):
                if self.accept_word("first"):
                    nulls_first = True
                else:
                    self.expect_word("last")
                    nulls_first = False
            keys.append(A.SortKey(expr, ascending, nulls_first))
            if not self.accept_op(","):
                return keys

    # ----------------------------------------------------------- FROM

    def _parse_from_list(self) -> list:
        items = [self._parse_join_tree()]
        while self.accept_op(","):
            items.append(self._parse_join_tree())
        return items

    def _parse_join_tree(self) -> A.FromItem:
        left = self._parse_from_primary()
        while True:
            join_type = None
            if self.accept_word("join") or self.accept_word("inner"):
                if self.peek(-1).value == "inner":
                    self.expect_word("join")
                join_type = "inner"
            elif self.at_word("left", "right", "full"):
                join_type = self.next().value
                self.accept_word("outer")
                self.expect_word("join")
            elif self.accept_word("cross"):
                self.expect_word("join")
                join_type = "cross"
            if join_type is None:
                return left
            right = self._parse_from_primary()
            condition, using = None, []
            if join_type != "cross":
                if self.accept_word("on"):
                    condition = self.parse_expr()
                elif self.accept_word("using"):
                    self.expect_op("(")
                    using = self._parse_name_list()
                    self.expect_op(")")
            left = A.JoinExpr(left, right, join_type, condition, using)

    def _parse_from_primary(self) -> A.FromItem:
        if self.accept_op("("):
            # Either a subquery or a parenthesized join tree.
            if self.at_word("select", "with"):
                query = self.parse_select()
                self.expect_op(")")
                self.accept_word("as")
                alias = self.expect_name()
                if self.accept_op("("):
                    # column alias list — record as renames via query targets
                    names = self._parse_name_list()
                    self.expect_op(")")
                    _apply_column_aliases(query, names)
                return A.SubqueryRef(query, alias)
            tree = self._parse_join_tree()
            self.expect_op(")")
            return tree
        name = self.expect_name()
        if self.at_op("("):
            # set-returning function in FROM
            self.pos -= 1
            func = self.parse_expr()
            alias = name
            col_names = []
            if self.accept_word("as"):
                alias = self.expect_name()
            elif self.peek().kind == WORD and self.peek().value not in _RESERVED_STOP:
                alias = self.next().value
            if self.accept_op("("):
                col_names = self._parse_name_list()
                self.expect_op(")")
            if not isinstance(func, A.FuncCall):
                raise SyntaxErrorSQL("expected function call in FROM")
            return A.FunctionRef(func, alias, col_names)
        alias = None
        if self.accept_word("as"):
            alias = self.expect_name()
        elif self.peek().kind == WORD and self.peek().value not in _RESERVED_STOP:
            alias = self.next().value
        return A.TableRef(name, alias)

    def _parse_name_list(self) -> list[str]:
        names = [self.expect_name()]
        while self.accept_op(","):
            names.append(self.expect_name())
        return names

    def _parse_expr_list(self) -> list[A.Expr]:
        exprs = [self.parse_expr()]
        while self.accept_op(","):
            exprs.append(self.parse_expr())
        return exprs

    # ----------------------------------------------------------- DML

    def parse_insert(self) -> A.Insert:
        self.expect_word("insert")
        self.expect_word("into")
        table = self._parse_qualified_name()
        columns = []
        if self.at_op("(") and not self._paren_starts_select():
            self.expect_op("(")
            columns = self._parse_name_list()
            self.expect_op(")")
        stmt = A.Insert(table, columns)
        if self.accept_word("values"):
            while True:
                self.expect_op("(")
                stmt.rows.append(self._parse_expr_list())
                self.expect_op(")")
                if not self.accept_op(","):
                    break
        elif self.at_word("select", "with") or self.at_op("("):
            stmt.select = self.parse_select()
        else:
            self.expect_word("default")
            self.expect_word("values")
        if self.accept_word("on"):
            self.expect_word("conflict")
            conflict = A.OnConflict()
            if self.accept_op("("):
                conflict.columns = self._parse_name_list()
                self.expect_op(")")
            self.expect_word("do")
            if self.accept_word("nothing"):
                conflict.action = "nothing"
            else:
                self.expect_word("update")
                self.expect_word("set")
                conflict.action = "update"
                conflict.updates = self._parse_assignment_list()
            stmt.on_conflict = conflict
        if self.accept_word("returning"):
            stmt.returning = self._parse_target_list()
        return stmt

    def _paren_starts_select(self) -> bool:
        return self.at_op("(") and self.peek(1).kind == WORD and self.peek(1).value in (
            "select",
            "with",
        )

    def _parse_assignment_list(self) -> list:
        assignments = []
        while True:
            col = self.expect_name()
            self.expect_op("=")
            assignments.append((col, self.parse_expr()))
            if not self.accept_op(","):
                return assignments

    def parse_update(self) -> A.Update:
        self.expect_word("update")
        table = self._parse_qualified_name()
        alias = None
        if self.accept_word("as"):
            alias = self.expect_name()
        elif self.peek().kind == WORD and self.peek().value != "set":
            alias = self.next().value
        self.expect_word("set")
        stmt = A.Update(table, alias, self._parse_assignment_list())
        if self.accept_word("where"):
            stmt.where = self.parse_expr()
        if self.accept_word("returning"):
            stmt.returning = self._parse_target_list()
        return stmt

    def parse_delete(self) -> A.Delete:
        self.expect_word("delete")
        self.expect_word("from")
        table = self._parse_qualified_name()
        alias = None
        if self.accept_word("as"):
            alias = self.expect_name()
        elif self.peek().kind == WORD and self.peek().value not in _RESERVED_STOP:
            alias = self.next().value
        stmt = A.Delete(table, alias)
        if self.accept_word("where"):
            stmt.where = self.parse_expr()
        if self.accept_word("returning"):
            stmt.returning = self._parse_target_list()
        return stmt

    def _parse_qualified_name(self) -> str:
        name = self.expect_name()
        while self.accept_op("."):
            name = name + "." + self.expect_name()
        return name

    # ----------------------------------------------------------- DDL

    def parse_create(self) -> A.Statement:
        self.expect_word("create")
        if self.accept_word("unique"):
            self.expect_word("index")
            return self._parse_create_index(unique=True)
        if self.accept_word("index"):
            return self._parse_create_index(unique=False)
        self.accept_word("temporary")
        self.accept_word("temp")
        self.expect_word("table")
        if_not_exists = False
        if self.accept_word("if"):
            self.expect_word("not")
            self.expect_word("exists")
            if_not_exists = True
        name = self._parse_qualified_name()
        stmt = A.CreateTable(name, if_not_exists=if_not_exists)
        self.expect_op("(")
        while True:
            if self.at_word("primary"):
                self.next()
                self.expect_word("key")
                self.expect_op("(")
                stmt.primary_key = self._parse_name_list()
                self.expect_op(")")
            elif self.at_word("unique") and self.peek(1).kind == OP:
                self.next()
                self.expect_op("(")
                stmt.unique_constraints.append(self._parse_name_list())
                self.expect_op(")")
            elif self.at_word("foreign"):
                self.next()
                self.expect_word("key")
                stmt.foreign_keys.append(self._parse_fk_body())
            elif self.at_word("constraint"):
                self.next()
                cname = self.expect_name()
                if self.accept_word("primary"):
                    self.expect_word("key")
                    self.expect_op("(")
                    stmt.primary_key = self._parse_name_list()
                    self.expect_op(")")
                elif self.accept_word("unique"):
                    self.expect_op("(")
                    stmt.unique_constraints.append(self._parse_name_list())
                    self.expect_op(")")
                else:
                    self.expect_word("foreign")
                    self.expect_word("key")
                    fk = self._parse_fk_body()
                    fk.name = cname
                    stmt.foreign_keys.append(fk)
            else:
                stmt.columns.append(self._parse_column_def())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        if self.accept_word("using"):
            stmt.using = self.expect_name()
        return stmt

    def _parse_fk_body(self) -> A.ForeignKeyDef:
        self.expect_op("(")
        columns = self._parse_name_list()
        self.expect_op(")")
        self.expect_word("references")
        ref_table = self._parse_qualified_name()
        ref_columns = []
        if self.accept_op("("):
            ref_columns = self._parse_name_list()
            self.expect_op(")")
        # ON DELETE / ON UPDATE actions are accepted and ignored.
        while self.accept_word("on"):
            self.next()  # delete | update
            self.next()  # cascade | restrict | set (null/default handled below)
            self.accept_word("null")
            self.accept_word("default")
        return A.ForeignKeyDef(columns, ref_table, ref_columns)

    def _parse_column_def(self) -> A.ColumnDef:
        name = self.expect_name()
        type_name = self._parse_type_name()
        col = A.ColumnDef(name, type_name)
        while True:
            if self.accept_word("not"):
                self.expect_word("null")
                col.not_null = True
            elif self.accept_word("null"):
                pass
            elif self.accept_word("primary"):
                self.expect_word("key")
                col.primary_key = True
            elif self.accept_word("unique"):
                col.unique = True
            elif self.accept_word("default"):
                col.default = self.parse_expr()
            elif self.accept_word("references"):
                ref_table = self._parse_qualified_name()
                ref_col = None
                if self.accept_op("("):
                    ref_col = self.expect_name()
                    self.expect_op(")")
                col.references = (ref_table, ref_col)
                while self.accept_word("on"):
                    self.next()
                    self.next()
                    self.accept_word("null")
                    self.accept_word("default")
            elif self.accept_word("collate"):
                self.next()
            elif self.accept_word("check"):
                self.expect_op("(")
                depth = 1
                while depth:
                    tok = self.next()
                    if tok.kind == OP and tok.value == "(":
                        depth += 1
                    elif tok.kind == OP and tok.value == ")":
                        depth -= 1
            else:
                return col

    def _parse_type_name(self) -> str:
        parts = [self.expect_name()]
        # multi-word types: double precision, timestamp with time zone, ...
        while self.at_word("precision", "varying", "with", "without", "time", "zone"):
            parts.append(self.next().value)
        name = " ".join(parts)
        if self.accept_op("("):
            while not self.accept_op(")"):
                self.next()
        while self.at_op("["):
            self.next()
            self.expect_op("]")
            name += "[]"
        return name

    def _parse_create_index(self, unique: bool) -> A.CreateIndex:
        if_not_exists = False
        if self.accept_word("if"):
            self.expect_word("not")
            self.expect_word("exists")
            if_not_exists = True
        name = None
        if not self.at_word("on"):
            name = self.expect_name()
        self.expect_word("on")
        table = self._parse_qualified_name()
        using = "btree"
        if self.accept_word("using"):
            using = self.expect_name()
        self.expect_op("(")
        exprs = []
        while True:
            if self.accept_op("("):
                expr = self.parse_expr()
                self.expect_op(")")
            else:
                expr = self.parse_expr()
            # opclass name (e.g. gin_trgm_ops) and sort direction are skipped
            while self.peek().kind == WORD and self.peek().value not in ("asc", "desc"):
                if self.peek(1).kind == OP and self.peek(1).value in (",", ")"):
                    self.next()
                else:
                    break
            self.accept_word("asc") or self.accept_word("desc")
            exprs.append(expr)
            if not self.accept_op(","):
                break
        self.expect_op(")")
        # partial index WHERE clause accepted (stored? keep simple: ignore)
        if self.accept_word("where"):
            self.parse_expr()
        if name is None:
            name = f"{table}_idx_{id(exprs) % 10_000}"
        return A.CreateIndex(name, table, exprs, unique, using, if_not_exists)

    def parse_drop(self) -> A.Statement:
        self.expect_word("drop")
        if self.accept_word("index"):
            if_exists = False
            if self.accept_word("if"):
                self.expect_word("exists")
                if_exists = True
            return A.DropIndex(self.expect_name(), if_exists)
        self.expect_word("table")
        if_exists = False
        if self.accept_word("if"):
            self.expect_word("exists")
            if_exists = True
        names = [self._parse_qualified_name()]
        while self.accept_op(","):
            names.append(self._parse_qualified_name())
        cascade = self.accept_word("cascade")
        self.accept_word("restrict")
        return A.DropTable(names, if_exists, cascade)

    def parse_alter(self) -> A.AlterTable:
        self.expect_word("alter")
        self.expect_word("table")
        self.accept_word("only")
        table = self._parse_qualified_name()
        if self.accept_word("add"):
            if self.accept_word("column"):
                return A.AlterTable(table, "add_column", column=self._parse_column_def())
            if self.accept_word("constraint"):
                cname = self.expect_name()
                self.expect_word("foreign")
                self.expect_word("key")
                fk = self._parse_fk_body()
                fk.name = cname
                return A.AlterTable(table, "add_foreign_key", foreign_key=fk)
            if self.accept_word("foreign"):
                self.expect_word("key")
                return A.AlterTable(table, "add_foreign_key", foreign_key=self._parse_fk_body())
            return A.AlterTable(table, "add_column", column=self._parse_column_def())
        if self.accept_word("drop"):
            self.accept_word("column")
            return A.AlterTable(table, "drop_column", column_name=self.expect_name())
        raise SyntaxErrorSQL("unsupported ALTER TABLE action")

    def parse_truncate(self) -> A.TruncateTable:
        self.expect_word("truncate")
        self.accept_word("table")
        names = [self._parse_qualified_name()]
        while self.accept_op(","):
            names.append(self._parse_qualified_name())
        return A.TruncateTable(names)

    # ------------------------------------------------- transaction control

    def parse_begin(self) -> A.Begin:
        self.next()  # begin | start
        self.accept_word("transaction") or self.accept_word("work")
        while self.at_word("isolation", "read"):
            # ISOLATION LEVEL ... / READ ONLY|WRITE accepted and ignored
            self.next()
            while self.peek().kind == WORD and not self.at_op(";"):
                if self.at_word("isolation", "read"):
                    break
                self.next()
        return A.Begin()

    def parse_commit(self) -> A.Statement:
        self.next()
        self.accept_word("transaction") or self.accept_word("work")
        if self.accept_word("prepared"):
            return A.CommitPrepared(self._gid())
        return A.Commit()

    def parse_rollback(self) -> A.Statement:
        self.next()
        self.accept_word("transaction") or self.accept_word("work")
        if self.accept_word("prepared"):
            return A.RollbackPrepared(self._gid())
        return A.Rollback()

    def parse_prepare_transaction(self) -> A.PrepareTransaction:
        self.expect_word("prepare")
        self.expect_word("transaction")
        return A.PrepareTransaction(self._gid())

    def _gid(self) -> str:
        tok = self.next()
        if tok.kind != STRING:
            raise SyntaxErrorSQL("expected transaction gid string")
        return tok.value

    # ------------------------------------------------------------ utility

    def parse_copy(self) -> A.Copy:
        self.expect_word("copy")
        table = self._parse_qualified_name()
        columns = []
        if self.accept_op("("):
            columns = self._parse_name_list()
            self.expect_op(")")
        direction = "from" if self.accept_word("from") else ("to" if self.accept_word("to") else None)
        if direction is None:
            raise SyntaxErrorSQL("expected FROM or TO in COPY")
        # source/target: STDIN | STDOUT | 'filename'
        if not (self.accept_word("stdin") or self.accept_word("stdout")):
            if self.peek().kind == STRING:
                self.next()
        options = {}
        if self.accept_word("with"):
            if self.accept_op("("):
                while not self.accept_op(")"):
                    key = self.expect_name()
                    if self.peek().kind in (WORD, STRING, NUMBER):
                        options[key] = self.next().value
                    else:
                        options[key] = True
                    self.accept_op(",")
            else:
                while self.peek().kind == WORD:
                    options[self.next().value] = True
        elif self.at_word("csv", "format"):
            options[self.next().value] = True
        return A.Copy(table, columns, direction, options)

    def parse_vacuum(self) -> A.Vacuum:
        self.expect_word("vacuum")
        full = self.accept_word("full")
        analyze = self.accept_word("analyze")
        table = None
        if self.peek().kind == WORD:
            table = self._parse_qualified_name()
        return A.Vacuum(table, full, analyze)

    def parse_explain(self) -> A.Explain:
        self.expect_word("explain")
        analyze = self.accept_word("analyze")
        self.accept_word("verbose")
        return A.Explain(self.parse_statement(), analyze)

    def parse_set(self) -> A.SetVar:
        self.expect_word("set")
        is_local = self.accept_word("local")
        self.accept_word("session")
        name = self._parse_qualified_name()
        if not (self.accept_word("to") or self.accept_op("=")):
            raise SyntaxErrorSQL("expected TO or = in SET")
        tok = self.next()
        value = tok.value
        if tok.kind == WORD:
            value = {"true": True, "false": False, "on": True, "off": False}.get(value, value)
        return A.SetVar(name, value, is_local)

    def parse_show(self) -> A.ShowVar:
        self.expect_word("show")
        return A.ShowVar(self._parse_qualified_name())

    def parse_call(self) -> A.CallProcedure:
        self.expect_word("call")
        name = self._parse_qualified_name()
        self.expect_op("(")
        args = []
        if not self.at_op(")"):
            args = self._parse_expr_list()
        self.expect_op(")")
        return A.CallProcedure(name, args)

    # --------------------------------------------------------- expressions

    def parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self.accept_word("or"):
            left = A.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_not()
        while self.accept_word("and"):
            left = A.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> A.Expr:
        if self.accept_word("not"):
            return A.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> A.Expr:
        left = self._parse_additive_chain()
        while True:
            if self.peek().kind == OP and self.peek().value in _COMPARISON_OPS:
                op = self.next().value
                if op == "!=":
                    op = "<>"
                if self.at_word("any", "all") and self.peek(1).kind == OP:
                    kind = self.next().value
                    self.expect_op("(")
                    if self.at_word("select", "with"):
                        sub = self.parse_select()
                        self.expect_op(")")
                        left = A.SubqueryExpr(sub, kind, left, op)
                    else:
                        arr = self.parse_expr()
                        self.expect_op(")")
                        left = A.FuncCall("_any_all", [left, A.Literal(op), A.Literal(kind), arr])
                    continue
                left = A.BinaryOp(op, left, self._parse_additive_chain())
                continue
            if self.at_word("is"):
                self.next()
                negated = self.accept_word("not")
                if self.accept_word("null"):
                    left = A.IsNull(left, negated)
                elif self.accept_word("distinct"):
                    self.expect_word("from")
                    right = self._parse_additive_chain()
                    not_distinct = A.FuncCall("_not_distinct", [left, right])
                    left = not_distinct if negated else A.UnaryOp("not", not_distinct)
                else:
                    val = self.next().value  # true | false
                    test = A.BinaryOp("is", left, A.Literal(val == "true"))
                    left = A.UnaryOp("not", test) if negated else test
                continue
            negated = False
            save = self.pos
            if self.accept_word("not"):
                negated = True
            if self.accept_word("between"):
                low = self._parse_additive_chain()
                self.expect_word("and")
                high = self._parse_additive_chain()
                left = A.BetweenExpr(left, low, high, negated)
                continue
            if self.accept_word("in"):
                self.expect_op("(")
                if self.at_word("select", "with"):
                    sub = self.parse_select()
                    self.expect_op(")")
                    left = A.SubqueryExpr(sub, "in", left, negated=negated)
                else:
                    items = self._parse_expr_list()
                    self.expect_op(")")
                    left = A.InList(left, items, negated)
                continue
            if self.at_word("like", "ilike"):
                op = self.next().value
                right = self._parse_additive_chain()
                node = A.BinaryOp(op, left, right)
                left = A.UnaryOp("not", node) if negated else node
                continue
            if negated:
                self.pos = save
                return left
            if self.peek().kind == OP and self.peek().value in ("~", "~*", "!~"):
                op = self.next().value
                left = A.BinaryOp(op, left, self._parse_additive_chain())
                continue
            return left

    def _parse_additive_chain(self) -> A.Expr:
        left = self._parse_multiplicative()
        while True:
            if self.peek().kind == OP and self.peek().value in _ADDITIVE_OPS:
                op = self.next().value
                left = A.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_unary()
        while self.peek().kind == OP and self.peek().value in ("*", "/", "%"):
            op = self.next().value
            left = A.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> A.Expr:
        if self.accept_op("-"):
            operand = self._parse_unary()
            if isinstance(operand, A.Literal) and isinstance(operand.value, (int, float)):
                return A.Literal(-operand.value)
            return A.UnaryOp("-", operand)
        if self.accept_op("+"):
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            if self.accept_op("::"):
                expr = A.Cast(expr, self._parse_type_name())
            elif self.at_op("["):
                self.next()
                index = self.parse_expr()
                self.expect_op("]")
                expr = A.FuncCall("_subscript", [expr, index])
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == NUMBER:
            self.next()
            return A.Literal(tok.value)
        if tok.kind == STRING:
            self.next()
            return A.Literal(tok.value)
        if tok.kind == PARAM:
            self.next()
            if isinstance(tok.value, int):
                return A.Param(index=tok.value)
            return A.Param(name=tok.value)
        if tok.kind == OP and tok.value == "(":
            self.next()
            if self.at_word("select", "with"):
                sub = self.parse_select()
                self.expect_op(")")
                return A.SubqueryExpr(sub, "scalar")
            expr = self.parse_expr()
            if self.accept_op(","):
                # Row constructor — represent as array expression.
                elements = [expr] + self._parse_expr_list()
                self.expect_op(")")
                return A.ArrayExpr(elements)
            self.expect_op(")")
            return expr
        if tok.kind != WORD:
            raise SyntaxErrorSQL(f"unexpected token {tok!r} in expression")
        word = tok.value
        if word == "null":
            self.next()
            return A.Literal(None)
        if word == "true":
            self.next()
            return A.Literal(True)
        if word == "false":
            self.next()
            return A.Literal(False)
        if word == "case":
            return self._parse_case()
        if word == "exists":
            self.next()
            self.expect_op("(")
            sub = self.parse_select()
            self.expect_op(")")
            return A.SubqueryExpr(sub, "exists")
        if word == "array":
            self.next()
            if self.accept_op("["):
                elements = [] if self.at_op("]") else self._parse_expr_list()
                self.expect_op("]")
                return A.ArrayExpr(elements)
            self.expect_op("(")
            sub = self.parse_select()
            self.expect_op(")")
            return A.SubqueryExpr(sub, "array")
        if word == "interval":
            self.next()
            val = self.next()
            return A.FuncCall("interval", [A.Literal(val.value)])
        if word in ("cast",):
            self.next()
            self.expect_op("(")
            operand = self.parse_expr()
            self.expect_word("as")
            type_name = self._parse_type_name()
            self.expect_op(")")
            return A.Cast(operand, type_name)
        if word == "extract":
            self.next()
            self.expect_op("(")
            if self.peek().kind == STRING:
                fld = self.next().value
            else:
                fld = self.expect_name()
            self.expect_word("from")
            src = self.parse_expr()
            self.expect_op(")")
            return A.FuncCall("extract", [A.Literal(fld), src])
        if word in ("current_date", "current_timestamp", "now", "current_time", "localtimestamp"):
            self.next()
            if self.accept_op("("):
                self.expect_op(")")
            return A.FuncCall("now" if word != "current_date" else "current_date", [])
        if word in _TYPED_LITERAL_TYPES and self.peek(1).kind == STRING:
            # typed literal: date '1998-12-01', timestamp '...', etc.
            self.next()
            value = self.next().value
            return A.Cast(A.Literal(value), word)
        # identifier: column ref, qualified ref, or function call
        name = self.expect_name()
        if self.at_op("("):
            return self._parse_func_call(name)
        if self.accept_op("."):
            if self.at_op("*"):
                self.next()
                return A.ColumnRef("*", table=name)
            col = self.expect_name()
            if self.at_op("("):
                return self._parse_func_call(f"{name}.{col}")
            return A.ColumnRef(col, table=name)
        return A.ColumnRef(name)

    def _parse_func_call(self, name: str) -> A.Expr:
        self.expect_op("(")
        func = A.FuncCall(name)
        if self.at_op("*"):
            self.next()
            func.args.append(A.Star())
        elif not self.at_op(")"):
            if self.accept_word("distinct"):
                func.distinct = True
            func.args.append(self._parse_func_arg())
            while self.accept_op(","):
                func.args.append(self._parse_func_arg())
            if self.accept_word("order"):
                self.expect_word("by")
                func.order_by = self._parse_sort_list()
        self.expect_op(")")
        if self.accept_word("filter"):
            self.expect_op("(")
            self.expect_word("where")
            func.filter = self.parse_expr()
            self.expect_op(")")
        if self.accept_word("over"):
            self.expect_op("(")
            window = A.WindowDef()
            if self.accept_word("partition"):
                self.expect_word("by")
                window.partition_by = self._parse_expr_list()
            if self.accept_word("order"):
                self.expect_word("by")
                window.order_by = self._parse_sort_list()
            self.expect_op(")")
            func.over = window
        return func

    def _parse_func_arg(self) -> A.Expr:
        # named argument: name := value  (Citus UDF convention)
        if (
            self.peek().kind == WORD
            and self.peek(1).kind == OP
            and self.peek(1).value == ":="
        ):
            name = self.expect_name()
            self.expect_op(":=")
            value = self.parse_expr()
            return A.FuncCall("_named_arg", [A.Literal(name), value])
        return self.parse_expr()

    def _parse_case(self) -> A.CaseExpr:
        self.expect_word("case")
        case = A.CaseExpr()
        if not self.at_word("when"):
            case.operand = self.parse_expr()
        while self.accept_word("when"):
            cond = self.parse_expr()
            self.expect_word("then")
            case.whens.append((cond, self.parse_expr()))
        if self.accept_word("else"):
            case.else_result = self.parse_expr()
        self.expect_word("end")
        return case


def _apply_column_aliases(query: A.Select, names: list[str]) -> None:
    for i, name in enumerate(names):
        if i < len(query.targets) and isinstance(query.targets[i], A.TargetEntry):
            query.targets[i].alias = name
