"""Deparser: turn an AST back into SQL text.

The distributed layer plans a query on the coordinator, rewrites table names
to shard names (``orders`` → ``orders_102008``), and ships the rewritten
query text to the worker over the (simulated) wire — precisely the
mechanism the paper describes for the fast-path/router/pushdown planners.
The deparser guarantees round-trip: ``parse(deparse(parse(q)))`` is
structurally identical to ``parse(q)``.
"""

from __future__ import annotations

import datetime as _dt
import json

from ..errors import ReproError
from . import ast as A


def deparse(node) -> str:
    """Render a statement or expression AST node as SQL text."""
    fn = _DISPATCH.get(type(node))
    if fn is None:
        raise ReproError(f"cannot deparse node type {type(node).__name__}")
    return fn(node)


def quote_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (dict, list)):
        return quote_literal(json.dumps(value, sort_keys=True, default=str)) + "::jsonb"
    if isinstance(value, _dt.datetime):
        return f"'{value.isoformat()}'::timestamp"
    if isinstance(value, _dt.date):
        return f"'{value.isoformat()}'::date"
    return "'" + str(value).replace("'", "''") + "'"


# ----------------------------------------------------------------- exprs


def _literal(n: A.Literal) -> str:
    return quote_literal(n.value)


def _param(n: A.Param) -> str:
    return f"${n.index}" if n.index is not None else f":{n.name}"


def _column_ref(n: A.ColumnRef) -> str:
    return f"{n.table}.{n.name}" if n.table else n.name


def _star(n: A.Star) -> str:
    return f"{n.table}.*" if n.table else "*"


_TIGHT_OPS = {"->", "->>", "#>", "#>>", "::"}


def _binary_op(n: A.BinaryOp) -> str:
    op = n.op.upper() if n.op in ("and", "or", "like", "ilike", "is") else n.op
    left, right = _paren(n.left), _paren(n.right)
    if n.op in _TIGHT_OPS:
        return f"{left}{n.op}{right}"
    return f"{left} {op} {right}"


def _paren(expr) -> str:
    text = deparse(expr)
    if isinstance(expr, (A.BinaryOp, A.CaseExpr, A.BetweenExpr, A.SubqueryExpr, A.UnaryOp)):
        return f"({text})"
    return text


def _unary_op(n: A.UnaryOp) -> str:
    if n.op == "not":
        return f"NOT {_paren(n.operand)}"
    return f"{n.op}{_paren(n.operand)}"


def _cast(n: A.Cast) -> str:
    return f"{_paren(n.operand)}::{n.type_name}"


def _func_call(n: A.FuncCall) -> str:
    if n.name == "_named_arg":
        return f"{n.args[0].value} := {deparse(n.args[1])}"
    if n.name == "_subscript":
        return f"{_paren(n.args[0])}[{deparse(n.args[1])}]"
    if n.name == "extract" and len(n.args) == 2 and isinstance(n.args[0], A.Literal):
        return f"extract({n.args[0].value} FROM {deparse(n.args[1])})"
    if n.name == "interval" and len(n.args) == 1 and isinstance(n.args[0], A.Literal):
        return f"interval '{n.args[0].value}'"
    args = ", ".join(deparse(a) for a in n.args)
    prefix = "DISTINCT " if n.distinct else ""
    order = ""
    if n.order_by:
        order = " ORDER BY " + ", ".join(_sort_key(k) for k in n.order_by)
    name = n.name
    if n.agg_phase == "partial":
        name = f"{n.name}"  # partial aggregates keep the name; phase is plan state
    text = f"{name}({prefix}{args}{order})"
    if n.filter is not None:
        text += f" FILTER (WHERE {deparse(n.filter)})"
    if n.over is not None:
        parts = []
        if n.over.partition_by:
            parts.append(
                "PARTITION BY " + ", ".join(deparse(e) for e in n.over.partition_by)
            )
        if n.over.order_by:
            parts.append(
                "ORDER BY " + ", ".join(_sort_key(k) for k in n.over.order_by)
            )
        text += f" OVER ({' '.join(parts)})"
    return text


def _case_expr(n: A.CaseExpr) -> str:
    parts = ["CASE"]
    if n.operand is not None:
        parts.append(deparse(n.operand))
    for cond, result in n.whens:
        parts.append(f"WHEN {deparse(cond)} THEN {deparse(result)}")
    if n.else_result is not None:
        parts.append(f"ELSE {deparse(n.else_result)}")
    parts.append("END")
    return " ".join(parts)


def _array_expr(n: A.ArrayExpr) -> str:
    return "ARRAY[" + ", ".join(deparse(e) for e in n.elements) + "]"


def _in_list(n: A.InList) -> str:
    items = ", ".join(deparse(i) for i in n.items)
    neg = "NOT " if n.negated else ""
    return f"{_paren(n.operand)} {neg}IN ({items})"


def _is_null(n: A.IsNull) -> str:
    return f"{_paren(n.operand)} IS {'NOT ' if n.negated else ''}NULL"


def _between(n: A.BetweenExpr) -> str:
    neg = "NOT " if n.negated else ""
    return f"{_paren(n.operand)} {neg}BETWEEN {_paren(n.low)} AND {_paren(n.high)}"


def _subquery_expr(n: A.SubqueryExpr) -> str:
    sub = deparse(n.query)
    if n.kind == "scalar":
        return f"({sub})"
    if n.kind == "exists":
        return f"EXISTS ({sub})"
    if n.kind == "in":
        neg = "NOT " if n.negated else ""
        return f"{_paren(n.operand)} {neg}IN ({sub})"
    if n.kind in ("any", "all"):
        return f"{_paren(n.operand)} {n.op} {n.kind.upper()} ({sub})"
    if n.kind == "array":
        return f"ARRAY({sub})"
    raise ReproError(f"unknown subquery kind {n.kind}")


# ----------------------------------------------------------------- FROM


def _table_ref(n: A.TableRef) -> str:
    return f"{n.name} AS {n.alias}" if n.alias and n.alias != n.name else n.name


def _subquery_ref(n: A.SubqueryRef) -> str:
    return f"({deparse(n.query)}) AS {n.alias}"


def _function_ref(n: A.FunctionRef) -> str:
    cols = f" ({', '.join(n.column_names)})" if n.column_names else ""
    return f"{deparse(n.func)} AS {n.alias}{cols}"


def _join_expr(n: A.JoinExpr) -> str:
    jt = {"inner": "JOIN", "left": "LEFT JOIN", "right": "RIGHT JOIN",
          "full": "FULL JOIN", "cross": "CROSS JOIN"}[n.join_type]
    left = deparse(n.left)
    right = deparse(n.right)
    if isinstance(n.right, A.JoinExpr):
        right = f"({right})"
    text = f"{left} {jt} {right}"
    if n.condition is not None:
        text += f" ON {deparse(n.condition)}"
    elif n.using:
        text += f" USING ({', '.join(n.using)})"
    return text


# ------------------------------------------------------------ statements


def _sort_key(k: A.SortKey) -> str:
    text = deparse(k.expr)
    if not k.ascending:
        text += " DESC"
    if k.nulls_first is True:
        text += " NULLS FIRST"
    elif k.nulls_first is False:
        text += " NULLS LAST"
    return text


def _target(t) -> str:
    if isinstance(t, A.Star):
        return _star(t)
    text = deparse(t.expr)
    if t.alias:
        text += f" AS {t.alias}"
    return text


def _select(n: A.Select) -> str:
    parts = []
    if n.ctes:
        ctes = ", ".join(
            f"{c.name}{'(' + ', '.join(c.column_names) + ')' if c.column_names else ''}"
            f" AS ({deparse(c.query)})"
            for c in n.ctes
        )
        parts.append(f"WITH {ctes}")
    select_kw = "SELECT"
    if n.distinct:
        select_kw += " DISTINCT"
        if n.distinct_on:
            select_kw += " ON (" + ", ".join(deparse(e) for e in n.distinct_on) + ")"
    parts.append(select_kw + " " + ", ".join(_target(t) for t in n.targets))
    if n.from_items:
        parts.append("FROM " + ", ".join(deparse(f) for f in n.from_items))
    if n.where is not None:
        parts.append("WHERE " + deparse(n.where))
    if n.group_by:
        parts.append("GROUP BY " + ", ".join(deparse(e) for e in n.group_by))
    if n.having is not None:
        parts.append("HAVING " + deparse(n.having))
    for op, rhs in n.set_ops:
        parts.append(op.upper() + " " + deparse(rhs))
    if n.order_by:
        parts.append("ORDER BY " + ", ".join(_sort_key(k) for k in n.order_by))
    if n.limit is not None:
        parts.append("LIMIT " + deparse(n.limit))
    if n.offset is not None:
        parts.append("OFFSET " + deparse(n.offset))
    if n.for_update:
        parts.append("FOR UPDATE")
    return " ".join(parts)


def _insert(n: A.Insert) -> str:
    parts = [f"INSERT INTO {n.table}"]
    if n.columns:
        parts.append("(" + ", ".join(n.columns) + ")")
    if n.select is not None:
        parts.append(deparse(n.select))
    elif n.rows:
        rows = ", ".join("(" + ", ".join(deparse(v) for v in row) + ")" for row in n.rows)
        parts.append("VALUES " + rows)
    else:
        parts.append("DEFAULT VALUES")
    if n.on_conflict is not None:
        oc = "ON CONFLICT"
        if n.on_conflict.columns:
            oc += " (" + ", ".join(n.on_conflict.columns) + ")"
        if n.on_conflict.action == "nothing":
            oc += " DO NOTHING"
        else:
            sets = ", ".join(f"{c} = {deparse(e)}" for c, e in n.on_conflict.updates)
            oc += " DO UPDATE SET " + sets
        parts.append(oc)
    if n.returning:
        parts.append("RETURNING " + ", ".join(_target(t) for t in n.returning))
    return " ".join(parts)


def _update(n: A.Update) -> str:
    table = f"{n.table} AS {n.alias}" if n.alias else n.table
    sets = ", ".join(f"{c} = {deparse(e)}" for c, e in n.assignments)
    text = f"UPDATE {table} SET {sets}"
    if n.where is not None:
        text += " WHERE " + deparse(n.where)
    if n.returning:
        text += " RETURNING " + ", ".join(_target(t) for t in n.returning)
    return text


def _delete(n: A.Delete) -> str:
    table = f"{n.table} AS {n.alias}" if n.alias else n.table
    text = f"DELETE FROM {table}"
    if n.where is not None:
        text += " WHERE " + deparse(n.where)
    if n.returning:
        text += " RETURNING " + ", ".join(_target(t) for t in n.returning)
    return text


def _column_def(c: A.ColumnDef) -> str:
    text = f"{c.name} {c.type_name}"
    if c.primary_key:
        text += " PRIMARY KEY"
    if c.unique:
        text += " UNIQUE"
    if c.not_null:
        text += " NOT NULL"
    if c.default is not None:
        text += f" DEFAULT {deparse(c.default)}"
    if c.references is not None:
        ref_table, ref_col = c.references
        text += f" REFERENCES {ref_table}"
        if ref_col:
            text += f" ({ref_col})"
    return text


def _create_table(n: A.CreateTable) -> str:
    items = [_column_def(c) for c in n.columns]
    if n.primary_key:
        items.append("PRIMARY KEY (" + ", ".join(n.primary_key) + ")")
    for cols in n.unique_constraints:
        items.append("UNIQUE (" + ", ".join(cols) + ")")
    for fk in n.foreign_keys:
        ref_cols = f" ({', '.join(fk.ref_columns)})" if fk.ref_columns else ""
        items.append(
            f"FOREIGN KEY ({', '.join(fk.columns)}) REFERENCES {fk.ref_table}{ref_cols}"
        )
    ine = "IF NOT EXISTS " if n.if_not_exists else ""
    text = f"CREATE TABLE {ine}{n.name} (" + ", ".join(items) + ")"
    if n.using:
        text += f" USING {n.using}"
    return text


def _create_index(n: A.CreateIndex) -> str:
    unique = "UNIQUE " if n.unique else ""
    ine = "IF NOT EXISTS " if n.if_not_exists else ""
    using = f" USING {n.using}" if n.using != "btree" else ""
    exprs = ", ".join(
        f"({deparse(e)})" if not isinstance(e, A.ColumnRef) else deparse(e) for e in n.exprs
    )
    return f"CREATE {unique}INDEX {ine}{n.name} ON {n.table}{using} ({exprs})"


def _alter_table(n: A.AlterTable) -> str:
    if n.action == "add_column":
        return f"ALTER TABLE {n.table} ADD COLUMN {_column_def(n.column)}"
    if n.action == "drop_column":
        return f"ALTER TABLE {n.table} DROP COLUMN {n.column_name}"
    if n.action == "add_foreign_key":
        fk = n.foreign_key
        ref_cols = f" ({', '.join(fk.ref_columns)})" if fk.ref_columns else ""
        named = f"CONSTRAINT {fk.name} " if fk.name else ""
        return (
            f"ALTER TABLE {n.table} ADD {named}FOREIGN KEY ({', '.join(fk.columns)})"
            f" REFERENCES {fk.ref_table}{ref_cols}"
        )
    raise ReproError(f"cannot deparse ALTER TABLE action {n.action}")


_DISPATCH = {
    A.Literal: _literal,
    A.Param: _param,
    A.ColumnRef: _column_ref,
    A.Star: _star,
    A.BinaryOp: _binary_op,
    A.UnaryOp: _unary_op,
    A.Cast: _cast,
    A.FuncCall: _func_call,
    A.CaseExpr: _case_expr,
    A.ArrayExpr: _array_expr,
    A.InList: _in_list,
    A.IsNull: _is_null,
    A.BetweenExpr: _between,
    A.SubqueryExpr: _subquery_expr,
    A.TableRef: _table_ref,
    A.SubqueryRef: _subquery_ref,
    A.FunctionRef: _function_ref,
    A.JoinExpr: _join_expr,
    A.Select: _select,
    A.Insert: _insert,
    A.Update: _update,
    A.Delete: _delete,
    A.CreateTable: _create_table,
    A.CreateIndex: _create_index,
    A.AlterTable: _alter_table,
    A.DropTable: lambda n: "DROP TABLE "
    + ("IF EXISTS " if n.if_exists else "")
    + ", ".join(n.names)
    + (" CASCADE" if n.cascade else ""),
    A.DropIndex: lambda n: f"DROP INDEX {'IF EXISTS ' if n.if_exists else ''}{n.name}",
    A.TruncateTable: lambda n: "TRUNCATE TABLE " + ", ".join(n.names),
    A.Begin: lambda n: "BEGIN",
    A.Commit: lambda n: "COMMIT",
    A.Rollback: lambda n: "ROLLBACK",
    A.PrepareTransaction: lambda n: f"PREPARE TRANSACTION '{n.gid}'",
    A.CommitPrepared: lambda n: f"COMMIT PREPARED '{n.gid}'",
    A.RollbackPrepared: lambda n: f"ROLLBACK PREPARED '{n.gid}'",
    A.Copy: lambda n: f"COPY {n.table}"
    + (f" ({', '.join(n.columns)})" if n.columns else "")
    + (" FROM STDIN" if n.direction == "from" else " TO STDOUT"),
    A.Vacuum: lambda n: "VACUUM" + (f" {n.table}" if n.table else ""),
    A.SetVar: lambda n: f"SET {'LOCAL ' if n.is_local else ''}{n.name} = {n.value}",
    A.ShowVar: lambda n: f"SHOW {n.name}",
    A.CallProcedure: lambda n: f"CALL {n.name}(" + ", ".join(deparse(a) for a in n.args) + ")",
}
