"""Abstract syntax tree for the SQL dialect understood by the engine.

The node set covers the PostgreSQL subset that the Citus paper's workloads
need: full SELECT (joins, subqueries, grouping, ordering, set operations),
DML with RETURNING, DDL, transaction control including the two-phase-commit
statements (PREPARE TRANSACTION / COMMIT PREPARED / ROLLBACK PREPARED),
COPY, CALL, and utility statements.

All nodes are frozen-ish dataclasses (mutable for planner rewrites where
noted). ``render``/``deparse`` lives in :mod:`repro.sql.deparse` because the
distributed layer must turn planned queries back into SQL text to ship to
worker nodes, exactly as Citus rewrites table names to shard names.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional


class Node:
    """Base class for all AST nodes."""

    def copy(self):
        """Shallow-ish structural copy (deep over Node children and lists)."""
        return _copy_node(self)


def _copy_node(obj):
    if isinstance(obj, Node):
        kwargs = {}
        for f in dataclasses.fields(obj):
            kwargs[f.name] = _copy_node(getattr(obj, f.name))
        return type(obj)(**kwargs)
    if isinstance(obj, list):
        return [_copy_node(v) for v in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_node(v) for v in obj)
    return obj


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class Literal(Expr):
    value: object

    def __repr__(self):
        return f"Literal({self.value!r})"


@dataclass
class Param(Expr):
    """A query parameter: ``$1`` (1-based index) or ``:name``."""

    index: Optional[int] = None
    name: Optional[str] = None


@dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    @property
    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``alias.*`` in a target list or ``count(*)``."""

    table: Optional[str] = None


@dataclass
class WindowDef(Node):
    """OVER (PARTITION BY ... ORDER BY ...) — frames default to
    PostgreSQL's (range between unbounded preceding and current row)."""

    partition_by: list = field(default_factory=list)
    order_by: list = field(default_factory=list)  # list[SortKey]


@dataclass
class FuncCall(Expr):
    name: str
    args: list = field(default_factory=list)
    distinct: bool = False
    # Set by the local planner when the aggregate should emit/consume
    # partial state (distributed two-phase aggregation).
    agg_phase: Optional[str] = None  # None | "partial" | "merge"
    order_by: list = field(default_factory=list)
    filter: Optional[Expr] = None
    # Present when this is a window function call (fn(...) OVER (...)).
    over: Optional[WindowDef] = None


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass
class Cast(Expr):
    operand: Expr
    type_name: str


@dataclass
class CaseExpr(Expr):
    whens: list = field(default_factory=list)  # list[(cond_expr, result_expr)]
    else_result: Optional[Expr] = None
    # CASE <operand> WHEN <val> ... form keeps the operand here.
    operand: Optional[Expr] = None


@dataclass
class ArrayExpr(Expr):
    elements: list = field(default_factory=list)


@dataclass
class InList(Expr):
    operand: Expr
    items: list = field(default_factory=list)
    negated: bool = False


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class BetweenExpr(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class SubqueryExpr(Expr):
    """Scalar subquery, ``IN (SELECT ..)``, ``EXISTS (SELECT ..)``, or
    ``expr op ANY/ALL (SELECT ..)``."""

    query: "Select"
    kind: str = "scalar"  # scalar | in | exists | any | all
    operand: Optional[Expr] = None
    op: Optional[str] = None
    negated: bool = False


# --------------------------------------------------------------------------
# FROM clause
# --------------------------------------------------------------------------


@dataclass
class FromItem(Node):
    pass


@dataclass
class TableRef(FromItem):
    name: str
    alias: Optional[str] = None

    @property
    def ref_name(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef(FromItem):
    query: "Select"
    alias: str


@dataclass
class FunctionRef(FromItem):
    """FROM generate_series(..) AS alias — set-returning function source."""

    func: FuncCall
    alias: str
    column_names: list = field(default_factory=list)


@dataclass
class JoinExpr(FromItem):
    left: FromItem
    right: FromItem
    join_type: str = "inner"  # inner | left | right | full | cross
    condition: Optional[Expr] = None
    using: list = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Statement(Node):
    pass


@dataclass
class TargetEntry(Node):
    expr: Expr
    alias: Optional[str] = None


@dataclass
class SortKey(Node):
    expr: Expr
    ascending: bool = True
    nulls_first: Optional[bool] = None


@dataclass
class CommonTableExpr(Node):
    name: str
    query: "Select"
    column_names: list = field(default_factory=list)


@dataclass
class Select(Statement):
    targets: list = field(default_factory=list)  # list[TargetEntry | Star]
    from_items: list = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list = field(default_factory=list)  # list[SortKey]
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    distinct_on: list = field(default_factory=list)
    ctes: list = field(default_factory=list)  # list[CommonTableExpr]
    # Set operation chain: ("union"|"union all"|"intersect"|"except", Select)
    set_ops: list = field(default_factory=list)
    for_update: bool = False


@dataclass
class OnConflict(Node):
    columns: list = field(default_factory=list)
    action: str = "nothing"  # nothing | update
    updates: list = field(default_factory=list)  # list[(col, expr)]


@dataclass
class Insert(Statement):
    table: str
    columns: list = field(default_factory=list)
    rows: list = field(default_factory=list)  # list[list[Expr]]
    select: Optional[Select] = None
    on_conflict: Optional[OnConflict] = None
    returning: list = field(default_factory=list)


@dataclass
class Update(Statement):
    table: str
    alias: Optional[str] = None
    assignments: list = field(default_factory=list)  # list[(col, expr)]
    where: Optional[Expr] = None
    returning: list = field(default_factory=list)


@dataclass
class Delete(Statement):
    table: str
    alias: Optional[str] = None
    where: Optional[Expr] = None
    returning: list = field(default_factory=list)


@dataclass
class ColumnDef(Node):
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Optional[Expr] = None
    references: Optional[tuple] = None  # (table, column)


@dataclass
class ForeignKeyDef(Node):
    columns: list
    ref_table: str
    ref_columns: list
    name: Optional[str] = None


@dataclass
class CreateTable(Statement):
    name: str
    columns: list = field(default_factory=list)  # list[ColumnDef]
    primary_key: list = field(default_factory=list)
    foreign_keys: list = field(default_factory=list)  # list[ForeignKeyDef]
    unique_constraints: list = field(default_factory=list)  # list[list[str]]
    if_not_exists: bool = False
    using: Optional[str] = None  # access method: heap (default) | columnar


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    exprs: list = field(default_factory=list)  # list[Expr]
    unique: bool = False
    using: str = "btree"  # btree | gin
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    names: list = field(default_factory=list)
    if_exists: bool = False
    cascade: bool = False


@dataclass
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass
class TruncateTable(Statement):
    names: list = field(default_factory=list)


@dataclass
class AlterTable(Statement):
    table: str
    action: str = ""  # add_column | drop_column | add_foreign_key | set_default
    column: Optional[ColumnDef] = None
    column_name: Optional[str] = None
    foreign_key: Optional[ForeignKeyDef] = None
    default: Optional[Expr] = None


@dataclass
class Begin(Statement):
    pass


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    pass


@dataclass
class PrepareTransaction(Statement):
    gid: str = ""


@dataclass
class CommitPrepared(Statement):
    gid: str = ""


@dataclass
class RollbackPrepared(Statement):
    gid: str = ""


@dataclass
class Copy(Statement):
    table: str
    columns: list = field(default_factory=list)
    direction: str = "from"  # from | to
    options: dict = field(default_factory=dict)


@dataclass
class Vacuum(Statement):
    table: Optional[str] = None
    full: bool = False
    analyze: bool = False


@dataclass
class Explain(Statement):
    statement: Statement = None
    analyze: bool = False


@dataclass
class SetVar(Statement):
    name: str = ""
    value: object = None
    is_local: bool = False


@dataclass
class ShowVar(Statement):
    name: str = ""


@dataclass
class CallProcedure(Statement):
    name: str = ""
    args: list = field(default_factory=list)


def walk(node):
    """Yield every Node in the tree rooted at ``node`` (pre-order)."""
    if isinstance(node, Node):
        yield node
        for f in dataclasses.fields(node):
            yield from walk(getattr(node, f.name))
    elif isinstance(node, (list, tuple)):
        for item in node:
            yield from walk(item)


def transform(node, fn):
    """Rebuild the tree bottom-up, replacing each Node with ``fn(node)``.

    ``fn`` receives a node whose children have already been transformed and
    returns the (possibly new) node.
    """
    if isinstance(node, Node):
        kwargs = {}
        for f in dataclasses.fields(node):
            kwargs[f.name] = transform(getattr(node, f.name), fn)
        return fn(type(node)(**kwargs))
    if isinstance(node, list):
        return [transform(v, fn) for v in node]
    if isinstance(node, tuple):
        return tuple(transform(v, fn) for v in node)
    return node
