"""pg_partman-style time partitioning — a *second* extension (§6).

The related-work section notes that "Citus does work with pg_partman …
many real-time analytics applications that use Citus also use pg_partman
on top of distributed tables, in which case the individual shards are
locally partitioned to get both the benefits of distributed tables and
time partitioning."

This module reproduces that composition: ``install_partman(instance)``
registers a planner hook and a UDF through the *same* extension API Citus
uses. ``create_parent('table', 'column', width)`` turns a table into a
range-partitioned parent over an integer time column:

- INSERT/COPY on the parent routes rows to child partitions
  ``<parent>_p<start>`` (created on demand per interval);
- SELECT on the parent scans only the children whose interval overlaps the
  query's partition-column predicates (partition pruning);
- UPDATE/DELETE fan out to the (pruned) children.

Because both extensions speak through hooks, a Citus worker with partman
installed partitions *shard* tables locally — the exact layering the paper
describes. Hook ordering decides conflicts (the Citus/TimescaleDB
incompatibility of §6): partman must be installed after Citus so the
distributed planner sees distributed tables first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .engine.executor import QueryResult
from .errors import DataError, MetadataError
from .sql import ast as A
from .sql.deparse import deparse


@dataclass
class PartmanParent:
    table: str
    column: str
    width: int
    children: dict[int, str] = field(default_factory=dict)  # start -> child name


class PartmanExtension:
    def __init__(self, instance):
        self.instance = instance
        self.parents: dict[str, PartmanParent] = {}
        instance.extensions["pg_partman"] = self

    # ------------------------------------------------------------- setup

    def create_parent(self, session, table: str, column: str, width: int) -> str:
        catalog = self.instance.catalog
        shell = catalog.get_table(table)
        col = shell.column(column)
        if col.type_name not in ("int", "bigint"):
            raise MetadataError(
                "partman reproduction partitions on integer time columns"
            )
        if table in self.parents:
            raise MetadataError(f"{table!r} is already partitioned")
        parent = PartmanParent(table, column, int(width))
        # Read existing rows BEFORE registering the parent: registration
        # flips the planner hook on, which would scan the (empty) children.
        rows = [list(t) for t in session.execute(f"SELECT * FROM {table}").rows]
        self.parents[table] = parent
        if rows:
            position = shell.column_index(column)
            table_obj = self.instance.catalog.get_table(table)
            session.acquire_table_lock(table, "AccessExclusive")
            table_obj.heap.__init__(table)
            from .engine.instance import _fresh_index_structure

            for index in table_obj.indexes.values():
                index.data = _fresh_index_structure(index)
            self._route_rows(session, parent, shell, rows, position)
        return table

    # ------------------------------------------------------------ routing

    def _child_for(self, session, parent: PartmanParent, value: int) -> str:
        start = (int(value) // parent.width) * parent.width
        child = parent.children.get(start)
        if child is None:
            child = f"{parent.table}_p{start}"
            shell = self.instance.catalog.get_table(parent.table)
            from .citus.ddl import table_to_create_stmt

            stmt = table_to_create_stmt(shell)
            stmt.name = child
            stmt.foreign_keys = []
            stmt.if_not_exists = True
            session._execute_utility(stmt, None, None)
            parent.children[start] = child
        return child

    def _route_rows(self, session, parent, shell, rows, position) -> int:
        buckets: dict[str, list] = {}
        for row in rows:
            value = row[position]
            if value is None:
                raise DataError(
                    f"partition column {parent.column!r} cannot be NULL"
                )
            child = self._child_for(session, parent, value)
            buckets.setdefault(child, []).append(row)
        total = 0
        for child, child_rows in buckets.items():
            total += session.copy_rows(child, child_rows)
        return total

    # ----------------------------------------------------------- pruning

    def pruned_children(self, parent: PartmanParent, where, params) -> list[str]:
        from .citus.sharding import _conjuncts, _dist_range_bound, _is_constant, \
            _constant_value, _NO_VALUE

        children = sorted(parent.children.items())
        if where is None:
            return [name for _start, name in children]

        class _Probe:
            dist_column = parent.column
            name = parent.table

        low = high = None
        for conjunct in _conjuncts(where):
            if isinstance(conjunct, A.BinaryOp) and conjunct.op == "=":
                left, right = conjunct.left, conjunct.right
                if isinstance(right, A.ColumnRef):
                    left, right = right, left
                if (
                    isinstance(left, A.ColumnRef)
                    and left.name == parent.column
                    and _is_constant(right)
                ):
                    value = _constant_value(right, params)
                    if value is not _NO_VALUE:
                        low = high = value
                continue
            bound = _dist_range_bound(conjunct, _Probe, parent.table, params)
            if bound is not None:
                blow, bhigh = bound
                if blow is not None:
                    low = blow if low is None else max(low, blow)
                if bhigh is not None:
                    high = bhigh if high is None else min(high, bhigh)
        out = []
        for start, name in children:
            end = start + parent.width - 1
            if low is not None and end < low:
                continue
            if high is not None and start > high:
                continue
            out.append(name)
        return out


class _PartitionedScanPlan:
    """CustomScan over the pruned children: the parent reference is
    rewritten into a UNION ALL subquery over the surviving partitions
    (PostgreSQL's Append node), so filters, joins, aggregation, ordering
    and limits all apply unchanged."""

    def __init__(self, ext: PartmanExtension, stmt, children: list[str], alias: str):
        self.ext = ext
        self.stmt = stmt
        self.children = children
        self.alias = alias

    def execute(self, session, params):
        rewritten = self.stmt.copy()
        parent_name = self.stmt.from_items[0].name
        if self.children:
            union = A.Select(
                targets=[A.TargetEntry(A.Star())],
                from_items=[A.TableRef(self.children[0])],
            )
            for child in self.children[1:]:
                union.set_ops.append((
                    "union all",
                    A.Select(targets=[A.TargetEntry(A.Star())],
                             from_items=[A.TableRef(child)]),
                ))
        else:
            # No partition survives pruning: scan the (empty) shell with an
            # always-false filter to keep the output shape.
            union = A.Select(
                targets=[A.TargetEntry(A.Star())],
                from_items=[A.TableRef(parent_name)],
                where=A.BinaryOp("=", A.Literal(1), A.Literal(0)),
            )
        rewritten.from_items = [A.SubqueryRef(union, self.alias)] + [
            f.copy() for f in self.stmt.from_items[1:]
        ]
        return session._execute_local_dml(rewritten, params)

    def explain_lines(self):
        lines = ["Append (partman partitions)"]
        for child in self.children:
            lines.append(f"  -> Scan on {child}")
        return lines


def install_partman(instance) -> PartmanExtension:
    ext = PartmanExtension(instance)

    def create_parent_udf(session, table, column, width):
        return ext.create_parent(session, table, column, int(width))

    instance.catalog.register_function("create_parent", create_parent_udf)

    def show_partitions_udf(session, table):
        parent = ext.parents.get(table)
        if parent is None:
            raise MetadataError(f"{table!r} is not partitioned")
        return [name for _s, name in sorted(parent.children.items())]

    instance.catalog.register_function("show_partitions", show_partitions_udf)

    def planner_hook(session, stmt, params):
        if isinstance(stmt, A.Select):
            if (
                stmt.from_items
                and isinstance(stmt.from_items[0], A.TableRef)
                and stmt.from_items[0].name in ext.parents
            ):
                ref = stmt.from_items[0]
                parent = ext.parents[ref.name]
                children = ext.pruned_children(parent, stmt.where, params)
                return _PartitionedScanPlan(ext, stmt, children, ref.ref_name)
            # A parent anywhere else (join right side, subquery) would read
            # the empty shell silently: refuse instead.
            from .citus.sharding import collect_table_names

            if any(name in ext.parents for name in collect_table_names(stmt)):
                raise MetadataError(
                    "partitioned parents are supported as the leading FROM"
                    " table in this reproduction"
                )
            return None
        if isinstance(stmt, A.Insert) and stmt.table in ext.parents:
            return _PartitionedInsertPlan(ext, stmt)
        if isinstance(stmt, (A.Update, A.Delete)) and stmt.table in ext.parents:
            return _PartitionedDmlPlan(ext, stmt)
        return None

    instance.hooks.planner_hooks.append(planner_hook)

    def utility_hook(session, stmt):
        if isinstance(stmt, A.Copy) and stmt.direction == "from" \
                and stmt.table in ext.parents:
            parent = ext.parents[stmt.table]
            shell = instance.catalog.get_table(stmt.table)
            from .engine.copy import _normalize_rows

            copy_data = getattr(session, "_pending_copy_data", None)
            if copy_data is None:
                raise DataError("COPY FROM STDIN requires copy_data")
            rows = [list(r) for r in _normalize_rows(copy_data, session, stmt)]
            columns = stmt.columns or shell.column_names()
            position = columns.index(parent.column)
            count = ext._route_rows(session, parent, shell, rows, position)
            result = QueryResult([], [], command="COPY")
            result.rowcount = count
            return result
        return None

    instance.hooks.utility_hooks.append(utility_hook)
    return ext


class _PartitionedInsertPlan:
    def __init__(self, ext, stmt):
        self.ext = ext
        self.stmt = stmt

    def execute(self, session, params):
        from .engine.expr import EvalContext, Row, evaluate

        stmt = self.stmt
        shell = self.ext.instance.catalog.get_table(stmt.table)
        parent = self.ext.parents[stmt.table]
        columns = stmt.columns or shell.column_names()
        position = columns.index(parent.column)
        ctx = EvalContext(row=Row(), params=params, session=session)
        rows = [[evaluate(v, ctx) for v in row] for row in stmt.rows]
        count = self.ext._route_rows(session, parent, shell, rows, position)
        result = QueryResult([], [], command="INSERT")
        result.rowcount = count
        return result

    def explain_lines(self):
        return ["Insert (partman routed)"]


class _PartitionedDmlPlan:
    def __init__(self, ext, stmt):
        self.ext = ext
        self.stmt = stmt

    def execute(self, session, params):
        parent = self.ext.parents[self.stmt.table]
        children = self.ext.pruned_children(parent, self.stmt.where, params)
        total = 0
        for child in children:
            rewritten = self.stmt.copy()
            rewritten.table = child
            if getattr(rewritten, "alias", None) is None and not isinstance(
                rewritten, A.Insert
            ):
                rewritten.alias = self.stmt.table
            result = session._execute_local_dml(rewritten, params)
            total += result.rowcount
        command = "UPDATE" if isinstance(self.stmt, A.Update) else "DELETE"
        result = QueryResult([], [], command=command)
        result.rowcount = total
        return result

    def explain_lines(self):
        return ["DML (partman fan-out)"]
