"""TPC-H-derived data warehousing workload (§4.4).

Schema, deterministic generator, and an adapted query set. Distribution
follows the paper exactly: "distributed and co-located the *lineitem* and
*orders* table by order key, and converted the smaller tables to reference
tables to enable local joins."

The paper ran 18 of the 22 TPC-H queries (4 unsupported by Citus). Our SQL
dialect supports 12 of them, adapted minimally (interval arithmetic written
out, no views); the remainder are listed in :data:`UNSUPPORTED_QUERIES`
with the blocking feature, mirroring how the paper reports its own gaps.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass

SCHEMA = """
CREATE TABLE region (
    r_regionkey int PRIMARY KEY,
    r_name text
);
CREATE TABLE nation (
    n_nationkey int PRIMARY KEY,
    n_regionkey int,
    n_name text
);
CREATE TABLE supplier (
    s_suppkey int PRIMARY KEY,
    s_nationkey int,
    s_name text,
    s_acctbal float
);
CREATE TABLE customer (
    c_custkey int PRIMARY KEY,
    c_nationkey int,
    c_name text,
    c_mktsegment text,
    c_acctbal float
);
CREATE TABLE part (
    p_partkey int PRIMARY KEY,
    p_name text,
    p_type text,
    p_brand text,
    p_container text,
    p_retailprice float
);
CREATE TABLE orders (
    o_orderkey int PRIMARY KEY,
    o_custkey int,
    o_orderstatus text,
    o_totalprice float,
    o_orderdate date,
    o_orderpriority text,
    o_shippriority int
);
CREATE TABLE lineitem (
    l_orderkey int,
    l_linenumber int,
    l_partkey int,
    l_suppkey int,
    l_quantity float,
    l_extendedprice float,
    l_discount float,
    l_tax float,
    l_returnflag text,
    l_linestatus text,
    l_shipdate date,
    l_commitdate date,
    l_receiptdate date,
    l_shipmode text,
    PRIMARY KEY (l_orderkey, l_linenumber)
);
"""

DISTRIBUTION = """
SELECT create_reference_table('region');
SELECT create_reference_table('nation');
SELECT create_reference_table('supplier');
SELECT create_reference_table('customer');
SELECT create_reference_table('part');
SELECT create_distributed_table('orders', 'o_orderkey');
SELECT create_distributed_table('lineitem', 'l_orderkey', colocate_with := 'orders');
"""

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_MODES = ["MAIL", "SHIP", "AIR", "RAIL", "TRUCK", "FOB", "REG AIR"]
_TYPES = ["PROMO BRUSHED", "STANDARD POLISHED", "MEDIUM PLATED", "ECONOMY ANODIZED"]
_FLAGS = ["A", "N", "R"]


@dataclass
class TpchConfig:
    """Scaled-down size knobs (the paper used scale factor 100)."""

    customers: int = 30
    suppliers: int = 10
    parts: int = 40
    orders: int = 120
    max_lines_per_order: int = 4
    seed: int = 1992


def create_schema(session, distributed: bool = True) -> None:
    session.execute(SCHEMA)
    if distributed:
        session.execute(DISTRIBUTION)


def load_data(session, config: TpchConfig) -> dict:
    rng = random.Random(config.seed)
    counts = {}
    session.copy_rows("region", [[i, name] for i, name in enumerate(_REGIONS)])
    nations = [[i, i % len(_REGIONS), f"NATION-{i}"] for i in range(25)]
    session.copy_rows("nation", nations)
    session.copy_rows(
        "supplier",
        [[i, rng.randrange(25), f"Supplier#{i:09d}", round(rng.uniform(-999, 9999), 2)]
         for i in range(1, config.suppliers + 1)],
    )
    session.copy_rows(
        "customer",
        [[i, rng.randrange(25), f"Customer#{i:09d}", rng.choice(_SEGMENTS),
          round(rng.uniform(-999, 9999), 2)]
         for i in range(1, config.customers + 1)],
    )
    session.copy_rows(
        "part",
        [[i, f"part {i}", rng.choice(_TYPES), f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
          rng.choice(["SM BOX", "MED BAG", "LG CASE", "JUMBO PKG"]),
          round(rng.uniform(900, 2000), 2)]
         for i in range(1, config.parts + 1)],
    )
    orders_rows, lineitem_rows = [], []
    base = dt.date(1992, 1, 1)
    for o in range(1, config.orders + 1):
        orderdate = base + dt.timedelta(days=rng.randrange(2400))
        orders_rows.append([
            o, rng.randint(1, config.customers), rng.choice(["O", "F", "P"]),
            0.0, orderdate, rng.choice(_PRIORITIES), rng.randint(0, 1),
        ])
        total = 0.0
        for line in range(1, rng.randint(1, config.max_lines_per_order) + 1):
            qty = float(rng.randint(1, 50))
            price = round(rng.uniform(900, 100000) / 100, 2)
            extended = round(qty * price, 2)
            discount = round(rng.choice([0.0, 0.02, 0.04, 0.06, 0.08, 0.1]), 2)
            shipdate = orderdate + dt.timedelta(days=rng.randrange(1, 120))
            commitdate = orderdate + dt.timedelta(days=rng.randrange(1, 120))
            receiptdate = shipdate + dt.timedelta(days=rng.randrange(1, 30))
            lineitem_rows.append([
                o, line, rng.randint(1, config.parts), rng.randint(1, config.suppliers),
                qty, extended, discount, round(rng.uniform(0, 0.08), 2),
                rng.choice(_FLAGS), rng.choice(["O", "F"]), shipdate, commitdate,
                receiptdate, rng.choice(_MODES),
            ])
            total += extended
        orders_rows[-1][3] = round(total, 2)
    counts["orders"] = session.copy_rows("orders", orders_rows)
    counts["lineitem"] = session.copy_rows("lineitem", lineitem_rows)
    return counts


# --------------------------------------------------------------- queries

QUERIES: dict[str, str] = {
    "Q1": """
        SELECT l_returnflag, l_linestatus,
               sum(l_quantity) AS sum_qty,
               sum(l_extendedprice) AS sum_base_price,
               sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               avg(l_quantity) AS avg_qty,
               avg(l_extendedprice) AS avg_price,
               count(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= date '1998-09-02'
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    "Q3": """
        SELECT l_orderkey,
               sum(l_extendedprice * (1 - l_discount)) AS revenue,
               o_orderdate, o_shippriority
        FROM customer, orders, lineitem
        WHERE c_mktsegment = 'BUILDING'
          AND c_custkey = o_custkey
          AND l_orderkey = o_orderkey
          AND o_orderdate < date '1995-03-15'
          AND l_shipdate > date '1995-03-15'
        GROUP BY l_orderkey, o_orderdate, o_shippriority
        ORDER BY revenue DESC, o_orderdate
        LIMIT 10
    """,
    "Q4": """
        SELECT o_orderpriority, count(*) AS order_count
        FROM orders
        WHERE o_orderdate >= date '1993-07-01'
          AND o_orderdate < date '1993-10-01'
          AND EXISTS (
              SELECT 1 FROM lineitem
              WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
        GROUP BY o_orderpriority
        ORDER BY o_orderpriority
    """,
    "Q5": """
        SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer, orders, lineitem, supplier, nation, region
        WHERE c_custkey = o_custkey
          AND l_orderkey = o_orderkey
          AND l_suppkey = s_suppkey
          AND c_nationkey = s_nationkey
          AND s_nationkey = n_nationkey
          AND n_regionkey = r_regionkey
          AND r_name = 'ASIA'
          AND o_orderdate >= date '1994-01-01'
          AND o_orderdate < date '1995-01-01'
        GROUP BY n_name
        ORDER BY revenue DESC
    """,
    "Q6": """
        SELECT sum(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= date '1994-01-01'
          AND l_shipdate < date '1995-01-01'
          AND l_discount BETWEEN 0.04 AND 0.08
          AND l_quantity < 24
    """,
    "Q7": """
        SELECT n_name, extract(year FROM l_shipdate) AS l_year,
               sum(l_extendedprice * (1 - l_discount)) AS revenue
        FROM supplier, lineitem, orders, nation
        WHERE s_suppkey = l_suppkey
          AND o_orderkey = l_orderkey
          AND s_nationkey = n_nationkey
          AND l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31'
        GROUP BY n_name, extract(year FROM l_shipdate)
        ORDER BY n_name, l_year
    """,
    "Q10": """
        SELECT c_custkey, c_name,
               sum(l_extendedprice * (1 - l_discount)) AS revenue,
               c_acctbal, n_name
        FROM customer, orders, lineitem, nation
        WHERE c_custkey = o_custkey
          AND l_orderkey = o_orderkey
          AND o_orderdate >= date '1993-10-01'
          AND o_orderdate < date '1994-01-01'
          AND l_returnflag = 'R'
          AND c_nationkey = n_nationkey
        GROUP BY c_custkey, c_name, c_acctbal, n_name
        ORDER BY revenue DESC
        LIMIT 20
    """,
    "Q12": """
        SELECT l_shipmode,
               sum(CASE WHEN o_orderpriority = '1-URGENT'
                         OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END)
                   AS high_line_count,
               sum(CASE WHEN o_orderpriority <> '1-URGENT'
                        AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END)
                   AS low_line_count
        FROM orders, lineitem
        WHERE o_orderkey = l_orderkey
          AND l_shipmode IN ('MAIL', 'SHIP')
          AND l_commitdate < l_receiptdate
          AND l_shipdate < l_commitdate
          AND l_receiptdate >= date '1994-01-01'
          AND l_receiptdate < date '1995-01-01'
        GROUP BY l_shipmode
        ORDER BY l_shipmode
    """,
    "Q14": """
        SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                                 THEN l_extendedprice * (1 - l_discount)
                                 ELSE 0 END)
               / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate >= date '1995-09-01'
          AND l_shipdate < date '1995-10-01'
    """,
    "Q18": """
        SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
               sum(l_quantity)
        FROM customer, orders, lineitem
        WHERE o_orderkey IN (
              SELECT l_orderkey FROM lineitem
              GROUP BY l_orderkey HAVING sum(l_quantity) > 100)
          AND c_custkey = o_custkey
          AND o_orderkey = l_orderkey
        GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
        ORDER BY o_totalprice DESC, o_orderdate
        LIMIT 100
    """,
    "Q19": """
        SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem, part
        WHERE p_partkey = l_partkey
          AND ((p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 30)
               OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 40)
               OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 50))
          AND l_shipmode IN ('AIR', 'REG AIR')
    """,
    "Q21_lite": """
        SELECT s_name, count(*) AS numwait
        FROM supplier, lineitem, orders, nation
        WHERE s_suppkey = l_suppkey
          AND o_orderkey = l_orderkey
          AND o_orderstatus = 'F'
          AND l_receiptdate > l_commitdate
          AND s_nationkey = n_nationkey
        GROUP BY s_name
        ORDER BY numwait DESC, s_name
        LIMIT 100
    """,
}

# Queries we do not run, with the blocking construct (the paper itself
# reports "4 of the 22 queries in TPC-H are not yet supported" by Citus).
UNSUPPORTED_QUERIES: dict[str, str] = {
    "Q2": "correlated subquery against a non-co-located (reference-joined) min()",
    "Q8": "nested CASE over multi-level subquery in FROM",
    "Q9": "partsupp double-join exceeds the two-distributed-table planner scope",
    "Q11": "GROUP BY ... HAVING against a global scalar subquery",
    "Q13": "LEFT JOIN with COUNT over NULL groups and NOT LIKE",
    "Q15": "view (revenue stream) definition",
    "Q16": "NOT IN subquery with DISTINCT counting",
    "Q17": "correlated scalar AVG subquery per part",
    "Q20": "doubly nested IN subqueries",
    "Q22": "correlated NOT EXISTS with substring bucketing",
}


def run_query_set(session, names=None) -> dict[str, list]:
    """Run the supported query set over one session; returns results."""
    results = {}
    for name in names or QUERIES:
        results[name] = session.execute(QUERIES[name]).rows
    return results
