"""Synthetic GitHub-archive event stream (§4.2's data source).

The paper loads GitHub Archive JSON (January 2020) into::

    CREATE TABLE github_events (
        event_id text default md5(random()::text) primary key,
        data jsonb);

with a ``pg_trgm`` GIN index over the commit messages inside the JSON.
We cannot ship the real archive, so :func:`generate_events` produces a
deterministic stream with the same shape — ``PushEvent`` rows carry
``payload.commits[*].message`` where a configurable fraction of messages
mention "postgres", so the dashboard query (Fig. 7b) and the commit-
extraction INSERT..SELECT (Fig. 7c) exercise identical code paths.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

EVENTS_TABLE = """
CREATE TABLE github_events (
    event_id text PRIMARY KEY,
    data jsonb
)
"""

DISTRIBUTION = "SELECT create_distributed_table('github_events', 'event_id')"

GIN_INDEX = (
    "CREATE INDEX text_search_idx ON github_events USING GIN"
    " ((jsonb_path_query_array(data, '$.payload.commits[*].message')::text)"
    " gin_trgm_ops)"
)

COMMITS_TABLE = """
CREATE TABLE commits (
    event_id text,
    created_at date,
    message text,
    PRIMARY KEY (event_id, message)
)
"""

COMMITS_DISTRIBUTION = (
    "SELECT create_distributed_table('commits', 'event_id',"
    " colocate_with := 'github_events')"
)

# Fig 7(b): commits mentioning "postgres" per day.
DASHBOARD_QUERY = """
SELECT (data->>'created_at')::date,
       sum(jsonb_array_length(data->'payload'->'commits'))
FROM github_events
WHERE jsonb_path_query_array(data, '$.payload.commits[*].message')::text
      ILIKE '%postgres%'
GROUP BY 1 ORDER BY 1 ASC
"""

# Fig 7(c): extract commits from push events into a co-located table.
TRANSFORM_QUERY = """
INSERT INTO commits (event_id, created_at, message)
SELECT event_id, (data->>'created_at')::date,
       data#>>'{payload,commits,0,message}'
FROM github_events
WHERE data->>'type' = 'PushEvent'
"""

_EVENT_TYPES = ["PushEvent", "IssuesEvent", "WatchEvent", "PullRequestEvent"]
_WORDS = [
    "fix", "bug", "update", "docs", "refactor", "tests", "parser", "index",
    "cache", "shard", "executor", "planner", "vacuum", "deadlock", "merge",
]


@dataclass
class ArchiveConfig:
    events: int = 500
    days: int = 7
    seed: int = 2020
    push_fraction: float = 0.55
    postgres_mention_fraction: float = 0.08
    max_commits_per_push: int = 3


def generate_events(config: ArchiveConfig):
    """Yield (event_id, data_json) rows, deterministically."""
    rng = random.Random(config.seed)
    for i in range(config.events):
        event_id = hashlib.md5(f"event-{config.seed}-{i}".encode()).hexdigest()
        day = rng.randrange(config.days) + 1
        created = f"2020-01-{day:02d}T{rng.randrange(24):02d}:00:00"
        if rng.random() < config.push_fraction:
            commits = []
            for _ in range(rng.randint(1, config.max_commits_per_push)):
                words = [rng.choice(_WORDS) for _ in range(rng.randint(2, 6))]
                if rng.random() < config.postgres_mention_fraction:
                    words.insert(rng.randrange(len(words)), "postgres")
                commits.append(
                    {"sha": hashlib.sha1(f"{event_id}{len(commits)}".encode()).hexdigest()[:10],
                     "message": " ".join(words)}
                )
            data = {
                "type": "PushEvent",
                "created_at": created,
                "repo": f"org/repo-{rng.randrange(40)}",
                "payload": {"commits": commits},
            }
        else:
            data = {
                "type": rng.choice(_EVENT_TYPES[1:]),
                "created_at": created,
                "repo": f"org/repo-{rng.randrange(40)}",
                "payload": {},
            }
        yield [event_id, data]


def create_schema(session, distributed: bool = True, with_index: bool = True,
                  with_rollup: bool = True) -> None:
    session.execute(EVENTS_TABLE)
    if distributed:
        session.execute(DISTRIBUTION)
    if with_index:
        session.execute(GIN_INDEX)
    if with_rollup:
        session.execute(COMMITS_TABLE)
        if distributed:
            session.execute(COMMITS_DISTRIBUTION)


def load_events(session, config: ArchiveConfig, batch_size: int = 200) -> int:
    """COPY the generated events in (the Fig. 7a path)."""
    total = 0
    batch = []
    for row in generate_events(config):
        batch.append(row)
        if len(batch) >= batch_size:
            total += session.copy_rows("github_events", batch)
            batch = []
    if batch:
        total += session.copy_rows("github_events", batch)
    return total


def expected_postgres_mentions(config: ArchiveConfig) -> int:
    """Ground truth for the dashboard query (computed from the generator),
    letting tests verify the GIN-index path returns exact results."""
    total = 0
    for _event_id, data in generate_events(config):
        commits = data.get("payload", {}).get("commits", [])
        if any("postgres" in c["message"] for c in commits):
            total += len(commits)
    return total
