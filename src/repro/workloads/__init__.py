"""Benchmark workloads: TPC-C, YCSB, TPC-H, GitHub archive, pgbench, and
the closed-loop multi-tenant traffic harness."""

from . import gharchive, pgbench, tpcc, tpch, traffic, ycsb

__all__ = ["tpcc", "ycsb", "tpch", "gharchive", "pgbench", "traffic"]
