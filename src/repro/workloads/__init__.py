"""Benchmark workloads: TPC-C, YCSB, TPC-H, GitHub archive, pgbench."""

from . import gharchive, pgbench, tpcc, tpch, ycsb

__all__ = ["tpcc", "ycsb", "tpch", "gharchive", "pgbench"]
