"""Closed-loop virtual-time traffic driver.

Thousands of simulated sessions share one :class:`~repro.net.clock.SimClock`.
Each session is a generator-based actor: it opens a pgbouncer client on one
of the coordinator nodes, draws a tenant from the Zipf sampler, runs a
seeded number of transactions with think time between them (closed loop:
the next transaction is not issued until the previous one finished and the
think time elapsed), then closes the client and recycles itself with a
fresh tenant — connection churn.

An event-driven scheduler interleaves all actors in virtual-time order: a
binary heap of ``(wake_time, actor_id)`` pops the earliest actor, advances
the clock to its wake time, and runs exactly one step (one transaction,
whose service time the engine charges to the same clock). Everything —
think times, tenant draws, per-actor RNGs, the heap tie-break — is derived
from the run seed, so a 2,000-session multi-minute-of-simulated-time run
is reproducible byte-for-byte.

At the end, :meth:`TrafficHarness.report` reads per-fingerprint
percentiles from ``citus_stat_statements``, the run-scoped counter delta
(pool, 2PC, wait events), and evaluates an SLO spec into a machine-
readable verdict.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from ...engine.stats import stats_for
from ...engine.waitevents import wait_class_totals
from ...errors import ReproError, TooManyConnections
from ...net.pool import ConnectionPool
from .generators import ZipfGenerator, make_think
from .mixes import MIXES, SETUP_GROUPS
from .slo import default_slo_spec, evaluate_slo

DEFAULT_MIX_WEIGHTS = {
    "ycsb_a": 0.35,
    "ycsb_b": 0.15,
    "ycsb_c": 0.15,
    "tpcc": 0.25,
    "gharchive": 0.10,
}


@dataclass
class TrafficConfig:
    sessions: int = 100  # concurrent simulated sessions (actors)
    tenants: int = 50  # tenant keyspace size
    zipf_s: float = 1.1  # tenant skew exponent
    seed: int = 20260807
    sim_duration: float = 60.0  # simulated seconds to drive
    max_transactions: int | None = None  # optional hard cap (smoke tests)
    think: str = "exponential"  # or "fixed"
    think_mean: float = 1.0  # mean think time, simulated seconds
    ramp_seconds: float = 5.0  # actor start times staggered across this
    session_lifetime: tuple = (4, 12)  # transactions per client before churn
    mix_weights: dict = field(default_factory=lambda: dict(DEFAULT_MIX_WEIGHTS))
    ycsb_keys_per_tenant: int = 4
    tpcc_warehouses: int = 12
    tpcc_items: int = 20
    cross_warehouse_fraction: float = 0.07  # the paper's ~7% (§4.1)
    gharchive_batch_rows: int = 32  # rows per batch-COPY ingest transaction
    pool_size: int = 32  # server sessions per node pool
    max_client_conn: int = 10_000  # pgbouncer client cap per node pool
    use_workers_as_coordinators: bool = True  # §3.2.1 metadata sync
    retry_backoff: float = 0.05  # sim-seconds base backoff on pool exhaustion
    max_txn_retries: int = 3

    def as_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "tenants": self.tenants,
            "zipf_s": self.zipf_s,
            "seed": self.seed,
            "sim_duration": self.sim_duration,
            "max_transactions": self.max_transactions,
            "think": self.think,
            "think_mean": self.think_mean,
            "ramp_seconds": self.ramp_seconds,
            "session_lifetime": list(self.session_lifetime),
            "mix_weights": dict(self.mix_weights),
            "gharchive_batch_rows": self.gharchive_batch_rows,
            "pool_size": self.pool_size,
            "max_client_conn": self.max_client_conn,
            "use_workers_as_coordinators": self.use_workers_as_coordinators,
        }


class SessionActor:
    """One simulated user session, written as a generator.

    The generator yields the virtual-time delay until its next wake-up;
    the scheduler resumes it at (or after) that time. Between two yields
    it executes exactly one transaction — or one lifecycle action such as
    reopening a churned connection — so service time is charged to the
    clock at the position in virtual time where the transaction ran.
    """

    __slots__ = ("actor_id", "harness", "pool", "rng", "gen", "tenant", "mix")

    def __init__(self, actor_id: int, harness: "TrafficHarness", pool: ConnectionPool):
        self.actor_id = actor_id
        self.harness = harness
        self.pool = pool
        # Per-actor RNG: sampling stays stable no matter how the scheduler
        # interleaves actors (it is deterministic anyway, but per-actor
        # streams make the determinism robust to harness refactors).
        self.rng = random.Random(f"{harness.config.seed}-actor-{actor_id}")
        self.tenant = None
        self.mix = None
        self.gen = self._run()

    # ------------------------------------------------------------ lifecycle

    def _run(self):
        cfg = self.harness.config
        think = self.harness.think
        while True:
            # Open a client connection; a full pgbouncer rejects, and the
            # user backs off and retries.
            try:
                client = self.pool.client()
            except TooManyConnections:
                self.harness.totals["client_rejections"] += 1
                yield cfg.retry_backoff * (1 + self.rng.random())
                continue
            self.harness.totals["sessions_opened"] += 1
            self.tenant = self.harness.zipf.sample()
            self.mix = self.harness.mix_for_tenant(self.tenant)
            lifetime = self.rng.randint(*cfg.session_lifetime)
            try:
                for _ in range(lifetime):
                    yield think.sample(self.rng)
                    self._one_transaction(client, cfg)
            finally:
                client.close()
            self.harness.totals["sessions_churned"] += 1

    def _one_transaction(self, client, cfg) -> None:
        for attempt in range(cfg.max_txn_retries + 1):
            try:
                self.mix.transaction(client, self.rng, self.tenant, cfg)
            except TooManyConnections:
                # Server pool exhausted mid-transaction: the lease was
                # rolled back and released; retry the whole transaction.
                self.harness.totals["pool_retries"] += 1
                if attempt >= cfg.max_txn_retries:
                    self.harness.totals["transactions_dropped"] += 1
                    return
                continue
            except ReproError:
                self.harness.totals["transactions_aborted"] += 1
                return
            self.harness.totals["transactions"] += 1
            self.harness.per_mix[self.mix.name] += 1
            self.harness.per_tenant[self.tenant] = (
                self.harness.per_tenant.get(self.tenant, 0) + 1
            )
            return


class TrafficHarness:
    """Drives a :class:`~repro.citus.api.CitusCluster` with closed-loop
    multi-tenant traffic and evaluates SLOs over the result."""

    def __init__(self, citus, config: TrafficConfig | None = None):
        self.citus = citus
        self.config = config or TrafficConfig()
        self.think = make_think(self.config.think, self.config.think_mean)
        self.zipf = ZipfGenerator(
            self.config.tenants, self.config.zipf_s,
            seed=(self.config.seed << 1) ^ 0x5EED,
        )
        self.pools: dict[str, ConnectionPool] = {}
        self.actors: list[SessionActor] = []
        self.totals = {
            "transactions": 0,
            "transactions_aborted": 0,
            "transactions_dropped": 0,
            "pool_retries": 0,
            "client_rejections": 0,
            "sessions_opened": 0,
            "sessions_churned": 0,
        }
        self.per_mix = {name: 0 for name in self.config.mix_weights}
        self.per_tenant: dict[int, int] = {}
        self._tenant_mix: dict[int, str] = {}
        self._snap0 = None
        self._sim_start = None
        self._sim_end = None
        self._prepared = False

    # ------------------------------------------------------------- prepare

    def mix_for_tenant(self, tenant: int):
        name = self._tenant_mix.get(tenant)
        if name is None:
            # Deterministic per-tenant draw, independent of arrival order.
            roll = random.Random(f"{self.config.seed}-tenant-mix-{tenant}").random()
            acc = 0.0
            total = sum(self.config.mix_weights.values())
            name = next(iter(self.config.mix_weights))
            for mix_name, weight in self.config.mix_weights.items():
                acc += weight / total
                if roll < acc:
                    name = mix_name
                    break
            else:
                name = mix_name
            self._tenant_mix[tenant] = name
        return MIXES[name]

    def coordinator_nodes(self) -> list[str]:
        if self.config.use_workers_as_coordinators:
            return [self.citus.coordinator_name] + self.citus.worker_names()
        return [self.citus.coordinator_name]

    def prepare(self) -> None:
        """Create schemas, load data, sync metadata, build pools and actors."""
        if self._prepared:
            return
        cfg = self.config
        unknown = set(cfg.mix_weights) - set(MIXES)
        if unknown:
            raise ValueError(f"unknown workload mixes: {sorted(unknown)}")
        session = self.citus.coordinator_session("traffic_setup")
        try:
            done_groups = set()
            for name, weight in cfg.mix_weights.items():
                if weight <= 0:
                    continue
                group = SETUP_GROUPS[name]
                if group in done_groups:
                    continue
                done_groups.add(group)
                MIXES[name].setup(session, cfg)
        finally:
            session.close()
        if cfg.use_workers_as_coordinators and self.citus.worker_names():
            self.citus.enable_metadata_sync()
        nodes = self.coordinator_nodes()
        for node_name in nodes:
            self.pools[node_name] = ConnectionPool(
                self.citus.cluster.node(node_name),
                pool_size=cfg.pool_size,
                max_client_conn=cfg.max_client_conn,
                # Pool counters join the cluster-wide registry so the SLO
                # gate reads them from the same place as 2PC/wait counters.
                stats_holder=self.citus.cluster,
            )
        # Round-robin actors over all coordinator nodes — the paper's
        # "every worker acts as a coordinator" load-balancing shape.
        self.actors = [
            SessionActor(i, self, self.pools[nodes[i % len(nodes)]])
            for i in range(cfg.sessions)
        ]
        self._prepared = True

    # ----------------------------------------------------------------- run

    def run(self) -> "TrafficHarness":
        """Drive all actors in virtual-time order until ``sim_duration``
        simulated seconds elapse (or ``max_transactions`` accumulate)."""
        self.prepare()
        cfg = self.config
        clock = self.citus.cluster.clock
        # Scope telemetry to this run: statement stats restart, counters
        # are diffed against a snapshot.
        session = self.citus.coordinator_session("traffic_admin")
        try:
            session.execute("SELECT citus_stat_statements_reset()")
        finally:
            session.close()
        registry = stats_for(self.citus.cluster)
        self._snap0 = registry.snapshot()
        self._sim_start = clock.now()
        deadline = self._sim_start + cfg.sim_duration

        heap: list[tuple[float, int]] = []
        for actor in self.actors:
            # Stagger arrivals across the ramp window so session opens do
            # not all land on the same instant of virtual time.
            offset = cfg.ramp_seconds * actor.actor_id / max(1, cfg.sessions)
            heapq.heappush(heap, (self._sim_start + offset, actor.actor_id))
        while heap:
            wake, actor_id = heapq.heappop(heap)
            if wake >= deadline:
                break
            if (cfg.max_transactions is not None
                    and self.totals["transactions"] >= cfg.max_transactions):
                break
            clock.advance_to(wake)
            try:
                delay = next(self.actors[actor_id].gen)
            except StopIteration:
                continue
            heapq.heappush(heap, (clock.now() + delay, actor_id))
        # Drain: every actor's client closes (generator finally blocks run).
        for actor in self.actors:
            actor.gen.close()
        self._sim_end = clock.now()
        return self

    # -------------------------------------------------------------- report

    def peak_clients(self) -> int:
        return sum(pool.peak_clients for pool in self.pools.values())

    def stat_statement_rows(self) -> list:
        session = self.citus.coordinator_session("traffic_report")
        try:
            return session.execute("SELECT citus_stat_statements()").scalar()
        finally:
            session.close()

    def counter_delta(self) -> dict:
        registry = stats_for(self.citus.cluster)
        return registry.snapshot().diff(self._snap0).as_dict()

    def report(self, slo_rules=None) -> dict:
        """Machine-readable run report: traffic totals, pool/2PC/wait
        counters, per-fingerprint tail latencies, and the SLO verdict.
        Every number is virtual-time-derived, so two runs from the same
        seed produce identical reports."""
        if self._sim_end is None:
            raise RuntimeError("run() the harness before asking for a report")
        counters = self.counter_delta()
        stat_rows = self.stat_statement_rows()
        rules = slo_rules if slo_rules is not None else default_slo_spec()
        slo = evaluate_slo(rules, stat_rows, counters)
        sim_seconds = self._sim_end - self._sim_start
        wait_classes = wait_class_totals(counters)
        onepc = counters.get("onepc_commits", 0)
        twopc = counters.get("twopc_transactions", 0)
        statements = [
            {
                "query": row[0],
                "tier": row[2],
                "calls": row[3],
                "p50_ms": round(row[7], 6),
                "p95_ms": round(row[8], 6),
                "p99_ms": round(row[9], 6),
            }
            for row in stat_rows[:20]
        ]
        report = {
            "config": self.config.as_dict(),
            "sim_seconds": round(sim_seconds, 6),
            "transactions": dict(self.totals),
            "transactions_per_sim_sec": round(
                self.totals["transactions"] / sim_seconds, 6
            ) if sim_seconds else 0.0,
            "per_mix": dict(sorted(self.per_mix.items())),
            "tenants_touched": len(self.per_tenant),
            "hottest_tenants": sorted(
                self.per_tenant.items(), key=lambda kv: (-kv[1], kv[0])
            )[:10],
            "peak_clients": self.peak_clients(),
            "pool": {
                name: counters.get(name, 0)
                for name in (
                    "pool_sessions_opened", "pool_session_reuses",
                    "pool_exhausted", "pool_client_rejections",
                )
            },
            "twopc": {
                "onepc_commits": onepc,
                "twopc_transactions": twopc,
                "rate": round(twopc / (onepc + twopc), 6) if onepc + twopc else 0.0,
            },
            "wait_event_counts": dict(sorted(wait_classes.items())),
            "statements": statements,
            "slo": slo,
        }
        if not slo["passed"]:
            # Turn "p99 breached" into "p99 breached while 62% of samples
            # sat in TwoPC.CommitPrepared on w2": embed the ASH rollup for
            # exactly the run window the failing rules were measured over.
            sampler = getattr(self.citus.coordinator_ext, "ash", None)
            if sampler is not None:
                report["ash"] = sampler.slo_diagnostics(
                    self._sim_start, self._sim_end
                )
        return report


def run_traffic(citus, config: TrafficConfig | None = None, slo_rules=None) -> dict:
    """One-call entry point: prepare, drive, and report."""
    harness = TrafficHarness(citus, config)
    harness.run()
    return harness.report(slo_rules)
