"""Workload mix adapters: what one tenant's transaction looks like.

Each :class:`WorkloadMix` bridges an existing workload module (§4's YCSB,
TPC-C, gharchive) to the traffic harness: ``setup`` creates and loads the
schema once per run, ``transaction`` executes one closed-loop transaction
for a given tenant through a pgbouncer :class:`~repro.net.pool.PooledClient`.

Tenant keyspaces:

- **YCSB A/B/C** — tenant *t* owns the contiguous key slice
  ``[t * keys_per_tenant, (t+1) * keys_per_tenant)``; single-key reads and
  updates ride the fast-path planner.
- **TPC-C** — tenant *t* maps to warehouse ``t % warehouses + 1``;
  PAYMENT-style multi-statement transactions cross warehouses ~7% of the
  time (the paper's multi-node 2PC fraction), plus ORDER STATUS and STOCK
  LEVEL reads.
- **gharchive** — append-only event ingest (Fig. 7a) with occasional
  read-back of a recently written event id.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable

from .. import gharchive, tpcc, ycsb


@dataclass(frozen=True)
class WorkloadMix:
    name: str
    #: setup(session, cfg) — create schema + load data, once per run.
    setup: Callable
    #: transaction(client, rng, tenant, cfg) — one closed-loop transaction.
    transaction: Callable


# --------------------------------------------------------------- YCSB A/B/C


def _ycsb_setup(session, cfg) -> None:
    ycsb.create_schema(session, distributed=True)
    records = cfg.tenants * cfg.ycsb_keys_per_tenant
    ycsb.load_data(session, ycsb.YcsbConfig(records=records, seed=cfg.seed))


def _ycsb_transaction(read_fraction: float):
    def run(client, rng: random.Random, tenant: int, cfg) -> None:
        local = rng.randrange(cfg.ycsb_keys_per_tenant)
        key = ycsb.key_name(tenant * cfg.ycsb_keys_per_tenant + local)
        if rng.random() < read_fraction:
            client.execute("SELECT * FROM usertable WHERE ycsb_key = $1", [key])
        else:
            field = rng.choice(ycsb.FIELDS)
            value = "".join(
                rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(20)
            )
            client.execute(
                f"UPDATE usertable SET {field} = $1 WHERE ycsb_key = $2",
                [value, key],
            )

    return run


# -------------------------------------------------------------------- TPC-C


def _tpcc_setup(session, cfg) -> None:
    tpcc.create_schema(session, distributed=True)
    tpcc.load_data(session, tpcc.TpccConfig(
        warehouses=cfg.tpcc_warehouses, items=cfg.tpcc_items, seed=cfg.seed,
    ))


def _tpcc_warehouse(tenant: int, cfg) -> int:
    return tenant % cfg.tpcc_warehouses + 1


def _tpcc_payment(client, rng: random.Random, tenant: int, cfg) -> None:
    w = _tpcc_warehouse(tenant, cfg)
    d = rng.randint(1, tpcc.DISTRICTS_PER_WAREHOUSE)
    c = rng.randint(1, tpcc.CUSTOMERS_PER_DISTRICT)
    c_w = w
    if rng.random() < cfg.cross_warehouse_fraction and cfg.tpcc_warehouses > 1:
        while c_w == w:
            c_w = rng.randint(1, cfg.tpcc_warehouses)
    amount = round(rng.uniform(1, 500), 2)
    client.execute("BEGIN")
    client.execute(
        "UPDATE warehouse SET w_ytd = w_ytd + $1 WHERE w_id = $2", [amount, w]
    )
    client.execute(
        "UPDATE district SET d_ytd = d_ytd + $1 WHERE d_w_id = $2 AND d_id = $3",
        [amount, w, d],
    )
    client.execute(
        "UPDATE customer SET c_balance = c_balance - $1,"
        " c_ytd_payment = c_ytd_payment + $1"
        " WHERE c_w_id = $2 AND c_d_id = $3 AND c_id = $4",
        [amount, c_w, d, c],
    )
    client.execute("COMMIT")


def _tpcc_order_status(client, rng: random.Random, tenant: int, cfg) -> None:
    w = _tpcc_warehouse(tenant, cfg)
    d = rng.randint(1, tpcc.DISTRICTS_PER_WAREHOUSE)
    c = rng.randint(1, tpcc.CUSTOMERS_PER_DISTRICT)
    client.execute(
        "SELECT o_id, o_entry_d, o_ol_cnt FROM orders"
        " WHERE o_w_id = $1 AND o_d_id = $2 AND o_c_id = $3"
        " ORDER BY o_id DESC LIMIT 1",
        [w, d, c],
    )


def _tpcc_stock_level(client, rng: random.Random, tenant: int, cfg) -> None:
    w = _tpcc_warehouse(tenant, cfg)
    client.execute(
        "SELECT count(*) FROM stock WHERE s_w_id = $1 AND s_quantity < $2",
        [w, 20],
    )


def _tpcc_transaction(client, rng: random.Random, tenant: int, cfg) -> None:
    roll = rng.random()
    if roll < 0.60:
        _tpcc_payment(client, rng, tenant, cfg)
    elif roll < 0.85:
        _tpcc_order_status(client, rng, tenant, cfg)
    else:
        _tpcc_stock_level(client, rng, tenant, cfg)


# ---------------------------------------------------------------- gharchive


def _gharchive_setup(session, cfg) -> None:
    # Ingest-shaped: no trigram index or rollup table — bench_fig7 covers
    # the analytics side; here the events table takes single-row inserts.
    gharchive.create_schema(
        session, distributed=True, with_index=False, with_rollup=False
    )


def _gharchive_event(rng: random.Random, tenant: int, event_id: str) -> list:
    day = rng.randrange(7) + 1
    data = {
        "type": "PushEvent",
        "created_at": f"2020-01-{day:02d}T{rng.randrange(24):02d}:00:00",
        "repo": f"org/repo-{tenant}",
        "payload": {"commits": [{"sha": event_id[:10], "message": "update"}]},
    }
    return [event_id, data]


def _gharchive_transaction(client, rng: random.Random, tenant: int, cfg) -> None:
    event_id = hashlib.md5(
        f"{cfg.seed}-{tenant}-{rng.getrandbits(64)}".encode()
    ).hexdigest()
    roll = rng.random()
    if roll < 0.85:
        client.execute(
            "INSERT INTO github_events (event_id, data) VALUES ($1, $2)",
            _gharchive_event(rng, tenant, event_id),
        )
    elif roll < 0.9:
        # Batch ingest: a micro-archive of events lands as one COPY
        # through the streaming write plane's per-shard channels.
        batch = [
            _gharchive_event(rng, tenant, f"{event_id}-{i}")
            for i in range(cfg.gharchive_batch_rows)
        ]
        client.copy_rows("github_events", batch, ["event_id", "data"])
    else:
        client.execute(
            "SELECT data FROM github_events WHERE event_id = $1", [event_id]
        )


MIXES: dict[str, WorkloadMix] = {
    "ycsb_a": WorkloadMix("ycsb_a", _ycsb_setup, _ycsb_transaction(0.5)),
    "ycsb_b": WorkloadMix("ycsb_b", _ycsb_setup, _ycsb_transaction(0.95)),
    "ycsb_c": WorkloadMix("ycsb_c", _ycsb_setup, _ycsb_transaction(1.0)),
    "tpcc": WorkloadMix("tpcc", _tpcc_setup, _tpcc_transaction),
    "gharchive": WorkloadMix("gharchive", _gharchive_setup, _gharchive_transaction),
}

#: Setup functions shared by several mixes (all three YCSB variants use one
#: table) — the harness runs each distinct setup exactly once.
SETUP_GROUPS = {
    "ycsb_a": "ycsb",
    "ycsb_b": "ycsb",
    "ycsb_c": "ycsb",
    "tpcc": "tpcc",
    "gharchive": "gharchive",
}
