"""Declarative SLO specs evaluated against a traffic run.

A spec is a list of rules; evaluation reads the run's
``citus_stat_statements`` rows (per-fingerprint p50/p95/p99 in simulated
milliseconds) and the run-scoped cluster counter delta, and produces a
machine-readable report: every rule with its observed value, threshold,
and verdict. The report is pure virtual-time data, so two runs from the
same seed serialize byte-for-byte identically — which is itself one of
the ``bench_traffic`` CI assertions.

Rule kinds:

- :class:`LatencyRule` — bound a percentile of statement latency over the
  fingerprints matching a tier / query-substring filter (the bound applies
  to the *worst* matching fingerprint, calls-weighting would let one hot
  cheap query mask a slow one).
- :class:`CounterRule` — bound a cluster counter delta (e.g.
  ``pool_client_rejections == 0``).
- :class:`RatioRule` — bound a ratio of counter deltas (e.g. the 2PC rate
  ``twopc_transactions / (onepc_commits + twopc_transactions)``).
"""

from __future__ import annotations

from dataclasses import dataclass

# citus_stat_statements row layout (see StatementStats.rows()).
_COL_QUERY, _COL_TENANT, _COL_TIER, _COL_CALLS = 0, 1, 2, 3
_COL_P50, _COL_P95, _COL_P99 = 7, 8, 9
_PCT_COL = {50: _COL_P50, 95: _COL_P95, 99: _COL_P99}


@dataclass(frozen=True)
class LatencyRule:
    name: str
    percentile: int  # 50 | 95 | 99
    max_ms: float  # simulated milliseconds
    tier: str | None = None  # e.g. "fast_path", "router", "pushdown"
    tiers: tuple = ()  # alternative: several tiers
    query_substring: str | None = None
    min_calls: int = 1
    #: A rule that matches no fingerprint fails by default — a filter that
    #: silently matches nothing would turn the gate into a no-op.
    require_match: bool = True

    def _matches(self, row) -> bool:
        if row[_COL_CALLS] < self.min_calls:
            return False
        wanted = set(self.tiers) | ({self.tier} if self.tier else set())
        if wanted and row[_COL_TIER] not in wanted:
            return False
        if self.query_substring is not None:
            if self.query_substring.lower() not in (row[_COL_QUERY] or "").lower():
                return False
        return True

    def evaluate(self, stat_rows, counters) -> dict:
        if self.percentile not in _PCT_COL:
            raise ValueError(f"unsupported percentile {self.percentile}")
        col = _PCT_COL[self.percentile]
        worst, worst_query, matched = None, None, 0
        for row in stat_rows:
            if not self._matches(row):
                continue
            matched += 1
            if worst is None or row[col] > worst:
                worst, worst_query = row[col], row[_COL_QUERY]
        if worst is None:
            return {
                "rule": self.name,
                "kind": "latency",
                "percentile": self.percentile,
                "observed_ms": None,
                "threshold_ms": self.max_ms,
                "matched_fingerprints": 0,
                "passed": not self.require_match,
                "detail": "no matching statements",
            }
        return {
            "rule": self.name,
            "kind": "latency",
            "percentile": self.percentile,
            "observed_ms": round(worst, 6),
            "threshold_ms": self.max_ms,
            "matched_fingerprints": matched,
            "worst_query": worst_query,
            "passed": worst <= self.max_ms,
        }


@dataclass(frozen=True)
class CounterRule:
    name: str
    counter: str
    max_value: float = 0.0

    def evaluate(self, stat_rows, counters) -> dict:
        observed = counters.get(self.counter, 0)
        return {
            "rule": self.name,
            "kind": "counter",
            "counter": self.counter,
            "observed": observed,
            "threshold": self.max_value,
            "passed": observed <= self.max_value,
        }


@dataclass(frozen=True)
class RatioRule:
    name: str
    numerator: str
    denominators: tuple  # counter names summed into the denominator
    max_ratio: float
    #: Lower bound on the ratio. Non-zero turns the rule two-sided — e.g.
    #: asserting the observed cross-node transaction fraction actually
    #: lands near a workload's configured target, not just below a cap.
    min_ratio: float = 0.0

    def evaluate(self, stat_rows, counters) -> dict:
        num = counters.get(self.numerator, 0)
        den = sum(counters.get(c, 0) for c in self.denominators)
        ratio = (num / den) if den else 0.0
        return {
            "rule": self.name,
            "kind": "ratio",
            "numerator": self.numerator,
            "denominator": den,
            "observed_ratio": round(ratio, 6),
            "threshold_ratio": self.max_ratio,
            "min_ratio": self.min_ratio,
            "passed": self.min_ratio <= ratio <= self.max_ratio,
        }


def evaluate_slo(rules, stat_rows, counters) -> dict:
    """Evaluate every rule; the report passes only if all rules pass.
    ``failed_rules`` names the offenders so callers (the harness report,
    CI logs) can headline the failure without re-scanning ``rules``."""
    results = [rule.evaluate(stat_rows, counters) for rule in rules]
    return {
        "passed": all(r["passed"] for r in results),
        "failed_rules": [r["rule"] for r in results if not r["passed"]],
        "rules": results,
    }


def default_slo_spec(router_read_p99_ms: float = 50.0,
                     crud_write_p99_ms: float = 80.0,
                     multi_statement_p95_ms: float = 150.0,
                     max_twopc_rate: float = 0.25):
    """The stock gate used by ``bench_traffic``: tail latency on the
    single-tenant fast path, bounded 2PC rate, and a healthy pool (no
    client rejections). Thresholds are simulated milliseconds."""
    return [
        LatencyRule(
            "router reads p99", percentile=99, max_ms=router_read_p99_ms,
            tiers=("fast_path", "router"), query_substring="SELECT",
        ),
        LatencyRule(
            "router writes p99", percentile=99, max_ms=crud_write_p99_ms,
            tiers=("fast_path", "router", "insert_values"),
            query_substring="UPDATE",
        ),
        LatencyRule(
            "all statements p95", percentile=95, max_ms=multi_statement_p95_ms,
        ),
        CounterRule("no pool client rejections", "pool_client_rejections", 0),
        RatioRule(
            "2PC rate", "twopc_transactions",
            ("onepc_commits", "twopc_transactions"), max_twopc_rate,
        ),
    ]
