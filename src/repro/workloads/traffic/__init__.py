"""Closed-loop multi-tenant traffic harness (§4 workload shapes).

The paper evaluates Citus under production-shaped load: multi-tenant SaaS
(TPC-C, §4.1), real-time analytics (gharchive ingest, §4.2), and
high-performance CRUD (YCSB, §4.3). This package drives all three at once
the way millions of users would: thousands of simulated concurrent
sessions, each a closed-loop actor with a seeded think-time distribution,
a Zipf-skewed tenant identity, connection churn through the pgbouncer
pools, and a per-tenant workload mix — interleaved in virtual-time order
over the shared :class:`~repro.net.clock.SimClock` so every run is
reproducible byte-for-byte from a seed.

At the end of a run the harness reads p50/p95/p99 per fingerprint from
``citus_stat_statements``, pool and wait-event counters, and the 2PC
counters, and evaluates a declarative SLO spec into a machine-readable
report (the ``bench_traffic`` CI gate).
"""

from .generators import ExponentialThink, FixedThink, ZipfGenerator, make_think
from .harness import TrafficConfig, TrafficHarness, run_traffic
from .mixes import MIXES, WorkloadMix
from .slo import CounterRule, LatencyRule, RatioRule, default_slo_spec, evaluate_slo

__all__ = [
    "ZipfGenerator",
    "ExponentialThink",
    "FixedThink",
    "make_think",
    "TrafficConfig",
    "TrafficHarness",
    "run_traffic",
    "WorkloadMix",
    "MIXES",
    "LatencyRule",
    "CounterRule",
    "RatioRule",
    "evaluate_slo",
    "default_slo_spec",
]
