"""Seeded distributions for the traffic harness.

Two things make simulated traffic "production-shaped" rather than a tight
loop: *skew* (a few tenants dominate — the multi-tenant reality Lion,
arxiv 2403.11221, models) and *pacing* (sessions think between
transactions instead of hammering). Both must be deterministic under a
seed so two runs of the harness produce identical SLO reports.
"""

from __future__ import annotations

import bisect
import itertools
import random


class ZipfGenerator:
    """Zipf-distributed tenant sampler over ids ``0 .. n-1``.

    Tenant ``k`` (0-based rank) is drawn with probability proportional to
    ``1 / (k + 1) ** s``. The cumulative weights are precomputed once and
    sampling is a uniform draw plus a bisect, so a multi-million-sample
    run costs O(log n) per draw.
    """

    def __init__(self, n: int, s: float = 1.1, seed: int = 0):
        if n < 1:
            raise ValueError("ZipfGenerator needs at least one tenant")
        self.n = n
        self.s = s
        self.rng = random.Random(seed)
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        self._cdf = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self) -> int:
        return bisect.bisect_left(self._cdf, self.rng.random() * self._total)

    def probability(self, k: int) -> float:
        """Theoretical probability of tenant ``k`` — tests compare the
        empirical histogram against this."""
        return (1.0 / (k + 1) ** self.s) / self._total


class ExponentialThink:
    """Exponentially distributed think time (a Poisson arrival process per
    session) with the given mean, in simulated seconds."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError("mean think time must be positive")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class FixedThink:
    """Constant think time — useful for worst-case synchronized load."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError("think time cannot be negative")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        return self.value


def make_think(kind: str, mean: float):
    """Factory keyed by the config string: 'exponential' | 'fixed'."""
    if kind == "exponential":
        return ExponentialThink(mean)
    if kind == "fixed":
        return FixedThink(mean)
    raise ValueError(f"unknown think-time distribution {kind!r}")
