"""pgbench-style two-update transaction (§4.1.1, Figure 9).

Two 50 GB tables (scaled down here), distributed and co-located by key::

    UPDATE a1 SET v = v + :d WHERE key = :key1;
    UPDATE a2 SET v = v - :d WHERE key = :key2;

One run uses the same random value for both keys (two co-located updates,
single worker transaction); the other uses independent keys, which makes
the commit a 2PC whenever the keys land on different nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

SCHEMA = """
CREATE TABLE a1 (key int PRIMARY KEY, v int);
CREATE TABLE a2 (key int PRIMARY KEY, v int);
"""

DISTRIBUTION = """
SELECT create_distributed_table('a1', 'key');
SELECT create_distributed_table('a2', 'key', colocate_with := 'a1');
"""

TRANSACTION = [
    "UPDATE a1 SET v = v + :d WHERE key = :key1",
    "UPDATE a2 SET v = v - :d WHERE key = :key2",
]


@dataclass
class PgbenchConfig:
    rows: int = 200
    seed: int = 11


def create_schema(session, distributed: bool = True) -> None:
    session.execute(SCHEMA)
    if distributed:
        session.execute(DISTRIBUTION)


def load_data(session, config: PgbenchConfig) -> None:
    rows = [[k, 0] for k in range(config.rows)]
    session.copy_rows("a1", rows)
    session.copy_rows("a2", [list(r) for r in rows])


@dataclass
class PgbenchStats:
    transactions: int = 0
    total_delta: int = 0


class PgbenchDriver:
    def __init__(self, session, config: PgbenchConfig, same_key: bool,
                 seed_offset: int = 0):
        self.session = session
        self.config = config
        self.same_key = same_key
        self.rng = random.Random(config.seed + seed_offset)
        self.stats = PgbenchStats()

    def run(self, transactions: int) -> PgbenchStats:
        for _ in range(transactions):
            self.run_one()
        return self.stats

    def run_one(self) -> None:
        key1 = self.rng.randrange(self.config.rows)
        key2 = key1 if self.same_key else self.rng.randrange(self.config.rows)
        delta = self.rng.randint(1, 10)
        s = self.session
        s.execute("BEGIN")
        s.execute(TRANSACTION[0], {"d": delta, "key1": key1, "key2": key2})
        s.execute(TRANSACTION[1], {"d": delta, "key1": key1, "key2": key2})
        s.execute("COMMIT")
        self.stats.transactions += 1
        self.stats.total_delta += delta


def invariant_sum(session) -> int:
    """sum(a1.v) + sum(a2.v) must stay 0 when every transaction commits
    atomically — the cross-table invariant Figure 9's benchmark preserves."""
    s1 = session.execute("SELECT coalesce(sum(v), 0) FROM a1").scalar()
    s2 = session.execute("SELECT coalesce(sum(v), 0) FROM a2").scalar()
    return (s1 or 0) + (s2 or 0)
