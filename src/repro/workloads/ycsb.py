"""YCSB (Yahoo Cloud Serving Benchmark) workloads (§4.3).

Workload A is the paper's benchmark: 50% reads / 50% updates on single
keys with a uniform request distribution — the canonical high-performance
CRUD pattern. Workloads B (95/5) and C (read-only) are included for
completeness and used by the ablation benches.

The paper runs "with every worker node acting as coordinator" and the
client load-balancing across all nodes; :class:`YcsbDriver` supports a list
of sessions on different nodes for exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

FIELDS = [f"field{i}" for i in range(10)]

SCHEMA = (
    "CREATE TABLE usertable (ycsb_key text PRIMARY KEY, "
    + ", ".join(f"{f} text" for f in FIELDS)
    + ")"
)

DISTRIBUTION = "SELECT create_distributed_table('usertable', 'ycsb_key')"


@dataclass
class YcsbConfig:
    records: int = 1000
    seed: int = 7
    read_fraction: float = 0.5  # workload A
    field_length: int = 20


WORKLOAD_A = YcsbConfig(read_fraction=0.5)
WORKLOAD_B = YcsbConfig(read_fraction=0.95)
WORKLOAD_C = YcsbConfig(read_fraction=1.0)


def key_name(i: int) -> str:
    return f"user{i:012d}"


def create_schema(session, distributed: bool = True) -> None:
    session.execute(SCHEMA)
    if distributed:
        session.execute(DISTRIBUTION)


def load_data(session, config: YcsbConfig, batch_size: int = 500) -> int:
    rng = random.Random(config.seed)
    total = 0
    batch = []
    for i in range(config.records):
        row = [key_name(i)] + [_random_field(rng, config.field_length) for _ in FIELDS]
        batch.append(row)
        if len(batch) >= batch_size:
            total += session.copy_rows("usertable", batch)
            batch = []
    if batch:
        total += session.copy_rows("usertable", batch)
    return total


def _random_field(rng: random.Random, length: int) -> str:
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length))


@dataclass
class YcsbStats:
    reads: int = 0
    updates: int = 0
    read_misses: int = 0

    @property
    def operations(self) -> int:
        return self.reads + self.updates


class YcsbDriver:
    """Runs the operation mix, round-robining over the provided sessions
    (one per coordinator node when metadata sync is enabled)."""

    def __init__(self, sessions, config: YcsbConfig, seed_offset: int = 0):
        self.sessions = sessions if isinstance(sessions, list) else [sessions]
        self.config = config
        self.rng = random.Random(config.seed + 31 + seed_offset)
        self.stats = YcsbStats()
        self._next_session = 0

    def _session(self):
        session = self.sessions[self._next_session % len(self.sessions)]
        self._next_session += 1
        return session

    def run(self, operations: int) -> YcsbStats:
        for _ in range(operations):
            self.run_one()
        return self.stats

    def run_one(self) -> None:
        key = key_name(self.rng.randrange(self.config.records))
        session = self._session()
        if self.rng.random() < self.config.read_fraction:
            result = session.execute(
                "SELECT * FROM usertable WHERE ycsb_key = $1", [key]
            )
            self.stats.reads += 1
            if not result.rows:
                self.stats.read_misses += 1
        else:
            field = self.rng.choice(FIELDS)
            value = _random_field(self.rng, self.config.field_length)
            session.execute(
                f"UPDATE usertable SET {field} = $1 WHERE ycsb_key = $2",
                [value, key],
            )
            self.stats.updates += 1
