"""HammerDB-style TPC-C workload (§4.1).

"The benchmark effectively models a multi-tenant OLTP workload in which
warehouses are the tenants. Most tables have a warehouse ID column and most
transactions only affect a single warehouse ID ... Around ~7% of
transactions span across multiple warehouses."

The schema follows TPC-C (trimmed column lists), distributed exactly as the
paper describes: ``items`` is a reference table, every other table is
distributed and co-located on the warehouse id, and the NEW ORDER / PAYMENT
procedures can be delegated to workers by warehouse id.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import LockTimeout, SQLError, TransactionError

SCHEMA = """
CREATE TABLE items (
    i_id int PRIMARY KEY,
    i_name text NOT NULL,
    i_price float NOT NULL
);
CREATE TABLE warehouse (
    w_id int PRIMARY KEY,
    w_name text,
    w_tax float,
    w_ytd float
);
CREATE TABLE district (
    d_w_id int,
    d_id int,
    d_tax float,
    d_ytd float,
    d_next_o_id int,
    PRIMARY KEY (d_w_id, d_id)
);
CREATE TABLE customer (
    c_w_id int,
    c_d_id int,
    c_id int,
    c_name text,
    c_balance float,
    c_ytd_payment float,
    PRIMARY KEY (c_w_id, c_d_id, c_id)
);
CREATE TABLE orders (
    o_w_id int,
    o_d_id int,
    o_id int,
    o_c_id int,
    o_entry_d timestamp,
    o_ol_cnt int,
    PRIMARY KEY (o_w_id, o_d_id, o_id)
);
CREATE TABLE order_line (
    ol_w_id int,
    ol_d_id int,
    ol_o_id int,
    ol_number int,
    ol_i_id int,
    ol_supply_w_id int,
    ol_quantity int,
    ol_amount float,
    PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)
);
CREATE TABLE stock (
    s_w_id int,
    s_i_id int,
    s_quantity int,
    s_ytd float,
    PRIMARY KEY (s_w_id, s_i_id)
);
"""

DISTRIBUTION = """
SELECT create_reference_table('items');
SELECT create_distributed_table('warehouse', 'w_id');
SELECT create_distributed_table('district', 'd_w_id', colocate_with := 'warehouse');
SELECT create_distributed_table('customer', 'c_w_id', colocate_with := 'warehouse');
SELECT create_distributed_table('orders', 'o_w_id', colocate_with := 'warehouse');
SELECT create_distributed_table('order_line', 'ol_w_id', colocate_with := 'warehouse');
SELECT create_distributed_table('stock', 's_w_id', colocate_with := 'warehouse');
"""

DISTRICTS_PER_WAREHOUSE = 4
CUSTOMERS_PER_DISTRICT = 10


@dataclass
class TpccConfig:
    warehouses: int = 4
    items: int = 50
    seed: int = 42
    cross_warehouse_fraction: float = 0.07  # the paper's ~7%


@dataclass
class TpccStats:
    new_orders: int = 0
    payments: int = 0
    order_statuses: int = 0
    deliveries: int = 0
    stock_levels: int = 0
    aborts: int = 0
    retries: int = 0

    @property
    def total(self) -> int:
        return (self.new_orders + self.payments + self.order_statuses
                + self.deliveries + self.stock_levels)


def create_schema(session, distributed: bool = True) -> None:
    session.execute(SCHEMA)
    if distributed:
        session.execute(DISTRIBUTION)


def load_data(session, config: TpccConfig) -> None:
    rng = random.Random(config.seed)
    session.copy_rows(
        "items",
        [[i, f"item-{i}", round(rng.uniform(1, 100), 2)] for i in range(1, config.items + 1)],
    )
    session.copy_rows(
        "warehouse",
        [[w, f"warehouse-{w}", round(rng.uniform(0, 0.2), 4), 0.0]
         for w in range(1, config.warehouses + 1)],
    )
    districts, customers, stocks = [], [], []
    for w in range(1, config.warehouses + 1):
        for d in range(1, DISTRICTS_PER_WAREHOUSE + 1):
            districts.append([w, d, round(rng.uniform(0, 0.2), 4), 0.0, 1])
            for c in range(1, CUSTOMERS_PER_DISTRICT + 1):
                customers.append([w, d, c, f"customer-{w}-{d}-{c}", 0.0, 0.0])
        for i in range(1, config.items + 1):
            stocks.append([w, i, rng.randint(10, 100), 0.0])
    session.copy_rows("district", districts)
    session.copy_rows("customer", customers)
    session.copy_rows("stock", stocks)


class TpccDriver:
    """Runs the TPC-C transaction mix against one session (one "virtual
    user"). Transactions follow the standard mix; ~7% of NEW ORDER lines
    name a remote supply warehouse, which makes the transaction multi-node
    under Citus."""

    def __init__(self, session, config: TpccConfig, seed_offset: int = 0):
        self.session = session
        self.config = config
        self.rng = random.Random(config.seed + 1000 + seed_offset)
        self.stats = TpccStats()

    # ------------------------------------------------------------ driving

    def run(self, transactions: int) -> TpccStats:
        for _ in range(transactions):
            self.run_one()
        return self.stats

    def run_one(self) -> None:
        roll = self.rng.random()
        try:
            if roll < 0.45:
                self.new_order()
            elif roll < 0.88:
                self.payment()
            elif roll < 0.92:
                self.order_status()
            elif roll < 0.96:
                self.delivery()
            else:
                self.stock_level()
        except (LockTimeout, TransactionError):
            self.stats.aborts += 1
            self._safe_rollback()

    def _safe_rollback(self) -> None:
        try:
            self.session.execute("ROLLBACK")
        except SQLError:
            pass

    def _warehouse(self) -> int:
        return self.rng.randint(1, self.config.warehouses)

    def _remote_warehouse(self, home: int) -> int:
        if self.config.warehouses == 1:
            return home
        while True:
            w = self.rng.randint(1, self.config.warehouses)
            if w != home:
                return w

    # ------------------------------------------------------- transactions

    def new_order(self) -> None:
        s = self.session
        w = self._warehouse()
        d = self.rng.randint(1, DISTRICTS_PER_WAREHOUSE)
        c = self.rng.randint(1, CUSTOMERS_PER_DISTRICT)
        n_lines = self.rng.randint(2, 5)
        s.execute("BEGIN")
        o_id = s.execute(
            "SELECT d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2 FOR UPDATE",
            [w, d],
        ).scalar()
        s.execute(
            "UPDATE district SET d_next_o_id = d_next_o_id + 1"
            " WHERE d_w_id = $1 AND d_id = $2",
            [w, d],
        )
        s.execute(
            "INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, o_entry_d, o_ol_cnt)"
            " VALUES ($1, $2, $3, $4, now(), $5)",
            [w, d, o_id, c, n_lines],
        )
        for line in range(1, n_lines + 1):
            item = self.rng.randint(1, self.config.items)
            supply_w = w
            if self.rng.random() < self.config.cross_warehouse_fraction:
                supply_w = self._remote_warehouse(w)
            price = s.execute(
                "SELECT i_price FROM items WHERE i_id = $1", [item]
            ).scalar()
            qty = self.rng.randint(1, 5)
            s.execute(
                "UPDATE stock SET s_quantity = s_quantity - $1, s_ytd = s_ytd + $2"
                " WHERE s_w_id = $3 AND s_i_id = $4",
                [qty, qty * (price or 1.0), supply_w, item],
            )
            s.execute(
                "INSERT INTO order_line (ol_w_id, ol_d_id, ol_o_id, ol_number,"
                " ol_i_id, ol_supply_w_id, ol_quantity, ol_amount)"
                " VALUES ($1, $2, $3, $4, $5, $6, $7, $8)",
                [w, d, o_id, line, item, supply_w, qty, qty * (price or 1.0)],
            )
        s.execute("COMMIT")
        self.stats.new_orders += 1

    def payment(self) -> None:
        s = self.session
        w = self._warehouse()
        d = self.rng.randint(1, DISTRICTS_PER_WAREHOUSE)
        c_w = w
        if self.rng.random() < self.config.cross_warehouse_fraction:
            c_w = self._remote_warehouse(w)
        c = self.rng.randint(1, CUSTOMERS_PER_DISTRICT)
        amount = round(self.rng.uniform(1, 500), 2)
        s.execute("BEGIN")
        s.execute(
            "UPDATE warehouse SET w_ytd = w_ytd + $1 WHERE w_id = $2", [amount, w]
        )
        s.execute(
            "UPDATE district SET d_ytd = d_ytd + $1 WHERE d_w_id = $2 AND d_id = $3",
            [amount, w, d],
        )
        s.execute(
            "UPDATE customer SET c_balance = c_balance - $1,"
            " c_ytd_payment = c_ytd_payment + $1"
            " WHERE c_w_id = $2 AND c_d_id = $3 AND c_id = $4",
            [amount, c_w, d, c],
        )
        s.execute("COMMIT")
        self.stats.payments += 1

    def order_status(self) -> None:
        s = self.session
        w = self._warehouse()
        d = self.rng.randint(1, DISTRICTS_PER_WAREHOUSE)
        c = self.rng.randint(1, CUSTOMERS_PER_DISTRICT)
        s.execute(
            "SELECT o_id, o_entry_d, o_ol_cnt FROM orders"
            " WHERE o_w_id = $1 AND o_d_id = $2 AND o_c_id = $3"
            " ORDER BY o_id DESC LIMIT 1",
            [w, d, c],
        )
        self.stats.order_statuses += 1

    def delivery(self) -> None:
        s = self.session
        w = self._warehouse()
        s.execute("BEGIN")
        for d in range(1, DISTRICTS_PER_WAREHOUSE + 1):
            oldest = s.execute(
                "SELECT min(o_id) FROM orders WHERE o_w_id = $1 AND o_d_id = $2",
                [w, d],
            ).scalar()
            if oldest is None:
                continue
            s.execute(
                "UPDATE customer SET c_balance = c_balance + ("
                " SELECT coalesce(sum(ol_amount), 0) FROM order_line"
                " WHERE ol_w_id = $1 AND ol_d_id = $2 AND ol_o_id = $3)"
                " WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = ("
                " SELECT o_c_id FROM orders WHERE o_w_id = $1 AND o_d_id = $2"
                " AND o_id = $3)",
                [w, d, oldest],
            )
        s.execute("COMMIT")
        self.stats.deliveries += 1

    def stock_level(self) -> None:
        s = self.session
        w = self._warehouse()
        s.execute(
            "SELECT count(*) FROM stock WHERE s_w_id = $1 AND s_quantity < $2",
            [w, 20],
        )
        self.stats.stock_levels += 1


def consistency_totals(session) -> dict:
    """Cross-checkable invariant inputs: per-warehouse sums used by tests
    to verify PostgreSQL and Citus runs produce identical state."""
    return {
        "orders": session.execute("SELECT count(*) FROM orders").scalar(),
        "order_lines": session.execute("SELECT count(*) FROM order_line").scalar(),
        "ytd": round(session.execute("SELECT coalesce(sum(w_ytd), 0) FROM warehouse").scalar() or 0, 2),
        "stock_ytd": round(session.execute("SELECT coalesce(sum(s_ytd), 0) FROM stock").scalar() or 0, 2),
        "balance": round(session.execute("SELECT coalesce(sum(c_balance), 0) FROM customer").scalar() or 0, 2),
    }
