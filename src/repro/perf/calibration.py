"""Calibration constants for the performance model.

Methodology (recorded per DESIGN.md): for each figure, the single-server
PostgreSQL column is anchored to a plausible absolute value for the paper's
hardware (where the paper states numbers — e.g. Fig. 7c's "96% reduction
on Citus 8+1" — those are used directly); the cluster columns are then
*predicted* by the resource model, not fitted. The reproduction target is
the shape: who wins, by roughly what factor, and where scaling flattens.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tpcc:
    """Figure 6 — HammerDB TPC-C: 500 warehouses (~100 GB), 250 vusers,
    1 ms keying time."""

    warehouses: int = 500
    vusers: int = 250
    data_bytes: float = 100 * 1024**3
    sleep_s: float = 0.001
    # NEW ORDER is ~45% of the mix; NOPM counts only those.
    new_order_fraction: float = 0.45
    # Logical page reads per transaction (index descents + row fetches
    # across the ~10 order lines): HammerDB-on-PG ballpark.
    page_accesses_per_txn: float = 30.0
    # Dirty pages written back per transaction (WAL + heap + index).
    page_writes_per_txn: float = 6.0
    # CPU seconds per transaction on one core (parse/plan/execute).
    cpu_s_per_txn: float = 0.012
    # Statements per transaction that cross the wire in Citus.
    statements_per_txn: float = 30.0  # client-visible statements per txn
    cross_shard_fraction: float = 0.07  # ~7% multi-warehouse transactions
    distributed_overhead: float = 0.07  # Citus 0+1 planning overhead


@dataclass(frozen=True)
class RealTime:
    """Figure 7 — GitHub archive microbenchmarks (~100 GB table)."""

    copy_bytes: float = 4.4 * 1024**3
    table_bytes: float = 100 * 1024**3
    # Single-core COPY parse+insert rate with a large GIN index present.
    copy_core_bytes_per_s: float = 3.0 * 1024**2
    # Coordinator-side parse/route rate (no index maintenance): the cap
    # that stops COPY scaling past ~4 workers (Fig. 7a).
    coordinator_copy_bytes_per_s: float = 24 * 1024**2
    # In-memory scan+jsonb-filter rate per core for the dashboard query.
    dashboard_core_bytes_per_s: float = 220 * 1024**2
    # The dashboard query touches the fraction of the table the GIN index
    # narrows it to (reads recheck + aggregation input).
    dashboard_selectivity: float = 0.35
    # INSERT..SELECT transformation: per-core processing rate.
    transform_core_bytes_per_s: float = 12 * 1024**2
    transform_input_fraction: float = 0.30  # push events subset


@dataclass(frozen=True)
class Ycsb:
    """Figure 10 — YCSB workload A: 100 M rows (~100 GB), 256 threads,
    uniform, 50% reads / 50% updates."""

    rows: int = 100_000_000
    data_bytes: float = 100 * 1024**3
    threads: int = 256
    pages_per_read: float = 1.2  # pk index descent mostly cached; leaf+heap
    pages_per_update: float = 2.4  # read + write back + index
    cpu_s_per_op: float = 0.00004
    distributed_overhead: float = 0.10


@dataclass(frozen=True)
class Tpch:
    """Figure 8 — TPC-H scale factor 100 (~135 GB), 18 supported queries,
    single session."""

    data_bytes: float = 135 * 1024**3
    queries: int = 18
    # Bytes scanned per query relative to database size (TPC-H queries
    # scan most of lineitem/orders).
    scan_fraction_per_query: float = 0.55
    # Single-core processing rate once data is in memory.
    core_bytes_per_s: float = 55 * 1024**2
    # PostgreSQL runs a query mostly single-threaded (the paper notes
    # "most operations are single-threaded").
    pg_effective_cores: float = 1.0
    # A single backend's sequential read stream reaches less of the disk
    # bandwidth than Citus's parallel per-shard scans.
    pg_single_stream_bandwidth: float = 120 * 1024**2


@dataclass(frozen=True)
class Pgbench2pc:
    """Figure 9 — two-update pgbench transaction, 250 connections,
    2 × 50 GB tables."""

    connections: int = 250
    data_bytes: float = 100 * 1024**3
    pages_per_update: float = 2.0
    cpu_s_per_txn: float = 0.00015
    # Wire round trips: BEGIN+2×UPDATE+COMMIT pipelined ≈ 3 effective.
    rtts_single_node: float = 3.0
    # 2PC adds PREPARE + COMMIT PREPARED rounds (pipelined across the two
    # participants in parallel) and commit-record I/O.
    rtts_2pc_extra: float = 1.2
    commit_record_cost_s: float = 0.00035
    # Effective flushed pages per update after group-commit amortization.
    amortized_write_pages: float = 0.15
    read_pages_per_update: float = 1.5
    # Extra WAL/page writes 2PC adds on the participants (PREPARE state,
    # commit record).
    extra_2pc_io_pages: float = 0.12


TPCC = Tpcc()
REALTIME = RealTime()
YCSB = Ycsb()
TPCH = Tpch()
PGBENCH = Pgbench2pc()
