"""First-principles throughput/latency model behind each paper figure.

Every function takes a :class:`ClusterShape` (or iterates the four paper
setups) and returns the modeled metric. The common machinery:

- throughput is the min of the I/O-bound rate (IOPS budget / page misses
  per op), the CPU-bound rate (cores / CPU per op), and the closed-loop
  client limit (clients / response time) — whichever resource saturates
  first is the bottleneck, which is how the paper explains every figure
  ("the single server is I/O bottlenecked while the Citus cluster is only
  CPU bottlenecked");
- response time is service time plus network round trips plus an M/M/c-ish
  queueing inflation as utilization approaches 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from . import calibration as cal
from .resources import ClusterShape, cache_miss_fraction, paper_setups


@dataclass
class Throughput:
    setup: str
    value: float  # ops/sec unless stated
    response_time_ms: float
    bottleneck: str


def _closed_loop(clients: int, service_s: float, network_s: float,
                 io_rate: float, cpu_rate: float) -> tuple[float, float, str]:
    """Closed-loop throughput with capacity limits.

    Returns (throughput, response_time_s, bottleneck).
    """
    base_response = service_s + network_s
    demand = clients / base_response if base_response > 0 else float("inf")
    capacity = min(io_rate, cpu_rate)
    if demand <= capacity * 0.98:
        return demand, base_response, "clients"
    # Saturated: throughput pinned at capacity; queueing inflates response.
    throughput = capacity
    response = clients / throughput
    bottleneck = "disk I/O" if io_rate < cpu_rate else "CPU"
    return throughput, response, bottleneck


# --------------------------------------------------------------- Figure 6


def model_tpcc(shape: ClusterShape, p: cal.Tpcc = cal.TPCC) -> Throughput:
    """HammerDB TPC-C NOPM."""
    miss = cache_miss_fraction(p.data_bytes, shape.total_memory)
    io_pages_per_txn = p.page_accesses_per_txn * miss + p.page_writes_per_txn
    if shape.is_distributed:
        # Metadata/catalog lookups add a small per-transaction I/O tax —
        # this is the Citus 0+1 regression the paper shows.
        io_pages_per_txn *= 1.0 + p.distributed_overhead * 0.5
    io_rate = shape.total_iops / max(io_pages_per_txn, 0.1)
    cpu_rate = shape.total_cores / p.cpu_s_per_txn
    if shape.is_distributed:
        cpu_rate /= 1.0 + p.distributed_overhead
    service = p.cpu_s_per_txn + io_pages_per_txn / shape.node.disk_iops
    # Every client-visible statement is a driver round trip (the response
    # time of a TPC-C transaction is dominated by these).
    network = p.statements_per_txn * shape.network.rtt_seconds
    if shape.is_distributed:
        # Cross-shard transactions pay coordinator→worker round trips per
        # statement plus the 2PC exchange (§4.1: "response time ... is
        # dominated by network round-trips for individual statements").
        network += p.cross_shard_fraction * (
            (p.statements_per_txn + 2) * shape.network.rtt_seconds
        )
    network += p.sleep_s  # keying time behaves like think time
    txn_rate, response, bottleneck = _closed_loop(
        p.vusers, service, network, io_rate, cpu_rate
    )
    nopm = txn_rate * 60 * p.new_order_fraction
    return Throughput(shape.name, nopm, response * 1000, bottleneck)


def figure6() -> list[Throughput]:
    return [model_tpcc(shape) for shape in paper_setups()]


# --------------------------------------------------------------- Figure 7


def model_copy(shape: ClusterShape, p: cal.RealTime = cal.REALTIME) -> Throughput:
    """Fig 7(a): single-session COPY duration (seconds; lower is better)."""
    if not shape.is_distributed:
        rate = p.copy_core_bytes_per_s  # one backend does parse + index upkeep
        bottleneck = "single core"
    else:
        # Index maintenance parallelizes across shards (async per-shard
        # streams); the coordinator's single-core parse/route rate caps it.
        if shape.data_nodes == 1:
            # Citus 0+1: shard streams share the coordinator's box (cores,
            # one disk), so parallelism is modest.
            shard_parallelism = 3.0
        else:
            shard_parallelism = min(shape.total_cores / 2.0, 64)
        shard_rate = p.copy_core_bytes_per_s * shard_parallelism
        rate = min(shard_rate, p.coordinator_copy_bytes_per_s)
        bottleneck = "coordinator core" if rate >= p.coordinator_copy_bytes_per_s \
            else "shard writes"
    duration = p.copy_bytes / rate
    return Throughput(shape.name, duration, duration * 1000, bottleneck)


def model_dashboard_query(shape: ClusterShape, p: cal.RealTime = cal.REALTIME) -> Throughput:
    """Fig 7(b): dashboard GIN query runtime (seconds; in-memory, CPU bound)."""
    bytes_scanned = p.table_bytes * p.dashboard_selectivity
    if not shape.is_distributed:
        cores = 2.0  # limited PostgreSQL parallel query on one backend
    else:
        cores = shape.total_cores * 0.75  # parallel shard tasks
    duration = bytes_scanned / (p.dashboard_core_bytes_per_s * cores)
    return Throughput(shape.name, duration, duration * 1000, "CPU")


def model_insert_select(shape: ClusterShape, p: cal.RealTime = cal.REALTIME) -> Throughput:
    """Fig 7(c): INSERT..SELECT transformation runtime (seconds)."""
    bytes_processed = p.table_bytes * p.transform_input_fraction
    if not shape.is_distributed:
        cores = 1.0  # single backend does it all
    else:
        cores = shape.total_cores * 0.8  # co-located per-shard pipelines
    duration = bytes_processed / (p.transform_core_bytes_per_s * cores)
    return Throughput(shape.name, duration, duration * 1000, "CPU")


def figure7() -> dict[str, list[Throughput]]:
    shapes = paper_setups()
    return {
        "copy": [model_copy(s) for s in shapes],
        "dashboard": [model_dashboard_query(s) for s in shapes],
        "insert_select": [model_insert_select(s) for s in shapes],
    }


# --------------------------------------------------------------- Figure 8


def model_tpch(shape: ClusterShape, p: cal.Tpch = cal.TPCH) -> Throughput:
    """TPC-H queries per hour over a single session."""
    bytes_per_query = p.data_bytes * p.scan_fraction_per_query
    miss = cache_miss_fraction(p.data_bytes, shape.total_memory)
    if shape.is_distributed:
        cores = shape.total_cores * 0.85
        scan_bandwidth = shape.total_scan_bandwidth
    else:
        cores = p.pg_effective_cores
        scan_bandwidth = p.pg_single_stream_bandwidth
    cpu_time = bytes_per_query / (p.core_bytes_per_s * cores)
    io_time = bytes_per_query * miss / scan_bandwidth
    duration = cpu_time + io_time
    qph = 3600.0 / duration
    bottleneck = "disk I/O" if io_time > cpu_time else "CPU"
    return Throughput(shape.name, qph, duration * 1000, bottleneck)


def figure8() -> list[Throughput]:
    return [model_tpch(shape) for shape in paper_setups()]


# --------------------------------------------------------------- Figure 9


def model_pgbench_2pc(shape: ClusterShape, same_key: bool,
                      p: cal.Pgbench2pc = cal.PGBENCH) -> Throughput:
    """Two-update transactions/sec: co-located (same key) vs 2PC."""
    miss = cache_miss_fraction(p.data_bytes, shape.total_memory)
    pages = 2 * (p.read_pages_per_update * miss + p.amortized_write_pages)
    service = p.cpu_s_per_txn
    network = 0.0
    if shape.is_distributed:
        if same_key or shape.data_nodes == 1:
            network = p.rtts_single_node * shape.network.rtt_seconds
        else:
            # Different keys: usually two nodes → 2PC (on one node with
            # probability 1/n it degenerates to 1PC).
            n = shape.data_nodes
            p_two_nodes = 1.0 - 1.0 / n
            rtts = p.rtts_single_node + p_two_nodes * p.rtts_2pc_extra
            network = rtts * shape.network.rtt_seconds
            service += p_two_nodes * p.commit_record_cost_s
            # Phase-one PREPARE and the commit record flush cost extra
            # WAL/page writes on the participants — 2PC's I/O tax.
            pages += p_two_nodes * p.extra_2pc_io_pages
    io_rate = shape.total_iops / max(pages, 0.05)
    cpu_rate = shape.total_cores / p.cpu_s_per_txn
    tps, response, bottleneck = _closed_loop(
        p.connections, service, network, io_rate, cpu_rate
    )
    label = f"{shape.name} ({'same key' if same_key else 'different keys'})"
    return Throughput(label, tps, response * 1000, bottleneck)


def figure9() -> list[Throughput]:
    out = []
    for shape in paper_setups():
        if not shape.is_distributed:
            continue
        out.append(model_pgbench_2pc(shape, same_key=True))
        out.append(model_pgbench_2pc(shape, same_key=False))
    return out


# -------------------------------------------------------------- Figure 10


def model_ycsb(shape: ClusterShape, p: cal.Ycsb = cal.YCSB) -> Throughput:
    """YCSB workload A ops/sec; every node acts as a coordinator."""
    miss = cache_miss_fraction(p.data_bytes, shape.total_memory)
    pages_per_op = 0.5 * p.pages_per_read * miss + 0.5 * p.pages_per_update
    if shape.is_distributed:
        # Slight extra I/O and CPU per op for distributed planning/routing:
        # the "single server Citus performs slightly worse" effect.
        pages_per_op *= 1.0 + p.distributed_overhead * 0.4
    io_rate = shape.total_iops / max(pages_per_op, 0.05)
    cpu_per_op = p.cpu_s_per_op
    if shape.is_distributed:
        cpu_per_op *= 1.0 + p.distributed_overhead
    cpu_rate = shape.total_cores / cpu_per_op
    service = cpu_per_op + pages_per_op / shape.node.disk_iops
    network = shape.network.rtt_seconds if shape.is_distributed else 0.0
    ops, response, bottleneck = _closed_loop(
        p.threads, service, network, io_rate, cpu_rate
    )
    return Throughput(shape.name, ops, response * 1000, bottleneck)


def figure10() -> list[Throughput]:
    return [model_ycsb(shape) for shape in paper_setups()]


# ----------------------------------------------------------------- report


def format_table(rows: list[Throughput], metric: str = "throughput",
                 unit: str = "ops/s") -> str:
    lines = [f"{'setup':<28} {metric + ' (' + unit + ')':>22} {'p50 resp (ms)':>15} {'bottleneck':>12}"]
    for row in rows:
        lines.append(
            f"{row.setup:<28} {row.value:>22,.1f} {row.response_time_ms:>15,.2f}"
            f" {row.bottleneck:>12}"
        )
    return "\n".join(lines)


def speedup_over_postgres(rows: list[Throughput], higher_is_better: bool = True) -> dict:
    base = next(r.value for r in rows if r.setup.startswith("PostgreSQL"))
    out = {}
    for row in rows:
        out[row.setup] = (row.value / base) if higher_is_better else (base / row.value)
    return out
