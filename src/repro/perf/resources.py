"""Hardware resource descriptions for the performance model.

The paper's testbed (§4): Azure VMs with 16 vcpus, 64 GB memory,
network-attached disks with 7500 IOPS, PostgreSQL 13 + Citus 9.5, one
driver node. ``ClusterShape`` describes the four benchmark configurations:
PostgreSQL, Citus 0+1, Citus 4+1, Citus 8+1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GB = 1024**3
MB = 1024**2


@dataclass(frozen=True)
class NodeResources:
    cores: int = 16
    memory_bytes: float = 64 * GB
    disk_iops: float = 7500.0
    disk_bandwidth_bytes: float = 200 * MB  # sequential throughput
    page_bytes: int = 8192


@dataclass(frozen=True)
class NetworkResources:
    rtt_seconds: float = 0.0005  # same-datacenter round trip
    bandwidth_bytes: float = 1000 * MB


@dataclass(frozen=True)
class ClusterShape:
    """A benchmark configuration: how many nodes serve data, whether a
    distributed layer sits in front, and whether clients fan out."""

    name: str
    data_nodes: int  # nodes that store shards
    is_distributed: bool  # Citus planning layer present
    coordinators: int = 1  # nodes accepting client connections
    node: NodeResources = field(default_factory=NodeResources)
    network: NetworkResources = field(default_factory=NetworkResources)

    @property
    def total_cores(self) -> int:
        return self.node.cores * self.data_nodes

    @property
    def total_memory(self) -> float:
        return self.node.memory_bytes * self.data_nodes

    @property
    def total_iops(self) -> float:
        return self.disk_nodes * self.node.disk_iops

    @property
    def disk_nodes(self) -> int:
        return self.data_nodes

    @property
    def total_scan_bandwidth(self) -> float:
        return self.node.disk_bandwidth_bytes * self.data_nodes


def paper_setups() -> list[ClusterShape]:
    """The four configurations of §4. ``Citus 0+1`` shards locally on one
    server; ``Citus n+1`` adds n workers behind one coordinator."""
    return [
        ClusterShape("PostgreSQL", data_nodes=1, is_distributed=False),
        ClusterShape("Citus 0+1", data_nodes=1, is_distributed=True),
        ClusterShape("Citus 4+1", data_nodes=4, is_distributed=True),
        ClusterShape("Citus 8+1", data_nodes=8, is_distributed=True),
    ]


def setup_by_name(name: str) -> ClusterShape:
    for shape in paper_setups():
        if shape.name.lower() == name.lower():
            return shape
    raise KeyError(name)


def cache_miss_fraction(working_set_bytes: float, memory_bytes: float,
                        cacheable_fraction: float = 0.85) -> float:
    """Fraction of page accesses that miss the buffer cache.

    ``cacheable_fraction`` of memory is available for data pages (the rest
    holds indexes' hot paths, connections, and the OS). Uniform access is
    assumed, matching YCSB-uniform and TPC-C's warehouse-uniform drivers.
    """
    effective = memory_bytes * cacheable_fraction
    if working_set_bytes <= effective:
        return 0.0
    return 1.0 - effective / working_set_bytes
