"""Calibrated performance model for the paper's benchmark figures."""

from . import calibration, model, sensitivity
from .resources import ClusterShape, NodeResources, paper_setups, setup_by_name

__all__ = ["model", "calibration", "sensitivity", "ClusterShape", "NodeResources",
           "paper_setups", "setup_by_name"]
