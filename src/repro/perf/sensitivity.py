"""Scaling curves: sweep the model over cluster sizes and workload knobs.

The paper's figures report four discrete points; these sweeps show where
each workload's scaling flattens and which resource takes over as the
bottleneck — the "shape" claims made explicit as curves. Used by the
scaling-curve bench and available for interactive exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import calibration as cal
from .model import (
    Throughput,
    model_pgbench_2pc,
    model_tpcc,
    model_tpch,
    model_ycsb,
)
from .resources import ClusterShape


@dataclass
class CurvePoint:
    workers: int
    value: float
    bottleneck: str


def _shape(workers: int) -> ClusterShape:
    return ClusterShape(
        name=f"Citus {workers}+1" if workers else "Citus 0+1",
        data_nodes=max(workers, 1),
        is_distributed=True,
    )


def tpcc_scaling(max_workers: int = 16) -> list[CurvePoint]:
    """NOPM vs worker count. Expected shape: jump when the working set
    first fits in memory, then client-limited flattening."""
    points = []
    for workers in range(1, max_workers + 1):
        result = model_tpcc(_shape(workers))
        points.append(CurvePoint(workers, result.value, result.bottleneck))
    return points


def ycsb_scaling(max_workers: int = 16) -> list[CurvePoint]:
    """ops/s vs worker count. Expected: linear in I/O capacity until the
    closed-loop clients become the limit."""
    points = []
    for workers in range(1, max_workers + 1):
        result = model_ycsb(_shape(workers))
        points.append(CurvePoint(workers, result.value, result.bottleneck))
    return points


def tpch_scaling(max_workers: int = 16) -> list[CurvePoint]:
    """QPH vs worker count. Expected: superlinear until the data fits in
    cluster memory, linear (CPU) afterwards."""
    points = []
    for workers in range(1, max_workers + 1):
        result = model_tpch(_shape(workers))
        points.append(CurvePoint(workers, result.value, result.bottleneck))
    return points


def two_pc_penalty_vs_cross_fraction(workers: int = 8,
                                     steps: int = 11) -> list[tuple[float, float]]:
    """2PC cost as the multi-node fraction of transactions grows: what the
    paper's ~7% TPC-C cross-warehouse share costs at other mixes.

    Returns (fraction, throughput) pairs for a blended workload where
    ``fraction`` of transactions take the 2PC path.
    """
    shape = _shape(workers)
    same = model_pgbench_2pc(shape, same_key=True).value
    different = model_pgbench_2pc(shape, same_key=False).value
    out = []
    for i in range(steps):
        fraction = i / (steps - 1)
        # Harmonic blend: each class contributes its response time share.
        blended = 1.0 / ((1 - fraction) / same + fraction / different)
        out.append((fraction, blended))
    return out


def memory_fit_crossover(data_gb_range=(25, 400), step: int = 25) -> list[tuple]:
    """TPC-C NOPM at 4+1 as the database grows past cluster memory: the
    memory-fit cliff that explains Figure 6's 13x."""
    points = []
    gb = data_gb_range[0]
    while gb <= data_gb_range[1]:
        params = replace(cal.TPCC, data_bytes=gb * 1024**3)
        result = model_tpcc(_shape(4), params)
        points.append((gb, result.value, result.bottleneck))
        gb += step
    return points


def ascii_curve(points, label: str, width: int = 46) -> str:
    """Render (x, y) curve points as an ASCII bar chart."""
    values = [p.value if isinstance(p, CurvePoint) else p[1] for p in points]
    top = max(values) or 1.0
    lines = [label]
    for p in points:
        if isinstance(p, CurvePoint):
            x, y, note = p.workers, p.value, p.bottleneck
        else:
            x, y = p[0], p[1]
            note = p[2] if len(p) > 2 else ""
        bar = "#" * max(1, int(y / top * width))
        lines.append(f"  {x:>6} | {bar:<{width}} {y:>14,.0f}  {note}")
    return "\n".join(lines)
