"""PostgresInstance and Session: the per-server engine.

A :class:`PostgresInstance` is one "PostgreSQL server" in the simulation:
catalog + storage + WAL + lock manager + xid manager + hook registry +
connection accounting. A :class:`Session` is one backend (connection); the
instance enforces ``max_connections`` exactly because the paper's §2.3/§3.2
connection-scalability discussion depends on that limit being real.

Concurrency model: the simulation is single-threaded and cooperative.
A statement that must wait for a row lock either

- raises :class:`~repro.errors.LockTimeout` from the synchronous
  :meth:`Session.execute` (callers — the workload drivers — treat it like
  ``lock_timeout`` firing and retry/abort), or
- is *parked* when issued via :meth:`Session.execute_async`; parked
  statements re-run when :meth:`PostgresInstance.pump` is called after a
  lock release, which is how the deadlock-detection tests stage real
  multi-session waits.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import (
    DeadlockDetected,
    InvalidTransactionState,
    LockTimeout,
    QueryCanceled,
    SQLError,
    SyntaxErrorSQL,
    TooManyConnections,
    TransactionAborted,
)
from ..sql import ast as A
from ..sql import deparse, parse
from .catalog import Catalog, Column, ForeignKey, IndexDef, Table
from .datum import cast_value
from .executor import LocalExecutor, QueryResult
from .hooks import BackgroundWorker, HookRegistry
from .index import BTreeIndex, GinIndex
from .locks import LockManager, WouldBlock
from .lru import LRUCache
from .mvcc import XidManager
from .stats import stats_for
from .waitevents import WaitEventStack
from .wal import WriteAheadLog

_statement_cache = LRUCache(8192)


def _parse_cached(sql: str) -> list:
    stmts = _statement_cache.get(sql)
    if stmts is None:
        stmts = parse(sql)
        _statement_cache.put(sql, stmts)
    return stmts


@dataclass
class InstanceSpec:
    """Hardware description used by the performance model (§4: Azure VMs
    with 16 vcpus, 64 GiB memory, 7500 IOPS network-attached disks)."""

    cores: int = 16
    memory_gb: float = 64.0
    disk_iops: float = 7500.0
    network_rtt_ms: float = 0.5


@dataclass
class PreparedTransaction:
    gid: str
    xid: int
    owner_node: str = ""


class PostgresInstance:
    def __init__(self, name: str = "pg", spec: InstanceSpec | None = None,
                 max_connections: int = 300, clock=None):
        self.name = name
        self.spec = spec or InstanceSpec()
        self.max_connections = max_connections
        self.clock = clock  # simulated clock (may be None for local use)
        self.catalog = Catalog()
        self.xids = XidManager()
        self.locks = LockManager()
        self.wal = WriteAheadLog()
        self.hooks = HookRegistry()
        self.settings: dict[str, object] = {
            "max_connections": max_connections,
            "foreign_key_checks": True,
        }
        self.prepared_txns: dict[str, PreparedTransaction] = {}
        self.sessions: list[Session] = []
        self._backend_pids = itertools.count(1000)
        self._parked: list[_ParkedStatement] = []
        self.cancel_requests: set[int] = set()
        # xid -> (coordinator node name, distributed transaction id);
        # populated by the Citus UDF assign_distributed_transaction_id.
        self.dist_txn_ids: dict[int, tuple] = {}
        self.rng = random.Random(hash(name) & 0xFFFF)
        self.is_up = True
        # Extensions record themselves here (CREATE EXTENSION equivalent).
        self.extensions: dict[str, object] = {}
        # Statement tracer (repro.citus.tracing.Tracer); installed by the
        # coordinator's extension, None on plain/worker instances.
        self.tracer = None
        # Where sessions fold cumulative wait-event time (see
        # repro.engine.waitevents). Per-instance registry by default;
        # install_citus repoints every node at the shared cluster registry.
        # None disables wait accounting entirely.
        self.wait_registry = stats_for(self)
        # Per-tenant call/row/time aggregation (repro.citus.introspection
        # TenantStats); attached by install_citus, None on plain instances.
        self.tenant_stats = None

    # -------------------------------------------------------- connections

    def connect(self, application_name: str = "") -> "Session":
        if not self.is_up:
            from ..errors import NodeUnavailable

            raise NodeUnavailable(f"node {self.name!r} is not accepting connections")
        if len(self.sessions) >= self.max_connections:
            raise TooManyConnections(
                f"remaining connection slots on {self.name!r} are reserved"
            )
        session = Session(self, application_name)
        self.sessions.append(session)
        return session

    def disconnect(self, session: "Session") -> None:
        if session.in_transaction:
            session.rollback()
        if session in self.sessions:
            self.sessions.remove(session)

    @property
    def connection_count(self) -> int:
        return len(self.sessions)

    # -------------------------------------------------------------- time

    def now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def wal_flush_seconds(self) -> float:
        """Modeled cost of one WAL fsync on this instance's disk."""
        return 1.0 / self.spec.disk_iops if self.spec.disk_iops else 0.0

    # --------------------------------------------------------- scheduling

    def pump(self) -> int:
        """Retry parked (lock-waiting) statements; returns how many made
        progress. Called after every lock release."""
        progressed = 0
        for parked in list(self._parked):
            if parked.done:
                self._parked.remove(parked)
                continue
            remote = getattr(parked, "remote_handle", None)
            if remote is not None:
                # Waiting on a worker-side statement: poll, don't re-execute.
                if not remote.done:
                    continue
                self._parked.remove(parked)
                if remote.error is not None:
                    parked.session._statement_failed(remote.error)
                    parked.fail(remote.error)
                else:
                    parked.session._statement_succeeded()
                    parked.succeed(remote.result)
                progressed += 1
                continue
            if parked.session.xid in self.cancel_requests:
                self.cancel_requests.discard(parked.session.xid)
                self._parked.remove(parked)
                parked.session._fail_transaction()
                parked.fail(QueryCanceled(
                    "canceling statement due to deadlock victim cancellation"
                ))
                progressed += 1
                continue
            try:
                result = parked.session._execute_statement(
                    parked.stmt, parked.params, parked.copy_data
                )
            except WouldBlock as block:
                parked.session._register_wait(block)
                continue
            except SQLError as exc:
                self._parked.remove(parked)
                parked.session._statement_failed(exc)
                parked.fail(exc)
                progressed += 1
                continue
            self._parked.remove(parked)
            parked.session.locks_cleared_wait()
            parked.session._statement_succeeded()
            parked.succeed(result)
            progressed += 1
        return progressed

    def park(self, parked: "_ParkedStatement") -> None:
        self._parked.append(parked)

    def cancel_backend(self, xid: int) -> None:
        """Request cancellation of the backend running transaction ``xid``
        (the distributed deadlock detector's kill mechanism)."""
        self.cancel_requests.add(xid)
        self.pump()

    # ------------------------------------------------------- maintenance

    def register_background_worker(self, name: str, fn: Callable, interval: float = 2.0):
        worker = BackgroundWorker(name, fn, interval)
        self.hooks.background_workers.append(worker)
        return worker

    def run_background_workers(self, force: bool = False) -> int:
        ran = 0
        now = self.now()
        for worker in self.hooks.background_workers:
            if force:
                worker.last_run = now
                worker.fn(self)
                ran += 1
            elif worker.maybe_run(self, now):
                ran += 1
        return ran

    # ------------------------------------------------- crash and recovery

    def crash(self) -> None:
        """Simulate a crash: all sessions die, volatile state is lost.
        Call :meth:`restart` to run WAL recovery."""
        self.is_up = False
        for session in self.sessions:
            session.wait_events.clear()
        self.sessions.clear()
        self._parked.clear()
        for xid in list(self.xids.active):
            # In-progress (non-prepared) transactions are implicitly aborted.
            if self.xids.clog.status(xid) == "in_progress":
                self.xids.finish(xid, committed=False)
        self.locks = LockManager()

    def restart(self, upto_lsn: int | None = None) -> None:
        """WAL recovery: rebuild catalog and heap contents from the log.

        Committed transactions are restored; prepared-but-unresolved
        transactions are restored *as prepared* with their row locks
        re-held, which is what 2PC recovery (§3.7.2) depends on.
        """
        from .recovery import replay_wal

        replay_wal(self, upto_lsn)
        self.is_up = True

    def restore_to_point(self, name: str) -> None:
        lsn = self.wal.find_restore_point(name)
        if lsn is None:
            from ..errors import RecoveryError

            raise RecoveryError(f"restore point {name!r} not found on {self.name!r}")
        self.crash()
        self.restart(upto_lsn=lsn)

    # -------------------------------------------------------------- stats

    def total_data_bytes(self) -> int:
        return sum(t.heap.total_bytes for t in self.catalog.tables.values())

    def table_bytes(self, name: str) -> int:
        return self.catalog.get_table(name).heap.total_bytes


@dataclass
class _ParkedStatement:
    session: "Session"
    stmt: A.Statement
    params: object
    copy_data: object
    on_done: Optional[Callable] = None
    done: bool = False
    result: object = None
    error: Optional[Exception] = None
    # Set when the wait is on a worker node: the worker-side parked handle.
    remote_handle: object = None

    def succeed(self, result):
        self.done = True
        self.result = result
        self.session._finish_activity(result)
        if self.on_done:
            self.on_done(self)

    def fail(self, error):
        self.done = True
        self.error = error
        self.session._finish_activity(None)
        if self.on_done:
            self.on_done(self)

    def get(self):
        if not self.done:
            raise LockTimeout("statement is still waiting for a lock")
        if self.error is not None:
            raise self.error
        return self.result


class Session:
    """One backend. Implements the transaction state machine, statement
    dispatch through the hook chain, and lock-wait handling."""

    def __init__(self, instance: PostgresInstance, application_name: str = ""):
        self.instance = instance
        self.application_name = application_name
        self.backend_pid = next(instance._backend_pids)
        self.xid: int | None = None
        self.in_transaction = False  # explicit BEGIN block
        self.aborted = False
        self.local_settings: dict[str, object] = {}
        self.txn_settings: dict[str, object] = {}
        self.stats: dict[str, int] = _zero_stats()
        self.temp_results: dict[str, tuple] = {}  # intermediate results (Citus)
        self.rng = random.Random(self.backend_pid * 7919)
        self.written_tables: set[str] = set()
        self._now = None
        # Citus: remote connections opened on behalf of this session's
        # transaction (worker sessions), managed by the adaptive executor.
        self.remote_txns: dict = {}
        self.on_commit_callbacks: list[Callable] = []
        # Open engine cursors (portals). Statement completion — autocommit,
        # lock release — is deferred until the count drains back to zero.
        self._open_cursors = 0
        self._cursor_error = None
        # Live introspection: current wait (see repro.engine.waitevents)
        # and pg_stat_activity-style state, read by the cluster activity
        # views. ``state`` stays "active" while a statement is parked.
        self.wait_events = WaitEventStack(instance)
        self.state = "idle"
        self.current_stmt: A.Statement | None = None
        self.query_start_at = 0.0
        self.last_query_seconds = 0.0
        self._activity_depth = 0
        self._stmt_wait = None
        # Stamped by the Citus planner hook for tenant/tier attribution.
        self._citus_tenant = None
        self._citus_tier = None

    # -------------------------------------------------------------- time

    def now(self):
        import datetime as _dt

        base = _dt.datetime(2021, 6, 20)
        seconds = self.instance.now()
        return base + _dt.timedelta(seconds=seconds)

    # ------------------------------------------------------------- public

    def execute(self, sql: str, params=None, copy_data=None) -> QueryResult:
        """Execute SQL synchronously. Multi-statement scripts return the
        last statement's result. A lock conflict raises LockTimeout."""
        if not self.instance.is_up:
            from ..errors import NodeUnavailable

            raise NodeUnavailable(
                f"terminating connection: node {self.instance.name!r} went down"
            )
        result = QueryResult([], [], command="NONE")
        for stmt in _parse_cached(sql):
            result = self._dispatch(stmt, params, copy_data)
        return result

    def execute_async(self, sql: str, params=None) -> _ParkedStatement:
        """Execute SQL, parking on lock conflicts instead of raising.

        Returns a handle whose ``get()`` yields the result once the lock
        wait resolves (after ``instance.pump()`` calls).
        """
        stmts = _parse_cached(sql)
        if len(stmts) != 1:
            raise SyntaxErrorSQL("execute_async takes a single statement")
        stmt = stmts[0]
        try:
            result = self._dispatch(stmt, params, None, park_on_block=True)
        except _Parked as parked:
            return parked.handle
        handle = _ParkedStatement(self, stmt, params, None)
        handle.succeed(result)
        return handle

    def execute_parsed(self, stmt: A.Statement, params=None) -> QueryResult:
        """Execute a single pre-parsed statement, skipping the lexer and
        parser. Used by the deparse-free distributed task path: the
        coordinator ships the rewritten AST instead of SQL text. The AST
        must be treated as immutable — it may be shared across sessions."""
        if not self.instance.is_up:
            from ..errors import NodeUnavailable

            raise NodeUnavailable(
                f"terminating connection: node {self.instance.name!r} went down"
            )
        return self._dispatch(stmt, params, None)

    def execute_parsed_async(self, stmt: A.Statement, params=None) -> _ParkedStatement:
        """Pre-parsed variant of :meth:`execute_async`."""
        try:
            result = self._dispatch(stmt, params, None, park_on_block=True)
        except _Parked as parked:
            return parked.handle
        handle = _ParkedStatement(self, stmt, params, None)
        handle.succeed(result)
        return handle

    def execute_parsed_cursor(self, stmt: A.Statement, params=None):
        """Open a pull-based cursor (portal) over a pre-parsed SELECT.

        Returns an :class:`~repro.engine.executor.EngineCursor`, or None
        when the statement is not cursor-capable on this backend (not a
        SELECT, or a planner hook claims it) — callers then fall back to
        :meth:`execute_parsed`. Statement completion (autocommit, lock
        release) is deferred until every open cursor on this session has
        finished, mirroring how a portal holds its transaction resources
        until it is closed.
        """
        if not self.instance.is_up:
            from ..errors import NodeUnavailable

            raise NodeUnavailable(
                f"terminating connection: node {self.instance.name!r} went down"
            )
        if not isinstance(stmt, A.Select):
            return None
        if self.aborted:
            raise TransactionAborted(
                "current transaction is aborted, commands ignored until end of block"
            )
        if self.instance.hooks.call_planner(self, stmt, params) is not None:
            return None
        try:
            cursor = LocalExecutor(self).execute_cursor(stmt, params)
        except WouldBlock as block:
            # Cursor opens never park: surface the wait exactly like a
            # synchronous multi-task statement does.
            self._register_wait(block)
            victim = self._check_local_deadlock()
            if victim == self.xid:
                self._fail_transaction()
                raise DeadlockDetected("deadlock detected") from None
            self.locks_cleared_wait()
            self._fail_transaction()
            raise LockTimeout(f"could not obtain lock: {block}") from None
        except SQLError:
            self._statement_failed(None)
            raise
        self._open_cursors += 1
        cursor._on_finish = self._cursor_finished
        return cursor

    def _cursor_finished(self, error=None) -> None:
        self._open_cursors = max(0, self._open_cursors - 1)
        if error is not None and self._cursor_error is None:
            self._cursor_error = error
        if self._open_cursors == 0:
            error, self._cursor_error = self._cursor_error, None
            if error is not None:
                self._statement_failed(error)
            else:
                self._statement_succeeded()

    def close(self) -> None:
        self.instance.disconnect(self)

    # --------------------------------------------------------- GUC access

    def set_guc(self, name: str, value, is_local: bool = False) -> None:
        if is_local:
            self.txn_settings[name] = value
        else:
            self.local_settings[name] = value

    def get_guc(self, name: str, default=None):
        if name in self.txn_settings:
            return self.txn_settings[name]
        if name in self.local_settings:
            return self.local_settings[name]
        return self.instance.settings.get(name, default)

    # -------------------------------------------------------- transactions

    def ensure_xid(self) -> int:
        if self.xid is None:
            self.xid = self.instance.xids.allocate()
        return self.xid

    def snapshot(self):
        return self.instance.xids.take_snapshot(self.xid or 0)

    def begin(self) -> None:
        if self.in_transaction:
            return  # WARNING: there is already a transaction in progress
        self.in_transaction = True
        self.aborted = False

    def commit(self) -> None:
        if self.aborted:
            self._finish_abort()
            return
        # Pre-commit hooks run even without a local xid: a transaction may
        # consist purely of remote work (Citus worker transactions).
        for callback in self.instance.hooks.pre_commit_callbacks:
            try:
                callback(self)
            except Exception:
                self._abort_transaction()
                raise
        xid = self.xid
        if xid is not None:
            self.instance.wal.append(xid, "commit")
            self.wait_events.record("IO", "WALFlush",
                                    self.instance.wal_flush_seconds())
            self.instance.xids.finish(xid, committed=True)
            self.instance.locks.release_all(xid)
        self._reset_txn_state()
        for callback in self.instance.hooks.post_commit_callbacks:
            callback(self)
        for callback in self.on_commit_callbacks:
            callback(self)
        self.on_commit_callbacks.clear()
        self.instance.pump()

    def rollback(self) -> None:
        self._abort_transaction()

    def _abort_transaction(self) -> None:
        self._end_stmt_wait()
        if self.xid is not None:
            xid = self.xid
            self.instance.wal.append(xid, "abort")
            self.wait_events.record("IO", "WALFlush",
                                    self.instance.wal_flush_seconds())
            self.instance.xids.finish(xid, committed=False)
            self.instance.locks.release_all(xid)
        self._reset_txn_state()
        for callback in self.instance.hooks.abort_callbacks:
            callback(self)
        self.on_commit_callbacks.clear()
        self.instance.pump()

    def _finish_abort(self) -> None:
        self._abort_transaction()

    def _reset_txn_state(self) -> None:
        self.xid = None
        self.in_transaction = False
        self.aborted = False
        self.txn_settings.clear()
        self.written_tables.clear()
        self.temp_results.clear()

    def prepare_transaction(self, gid: str) -> None:
        if self.xid is None:
            raise InvalidTransactionState("PREPARE TRANSACTION requires an active transaction")
        if gid in self.instance.prepared_txns:
            raise InvalidTransactionState(f"transaction identifier {gid!r} is already in use")
        xid = self.xid
        self.instance.wal.append(xid, "prepare", {"gid": gid})
        self.wait_events.record("IO", "WALFlush",
                                self.instance.wal_flush_seconds())
        self.instance.xids.mark_prepared(xid)
        self.instance.prepared_txns[gid] = PreparedTransaction(gid, xid, self.instance.name)
        # Locks are deliberately NOT released: PREPARE keeps them.
        self.xid = None
        self.in_transaction = False
        self.txn_settings.clear()
        self.written_tables.clear()

    def commit_prepared(self, gid: str) -> None:
        prepared = self.instance.prepared_txns.pop(gid, None)
        if prepared is None:
            raise InvalidTransactionState(f"prepared transaction {gid!r} does not exist")
        self.instance.wal.append(prepared.xid, "commit_prepared", {"gid": gid})
        self.wait_events.record("IO", "WALFlush",
                                self.instance.wal_flush_seconds())
        self.instance.xids.resolve_prepared(prepared.xid, committed=True)
        self.instance.locks.release_all(prepared.xid)
        self.instance.pump()

    def rollback_prepared(self, gid: str) -> None:
        prepared = self.instance.prepared_txns.pop(gid, None)
        if prepared is None:
            raise InvalidTransactionState(f"prepared transaction {gid!r} does not exist")
        self.instance.wal.append(prepared.xid, "abort_prepared", {"gid": gid})
        self.wait_events.record("IO", "WALFlush",
                                self.instance.wal_flush_seconds())
        self.instance.xids.resolve_prepared(prepared.xid, committed=False)
        self.instance.locks.release_all(prepared.xid)
        self.instance.pump()

    # ------------------------------------------------------------- locking

    def acquire_table_lock(self, table: str, mode: str) -> None:
        xid = self.ensure_xid()
        self.instance.locks.acquire_table(table, mode, xid)

    def acquire_row_lock(self, table: str, row_id: int) -> None:
        xid = self.ensure_xid()
        self.instance.locks.acquire_row(table, row_id, xid)

    def _register_wait(self, block: WouldBlock) -> None:
        xid = self.ensure_xid()
        self.instance.locks.add_wait(xid, block.holders, key=block.key)
        if self._stmt_wait is None:
            kind = block.key[0] if isinstance(block.key, tuple) and block.key else "lock"
            event = {"table": "relation", "row": "tuple"}.get(kind, kind)
            self._stmt_wait = self.wait_events.begin("Lock", event,
                                                     detail=block.key)

    def locks_cleared_wait(self) -> None:
        self._end_stmt_wait()
        if self.xid is not None:
            self.instance.locks.clear_wait(self.xid)

    def _end_stmt_wait(self) -> None:
        wait = self._stmt_wait
        if wait is not None:
            self._stmt_wait = None
            self.wait_events.finish(wait)

    def track_write(self, table: str) -> None:
        self.written_tables.add(table)
        self.stats["rows_written"] += 1

    # ----------------------------------------------------------- dispatch

    def _dispatch(self, stmt: A.Statement, params, copy_data, park_on_block=False):
        # Activity tracking: the outermost dispatch of a statement owns the
        # session's pg_stat_activity-style window. A nested dispatch (UDFs,
        # commit hooks running SQL on the same session — including while a
        # *parked* statement still holds the window) must not clobber it.
        owns_activity = self._activity_depth == 0 and self.state != "active"
        self._activity_depth += 1
        if owns_activity:
            self.current_stmt = stmt
            self.query_start_at = self.instance.now()
            self.state = "active"
            self.wait_events.statement_seconds = 0.0
        # Statement tracing: when a tracer is installed (coordinator with
        # the Citus extension) and either enabled or mid-capture, wrap the
        # dispatch in a statement span. Worker instances carry no tracer,
        # so the hot remote-execution path pays one attribute load.
        try:
            tracer = self.instance.tracer
            if tracer is None or not (tracer.enabled or tracer.active):
                result = self._dispatch_inner(stmt, params, copy_data,
                                              park_on_block)
            else:
                token = tracer.begin_statement(self, stmt)
                try:
                    result = self._dispatch_inner(stmt, params, copy_data,
                                                  park_on_block)
                except BaseException as exc:
                    tracer.fail_statement(token, exc)
                    raise
                tracer.end_statement(token, result)
        except _Parked:
            # The statement stays logically active while parked; the parked
            # handle's succeed/fail finishes the activity window.
            self._activity_depth -= 1
            raise
        except BaseException:
            self._activity_depth -= 1
            if owns_activity:
                self._finish_activity(None)
            raise
        self._activity_depth -= 1
        if owns_activity:
            self._finish_activity(result)
        return result

    def _finish_activity(self, result=None) -> None:
        """Close the current statement's activity window: settle any live
        wait, flip the reported state back to idle, and attribute the
        statement to its tenant. Idempotent — parked-handle resolution and
        the dispatch epilogue may both call it."""
        if self.state != "active":
            return
        self._end_stmt_wait()
        now = self.instance.now()
        self.last_query_seconds = now - self.query_start_at
        if self.aborted:
            self.state = "idle in transaction (aborted)"
        elif self.in_transaction:
            self.state = "idle in transaction"
        else:
            self.state = "idle"
        tenant = self._citus_tenant
        if tenant is not None:
            self._citus_tenant = None
            stats = self.instance.tenant_stats
            if stats is not None:
                rows = 0
                if result is not None:
                    rows = result.rowcount or len(result.rows)
                stats.record(tenant, rows, self.last_query_seconds,
                             self.wait_events.statement_seconds)

    def _dispatch_inner(self, stmt: A.Statement, params, copy_data,
                        park_on_block=False):
        if self.aborted and not isinstance(stmt, (A.Rollback, A.Commit)):
            raise TransactionAborted(
                "current transaction is aborted, commands ignored until end of block"
            )
        try:
            result = self._execute_statement(stmt, params, copy_data)
        except WouldBlock as block:
            remote_handle = getattr(block, "handle", None)
            if remote_handle is None:
                self._register_wait(block)
            if park_on_block:
                if remote_handle is not None and self._stmt_wait is None:
                    # Parked on a worker-side statement, not a local lock.
                    self._stmt_wait = self.wait_events.begin(
                        "IPC", "RemoteStatement", detail=block.key
                    )
                handle = _ParkedStatement(self, stmt, params, copy_data)
                handle.remote_handle = remote_handle
                self.instance.park(handle)
                self._check_local_deadlock()
                raise _Parked(handle) from None
            if remote_handle is not None:
                # Synchronous caller on a remote wait: treat as timeout and
                # cancel the worker-side statement to keep state consistent.
                remote_handle.session.instance.cancel_backend(
                    remote_handle.session.xid or -1
                )
                self._fail_transaction()
                raise LockTimeout(f"could not obtain remote lock: {block}") from None
            victim = self._check_local_deadlock()
            if victim == self.xid:
                self._fail_transaction()
                raise DeadlockDetected("deadlock detected") from None
            self.locks_cleared_wait()
            self._fail_transaction()
            raise LockTimeout(
                f"could not obtain lock: {block}"
            ) from None
        except SQLError:
            self._statement_failed(None)
            raise
        self._statement_succeeded()
        return result

    def _statement_failed(self, exc) -> None:
        if self.in_transaction:
            self.aborted = True
        elif self.xid is not None or self.remote_txns:
            # Pure-remote statements (e.g. distributed COPY) also need the
            # abort callbacks so worker transaction blocks roll back.
            self._abort_transaction()

    def _fail_transaction(self) -> None:
        """An error that aborts the transaction's effects immediately (lock
        timeout, deadlock victim). Inside an explicit block, the block stays
        open in the aborted state until the client issues ROLLBACK."""
        in_block = self.in_transaction
        self._abort_transaction()
        if in_block:
            self.in_transaction = True
            self.aborted = True

    def _statement_succeeded(self) -> None:
        needs_commit = self.xid is not None or self.remote_txns
        if not self.in_transaction and needs_commit:
            self.commit()

    def _check_local_deadlock(self) -> int | None:
        """Run PostgreSQL's local deadlock check; abort the youngest
        transaction in a cycle. Returns the victim xid, if any."""
        cycle = self.instance.locks.find_local_cycle()
        if not cycle:
            return None
        victim = max(cycle)
        if victim != self.xid:
            self.instance.cancel_backend(victim)
        return victim

    # ----------------------------------------------------- statement exec

    def _execute_statement(self, stmt, params, copy_data) -> QueryResult:
        if isinstance(stmt, A.Begin):
            self.begin()
            return QueryResult([], [], command="BEGIN")
        if isinstance(stmt, A.Commit):
            self.commit()
            return QueryResult([], [], command="COMMIT")
        if isinstance(stmt, A.Rollback):
            self.rollback()
            return QueryResult([], [], command="ROLLBACK")
        if isinstance(stmt, A.PrepareTransaction):
            self.prepare_transaction(stmt.gid)
            return QueryResult([], [], command="PREPARE TRANSACTION")
        if isinstance(stmt, A.CommitPrepared):
            self.commit_prepared(stmt.gid)
            return QueryResult([], [], command="COMMIT PREPARED")
        if isinstance(stmt, A.RollbackPrepared):
            self.rollback_prepared(stmt.gid)
            return QueryResult([], [], command="ROLLBACK PREPARED")
        if isinstance(stmt, A.SetVar):
            self.set_guc(stmt.name, stmt.value, stmt.is_local)
            return QueryResult([], [], command="SET")
        if isinstance(stmt, A.ShowVar):
            return QueryResult([stmt.name], [[self.get_guc(stmt.name)]])
        if isinstance(stmt, A.Explain):
            return self._explain(stmt, params)
        if isinstance(stmt, (A.Select, A.Insert, A.Update, A.Delete)):
            plan = self.instance.hooks.call_planner(self, stmt, params)
            if plan is not None:
                return plan.execute(self, params)
            return self._execute_local_dml(stmt, params)
        # Utility path (DDL, COPY, VACUUM, CALL, ...)
        self._pending_copy_data = copy_data  # visible to utility hooks
        self._pending_params = params
        result = self.instance.hooks.call_utility(self, stmt)
        if result is not None:
            return result
        return self._execute_utility(stmt, params, copy_data)

    def _execute_local_dml(self, stmt, params) -> QueryResult:
        executor = LocalExecutor(self)
        if isinstance(stmt, A.Select):
            return executor.execute_select(stmt, params)
        if isinstance(stmt, A.Insert):
            return executor.execute_insert(stmt, params)
        if isinstance(stmt, A.Update):
            return executor.execute_update(stmt, params)
        return executor.execute_delete(stmt, params)

    def _explain(self, stmt: A.Explain, params) -> QueryResult:
        inner = stmt.statement
        plan = self.instance.hooks.call_planner(self, inner, params)
        if plan is not None:
            lines = list(plan.explain_lines())
        else:
            lines = LocalExecutor(self).explain(inner, params)
        if stmt.analyze:
            # EXPLAIN ANALYZE: run the statement and report actuals
            # (simulated elapsed time for distributed plans).
            if plan is not None:
                analyzer = getattr(plan, "explain_analyze_lines", None)
                if analyzer is not None:
                    # Distributed plans execute under trace capture and
                    # render per-task actuals plus the merge span.
                    return QueryResult(
                        ["QUERY PLAN"],
                        [[line] for line in analyzer(self, inner, params)],
                    )
                result = plan.execute(self, params)
                lines.append(
                    f"  (actual rows={result.rowcount or len(result.rows)})"
                )
            else:
                result = self._execute_local_dml(inner, params) if isinstance(
                    inner, (A.Select, A.Insert, A.Update, A.Delete)
                ) else None
                if result is not None:
                    lines.append(
                        f"  (actual rows={result.rowcount or len(result.rows)})"
                    )
        return QueryResult(["QUERY PLAN"], [[line] for line in lines])

    # ---------------------------------------------------------------- DDL

    def _execute_utility(self, stmt, params, copy_data) -> QueryResult:
        if isinstance(stmt, A.CreateTable):
            created = self.create_table_from_ast(stmt)
            if created:
                self._log_ddl(stmt)
            return QueryResult([], [], command="CREATE TABLE")
        if isinstance(stmt, A.CreateIndex):
            created = self.create_index_from_ast(stmt)
            if created:
                self._log_ddl(stmt)
            return QueryResult([], [], command="CREATE INDEX")
        if isinstance(stmt, A.DropTable):
            for name in stmt.names:
                self.instance.catalog.drop_table(name, stmt.if_exists)
            self._log_ddl(stmt)
            return QueryResult([], [], command="DROP TABLE")
        if isinstance(stmt, A.DropIndex):
            self.instance.catalog.drop_index(stmt.name, stmt.if_exists)
            self._log_ddl(stmt)
            return QueryResult([], [], command="DROP INDEX")
        if isinstance(stmt, A.TruncateTable):
            for name in stmt.names:
                table = self.instance.catalog.get_table(name)
                self.acquire_table_lock(name, "AccessExclusive")
                table.heap.__init__(name)
                for index in table.indexes.values():
                    index.data = _fresh_index_structure(index)
            self._log_ddl(stmt)
            return QueryResult([], [], command="TRUNCATE")
        if isinstance(stmt, A.AlterTable):
            self._alter_table(stmt)
            self._log_ddl(stmt)
            return QueryResult([], [], command="ALTER TABLE")
        if isinstance(stmt, A.Vacuum):
            return self._vacuum(stmt)
        if isinstance(stmt, A.Copy):
            from .copy import execute_copy

            return execute_copy(self, stmt, copy_data)
        if isinstance(stmt, A.CallProcedure):
            return self._call_procedure(stmt, params)
        raise SyntaxErrorSQL(f"unsupported utility statement {type(stmt).__name__}")

    def _log_ddl(self, stmt) -> None:
        self.instance.wal.append(self.xid or 0, "ddl", {"sql": deparse(stmt)})

    def create_table_from_ast(self, stmt: A.CreateTable) -> bool:
        table = build_table(stmt)
        created = self.instance.catalog.create_table(table, stmt.if_not_exists)
        if created:
            _create_constraint_indexes(table)
        return created

    def create_index_from_ast(self, stmt: A.CreateIndex) -> bool:
        table = self.instance.catalog.get_table(stmt.table)
        index = IndexDef(stmt.name, stmt.table, stmt.exprs, stmt.unique, stmt.using)
        index.data = _fresh_index_structure(index)
        created = self.instance.catalog.create_index(index, stmt.if_not_exists)
        if created:
            self._backfill_index(table, index)
        return created

    def _backfill_index(self, table: Table, index: IndexDef) -> None:
        from .expr import EvalContext, Row, evaluate

        names = table.column_names()
        for tup in table.heap.tuples:
            row = Row()
            row.bind_row(table.name, names, tup.values)
            row.bind_row(None, names, tup.values)
            ctx = EvalContext(row=row, session=self)
            values = [evaluate(e, ctx) for e in index.exprs]
            if isinstance(index.data, GinIndex):
                index.data.insert(values[0], tup.tid)
            else:
                index.data.insert(values, tup.tid)

    def _alter_table(self, stmt: A.AlterTable) -> None:
        table = self.instance.catalog.get_table(stmt.table)
        self.acquire_table_lock(stmt.table, "AccessExclusive")
        if stmt.action == "add_column":
            col = Column(stmt.column.name, stmt.column.type_name,
                         not_null=stmt.column.not_null, default=stmt.column.default)
            table.columns.append(col)
            default_value = None
            if col.default is not None:
                from .expr import EvalContext, Row, evaluate

                default_value = cast_value(
                    evaluate(col.default, EvalContext(row=Row(), session=self)), col.type_name
                )
            for tup in table.heap.tuples:
                tup.values.append(default_value)
        elif stmt.action == "drop_column":
            idx = table.column_index(stmt.column_name)
            table.columns.pop(idx)
            for tup in table.heap.tuples:
                tup.values.pop(idx)
        elif stmt.action == "add_foreign_key":
            fk = stmt.foreign_key
            table.foreign_keys.append(
                ForeignKey(fk.name or f"{stmt.table}_fk", fk.columns, fk.ref_table,
                           fk.ref_columns)
            )
        else:
            raise SyntaxErrorSQL(f"unsupported ALTER TABLE action {stmt.action!r}")

    def _vacuum(self, stmt: A.Vacuum) -> QueryResult:
        oldest = min(self.instance.xids.active, default=self.instance.xids.next_xid)
        tables = (
            [self.instance.catalog.get_table(stmt.table)]
            if stmt.table
            else list(self.instance.catalog.tables.values())
        )
        removed = 0
        for table in tables:
            removed += table.heap.vacuum(oldest, self.instance.xids.clog)
        result = QueryResult([], [], command="VACUUM")
        result.rowcount = removed
        return result

    def _call_procedure(self, stmt: A.CallProcedure, params) -> QueryResult:
        from .expr import EvalContext, Row, evaluate

        proc = self.instance.catalog.get_procedure(stmt.name)
        ctx = EvalContext(row=Row(), params=params, session=self)
        args = [evaluate(a, ctx) for a in stmt.args]
        value = proc.fn(self, *args)
        if isinstance(value, QueryResult):
            return value
        return QueryResult([], [], command="CALL")

    # ------------------------------------------------------- direct COPY

    def copy_rows(self, table_name: str, rows, columns: list[str] | None = None) -> int:
        """Programmatic COPY FROM: append rows (lists of values).

        Dispatches as a COPY statement so extension utility hooks (e.g. the
        Citus distributed COPY) intercept it, and autocommits outside a
        transaction block.
        """
        stmt = A.Copy(table_name, list(columns or []), "from", {})
        result = self._dispatch(stmt, None, rows)
        return result.rowcount


class _Parked(Exception):
    """Control-flow signal: the statement was parked (async path)."""

    def __init__(self, handle: _ParkedStatement):
        super().__init__("parked")
        self.handle = handle


def _zero_stats() -> dict[str, int]:
    from collections import defaultdict

    return defaultdict(int)


def build_table(stmt: A.CreateTable) -> Table:
    """Construct a catalog Table from a CREATE TABLE statement."""
    columns = []
    primary_key = list(stmt.primary_key)
    unique_constraints = [list(u) for u in stmt.unique_constraints]
    foreign_keys = []
    for cdef in stmt.columns:
        col = Column(cdef.name, cdef.type_name, not_null=cdef.not_null or cdef.primary_key,
                     default=cdef.default)
        columns.append(col)
        if cdef.primary_key:
            primary_key = [cdef.name]
        if cdef.unique:
            unique_constraints.append([cdef.name])
        if cdef.references is not None:
            ref_table, ref_col = cdef.references
            foreign_keys.append(
                ForeignKey(f"{stmt.name}_{cdef.name}_fkey", [cdef.name], ref_table,
                           [ref_col] if ref_col else [])
            )
    for fk in stmt.foreign_keys:
        foreign_keys.append(
            ForeignKey(fk.name or f"{stmt.name}_fkey", list(fk.columns), fk.ref_table,
                       list(fk.ref_columns))
        )
    # Primary key columns are implicitly NOT NULL, as in PostgreSQL.
    for col in columns:
        if col.name in primary_key:
            col.not_null = True
    return Table(
        name=stmt.name,
        columns=columns,
        primary_key=primary_key,
        unique_constraints=unique_constraints,
        foreign_keys=foreign_keys,
        access_method=stmt.using or "heap",
    )


def _create_constraint_indexes(table: Table) -> None:
    """Primary keys and unique constraints are backed by B-tree indexes,
    as in PostgreSQL."""
    if table.primary_key:
        index = IndexDef(
            f"{table.name}_pkey", table.name,
            [A.ColumnRef(c) for c in table.primary_key], unique=True,
        )
        index.data = BTreeIndex(len(index.exprs))
        table.indexes[index.name] = index
    for i, cols in enumerate(table.unique_constraints):
        index = IndexDef(
            f"{table.name}_ukey_{i}", table.name,
            [A.ColumnRef(c) for c in cols], unique=True,
        )
        index.data = BTreeIndex(len(index.exprs))
        table.indexes[index.name] = index
    # Foreign-key source columns get supporting indexes (helps RESTRICT
    # checks; PostgreSQL users almost always create these).
    for fk in table.foreign_keys:
        name = f"{table.name}_{fk.columns[0]}_fk_idx"
        if name not in table.indexes:
            index = IndexDef(name, table.name, [A.ColumnRef(c) for c in fk.columns])
            index.data = BTreeIndex(len(index.exprs))
            table.indexes[name] = index


def _fresh_index_structure(index: IndexDef):
    if index.method == "gin":
        return GinIndex()
    return BTreeIndex(len(index.exprs))
