"""Local query planner and executor.

Implements PostgreSQL's executor surface for the SQL subset the paper's
workloads need. Access-path selection is deliberately simple but realistic:

- equality / range predicates on a B-tree index's leading column(s) use the
  index (``Index Scan``);
- ``ILIKE '%needle%'`` predicates over an expression with a GIN index use
  the trigram index with recheck (``Bitmap Heap Scan``-alike);
- everything else is a sequential scan.

Joins pick a hash join for equi-join conditions and fall back to nested
loops. Aggregation is hash-based and understands the two-phase protocol
(partial / merge) used by distributed aggregation.

The executor also computes EXPLAIN output; the Citus planner hook prepends
its ``Custom Scan (Citus Adaptive)`` lines to these, matching how the real
extension nests distributed plans inside PostgreSQL plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import (
    CatalogError,
    DataError,
    ForeignKeyViolation,
    NotNullViolation,
    SyntaxErrorSQL,
    UniqueViolation,
)
from ..sql import ast as A
from ..sql.deparse import deparse
from .catalog import IndexDef, Table
from .datum import cast_value, compare_values, sort_key, to_text
from .compile import get_compiled
from .expr import EvalContext, Row, evaluate
from .functions import SET_RETURNING_FUNCTIONS, get_aggregate, is_aggregate
from .index import BTreeIndex, GinIndex


@dataclass
class QueryResult:
    columns: list
    rows: list
    command: str = "SELECT"
    rowcount: int = 0

    def __post_init__(self):
        if self.command == "SELECT":
            self.rowcount = len(self.rows)

    def scalar(self):
        return self.rows[0][0] if self.rows and self.rows[0] else None

    def first(self):
        return self.rows[0] if self.rows else None

    def __iter__(self):
        return iter(self.rows)

    @classmethod
    def from_cursor(cls, cursor: "EngineCursor", batch_size: int = 1024) -> "QueryResult":
        """Materialize a cursor into the classic eager result shape."""
        rows: list = []
        while True:
            batch = cursor.fetch(batch_size)
            if not batch:
                break
            rows.extend(batch)
        return cls(cursor.columns, rows, command=cursor.command)


class EngineCursor:
    """Pull-based result of :meth:`LocalExecutor.execute_cursor`.

    ``fetch(n)`` returns up to ``n`` rows ([] once exhausted); ``close()``
    terminates early. The optional ``on_finish(error)`` callback fires
    exactly once — on exhaustion, close, or a mid-iteration error — which
    is how the owning session defers statement completion until every open
    cursor (portal) on it is done.
    """

    def __init__(self, columns, rows_iter, command: str = "SELECT",
                 on_finish=None):
        self.columns = columns
        self.command = command
        self._iter = iter(rows_iter)
        self._on_finish = on_finish
        self.rows_fetched = 0
        self.exhausted = False
        self.closed = False

    def fetch(self, n: int) -> list:
        if self.closed or self.exhausted:
            return []
        batch: list = []
        try:
            for _ in range(max(int(n), 0)):
                try:
                    batch.append(next(self._iter))
                except StopIteration:
                    self.exhausted = True
                    break
        except BaseException as exc:
            self.exhausted = True
            self._finish(exc)
            raise
        self.rows_fetched += len(batch)
        if self.exhausted:
            self._finish(None)
        return batch

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        close_fn = getattr(self._iter, "close", None)
        if close_fn is not None:
            close_fn()
        self._finish(None)

    def _finish(self, error) -> None:
        callback, self._on_finish = self._on_finish, None
        if callback is not None:
            callback(error)


@dataclass
class RelOutput:
    """Result of resolving a FROM item: bound rows plus shape metadata."""

    columns: list  # list[(alias, column_name)]
    rows: list  # list[Row]
    keys: set = field(default_factory=set)  # resolvable reference keys


class LocalExecutor:
    """Executes statements against one instance's catalog and storage."""

    def __init__(self, session):
        self.session = session
        self.instance = session.instance
        self.catalog = session.instance.catalog
        self._subquery_cache: dict[int, list] = {}
        self._correlated_subqueries: set[int] = set()

    # ------------------------------------------------------------ helpers

    def _ctx(self, row: Row, params, outer: EvalContext | None = None) -> EvalContext:
        return EvalContext(
            row=row,
            params=params,
            session=self.session,
            subquery_executor=self._subquery_executor(params),
            outer=outer,
        )

    def _subquery_executor(self, params):
        # Uncorrelated subqueries execute once (PostgreSQL's InitPlan);
        # correlated ones re-run per outer row.
        cache = self._subquery_cache

        def run(select: A.Select, outer_ctx: EvalContext):
            key = id(select)
            if key in cache:
                return cache[key]
            if key in self._correlated_subqueries:
                return self.execute_select(select, params, outer=outer_ctx).rows
            try:
                rows = self.execute_select(select, params, outer=None).rows
            except CatalogError:
                self._correlated_subqueries.add(key)
                return self.execute_select(select, params, outer=outer_ctx).rows
            cache[key] = rows
            return rows

        return run

    # ------------------------------------------------------------- SELECT

    def execute_select(self, select: A.Select, params, outer: EvalContext | None = None,
                       cte_env: dict | None = None) -> QueryResult:
        tracer = self.instance.tracer
        if tracer is not None and tracer.active:
            # Inside a traced statement (or EXPLAIN ANALYZE capture), each
            # engine-level select — the coordinator merge query, local-tier
            # statements, InitPlans — shows up as its own span.
            with tracer.span("select", "engine", node=self.instance.name) as span:
                result = self._execute_select_impl(select, params, outer, cte_env)
                if span is not None:
                    span.attrs["rows"] = len(result.rows)
                return result
        return self._execute_select_impl(select, params, outer, cte_env)

    def _execute_select_impl(self, select: A.Select, params,
                             outer: EvalContext | None = None,
                             cte_env: dict | None = None) -> QueryResult:
        cte_env = dict(cte_env or {})
        for cte in select.ctes:
            sub = self.execute_select(cte.query, params, outer=outer, cte_env=cte_env)
            names = cte.column_names or sub.columns
            cte_env[cte.name] = (names, sub.rows)

        columns, pairs = self._run_select_core(select, params, outer, cte_env)

        for op, rhs in select.set_ops:
            rhs_result = self.execute_select(rhs, params, outer=outer, cte_env=cte_env)
            pairs = _apply_set_op(op, pairs, [(r, Row()) for r in rhs_result.rows])

        # ORDER BY over (values, row) pairs
        if select.order_by:
            pairs = self._sort_pairs(pairs, select.order_by, select, columns, params, outer)
        if select.distinct:
            pairs = _distinct_pairs(pairs, select.distinct_on, self, params, outer)
        offset = int(evaluate(select.offset, self._ctx(Row(), params, outer))) if select.offset else 0
        if offset:
            pairs = pairs[offset:]
        if select.limit is not None:
            limit = evaluate(select.limit, self._ctx(Row(), params, outer))
            if limit is not None:
                pairs = pairs[: int(limit)]
        if select.for_update:
            self._lock_rows_for_update(pairs)
        return QueryResult(columns, [values for values, _ in pairs])

    # ------------------------------------------------------ cursor SELECT

    def execute_cursor(self, select: A.Select, params,
                       outer: EvalContext | None = None,
                       cte_env: dict | None = None) -> EngineCursor:
        """Pull-based SELECT execution.

        Simple single-relation pipelines (scan → filter → project →
        offset/limit) stream genuinely lazily, stopping the heap scan as
        soon as a LIMIT is satisfied. Anything that needs a blocking
        operator (sort, grouping, DISTINCT, joins, set ops, windows, CTEs)
        materializes through :meth:`execute_select` first — the cursor
        then just batches the buffered rows, exactly like a Sort node
        feeding a portal.
        """
        if cte_env is None and self._cursor_streamable(select):
            return self._simple_select_cursor(select, params, outer)
        result = self.execute_select(select, params, outer=outer, cte_env=cte_env)
        return EngineCursor(result.columns, iter(result.rows))

    def _cursor_streamable(self, select: A.Select) -> bool:
        if (select.ctes or select.set_ops or select.group_by
                or select.distinct or select.order_by or select.for_update
                or select.having is not None):
            return False
        if len(select.from_items) != 1:
            return False
        ref = select.from_items[0]
        if not isinstance(ref, A.TableRef):
            return False
        if ref.name in self.session.temp_results:
            return False
        if self.catalog.tables.get(ref.name) is None:
            return False
        from .window import contains_window_function

        for entry in select.targets:
            expr = entry.expr if isinstance(entry, A.TargetEntry) else entry
            if isinstance(expr, A.Star):
                continue
            if contains_window_function(expr):
                return False
            for node in _walk_skip_subqueries(expr):
                if isinstance(node, A.FuncCall) and is_aggregate(node.name):
                    return False
        return True

    def _simple_select_cursor(self, select: A.Select, params, outer) -> EngineCursor:
        ref = select.from_items[0]
        alias = ref.ref_name
        table = self.catalog.get_table(ref.name)
        self.session.acquire_table_lock(table.name, "AccessShare")
        names = table.column_names()
        rel = RelOutput(columns=[(alias, n) for n in names], rows=[])
        targets = _expand_stars(select.targets, rel)
        columns = _output_names(targets)
        predicate = get_compiled(select.where) if select.where is not None else None
        target_fns = [get_compiled(t.expr) for t in targets]
        ctx0 = self._ctx(Row(), params, outer)
        offset = int(evaluate(select.offset, ctx0)) if select.offset is not None else 0
        limit = None
        if select.limit is not None:
            value = evaluate(select.limit, ctx0)
            if value is not None:
                limit = int(value)
        snapshot = self.session.snapshot()

        def rows():
            if limit is not None and limit <= 0:
                return
            emitted = 0
            skipped = 0
            for row in self._scan_table_iter(table, alias, params, outer,
                                             select.where, snapshot):
                ctx = self._ctx(row, params, outer)
                if predicate is not None and predicate(ctx) is not True:
                    continue
                if skipped < offset:
                    skipped += 1
                    continue
                yield [fn(ctx) for fn in target_fns]
                emitted += 1
                if limit is not None and emitted >= limit:
                    return

        return EngineCursor(columns, rows())

    def _run_select_core(self, select, params, outer, cte_env):
        rel = self._resolve_from(select.from_items, params, outer, cte_env,
                                 where=select.where)
        # WHERE
        if select.where is not None:
            predicate = get_compiled(select.where)
            rel.rows = [
                row for row in rel.rows
                if predicate(self._ctx(row, params, outer)) is True
            ]
        targets = _expand_stars(select.targets, rel)
        columns = _output_names(targets)
        from .window import contains_window_function

        has_windows = any(contains_window_function(t.expr) for t in targets)
        if has_windows:
            targets = self._compute_windows(select, targets, rel, params, outer)
        has_aggs = self._has_aggregates(targets, select)
        if select.group_by or has_aggs:
            if has_windows:
                raise DataError(
                    "window functions combined with aggregation are not supported"
                )
            pairs = self._aggregate(select, targets, rel, params, outer)
        else:
            target_fns = [get_compiled(t.expr) for t in targets]
            pairs = []
            for row in rel.rows:
                ctx = self._ctx(row, params, outer)
                pairs.append(([fn(ctx) for fn in target_fns], row))
        return columns, pairs

    def _compute_windows(self, select, targets, rel, params, outer):
        """Evaluate window functions over the filtered input and replace
        each window call with a reference to its per-row result."""
        from .window import compute_window_values

        window_nodes: list = []

        def visit(node):
            if isinstance(node, A.FuncCall) and node.over is not None:
                window_nodes.append(node)
                return A.ColumnRef(f"__win_{len(window_nodes) - 1}")
            return node

        rewritten = [
            A.TargetEntry(_transform_keep_identity(t.expr.copy(), visit), t.alias)
            for t in targets
        ]
        for index, node in enumerate(window_nodes):
            values = compute_window_values(self, node, rel.rows, params, outer)
            for row, value in zip(rel.rows, values):
                row.bind(None, f"__win_{index}", value)
        return rewritten

    def _has_aggregates(self, targets, select) -> bool:
        # Aggregates inside subqueries belong to the subquery's own level.
        for entry in targets:
            for node in _walk_skip_subqueries(entry.expr):
                if isinstance(node, A.FuncCall) and is_aggregate(node.name):
                    return True
        if select.having is not None:
            for node in _walk_skip_subqueries(select.having):
                if isinstance(node, A.FuncCall) and is_aggregate(node.name):
                    return True
        return False

    # -------------------------------------------------------- aggregation

    def _aggregate(self, select, targets, rel, params, outer):
        # Resolve GROUP BY entries: positional and alias references.
        group_exprs = []
        for g in select.group_by:
            group_exprs.append(_resolve_ref(g, targets))
        # Collect aggregate nodes from targets + having, rewrite to refs.
        agg_nodes: list[A.FuncCall] = []

        def collect(expr):
            def visit(node):
                if isinstance(node, A.FuncCall) and is_aggregate(node.name):
                    for i, existing in enumerate(agg_nodes):
                        if existing is node:
                            return _AggRef(i)
                    agg_nodes.append(node)
                    return _AggRef(len(agg_nodes) - 1)
                return node

            return _transform_keep_identity(expr, visit)

        # Work on copies: statements are cached and shared across sessions,
        # so the _AggRef rewrite must never touch the original tree.
        rewritten_targets = [A.TargetEntry(collect(t.expr.copy()), t.alias) for t in targets]
        having = collect(select.having.copy()) if select.having is not None else None
        # ORDER BY may reference aggregates (ORDER BY sum(x) DESC): compute
        # them per group and bind under a recognizable name for the sorter.
        order_aggs = []
        for sk in select.order_by:
            if any(isinstance(n, A.FuncCall) and is_aggregate(n.name)
                   for n in _walk_skip_subqueries(sk.expr)):
                order_aggs.append((deparse(sk.expr), collect(sk.expr.copy())))

        groups: dict[tuple, list] = {}
        group_order: list[tuple] = []
        representative: dict[tuple, Row] = {}
        distinct_seen: dict[tuple, set] = {}
        group_fns = [get_compiled(g) for g in group_exprs]
        for row in rel.rows:
            ctx = self._ctx(row, params, outer)
            key = tuple(_group_key(fn(ctx)) for fn in group_fns)
            if key not in groups:
                groups[key] = [get_aggregate(n.name).init() for n in agg_nodes]
                group_order.append(key)
                representative[key] = row
            states = groups[key]
            for i, node in enumerate(agg_nodes):
                states[i] = self._accumulate(node, states[i], ctx,
                                             distinct_seen.setdefault((key, i), set())
                                             if node.distinct else None)

        if not groups and not select.group_by:
            # Aggregate over empty input: one row of aggregate defaults.
            key = ()
            groups[key] = [get_aggregate(n.name).init() for n in agg_nodes]
            group_order.append(key)
            representative[key] = Row()

        pairs = []
        for key in group_order:
            states = groups[key]
            finals = []
            for node, state in zip(agg_nodes, states):
                agg = get_aggregate(node.name)
                if node.agg_phase == "partial":
                    finals.append(agg.partial(state))
                else:
                    finals.append(agg.finalize(state))
            row = representative[key]
            out_row = Row()
            out_row.qualified.update(row.qualified)
            out_row.unqualified.update(row.unqualified)
            out_row._ambiguous |= row._ambiguous
            ctx = self._ctx(out_row, params, outer)
            ctx_agg = _AggContext(ctx, finals)
            if having is not None and _eval_agg(having, ctx_agg) is not True:
                continue
            values = [_eval_agg(t.expr, ctx_agg) for t in rewritten_targets]
            # Bind output aliases so ORDER BY can reference them.
            for t, v in zip(rewritten_targets, values):
                if t.alias:
                    out_row.bind(None, t.alias, v)
            for text, rewritten in order_aggs:
                out_row.bind(None, f"__agg_order__{text}", _eval_agg(rewritten, ctx_agg))
            pairs.append((values, out_row))
        return pairs

    def _accumulate(self, node: A.FuncCall, state, ctx, distinct_seen: set | None = None):
        agg = get_aggregate(node.name)
        if node.filter is not None and evaluate(node.filter, ctx) is not True:
            return state
        args = node.args
        if len(args) == 1 and isinstance(args[0], A.Star):
            from .functions import _STAR

            return agg.accumulate(state, _STAR)
        values = [evaluate(a, ctx) for a in args]
        if distinct_seen is not None:
            key = tuple(_group_key(v) for v in values)
            if key in distinct_seen:
                return state
            distinct_seen.add(key)
        return agg.accumulate(state, *values)

    # ------------------------------------------------------------ sorting

    def _sort_pairs(self, pairs, order_by, select, columns, params, outer):
        def key_fn(pair):
            values, row = pair
            keys = []
            for sk in order_by:
                value = self._eval_sort_expr(sk.expr, values, row, select, params, outer)
                # PostgreSQL default: NULLS LAST for ASC, NULLS FIRST for DESC.
                nulls_first = sk.nulls_first
                if nulls_first is None:
                    nulls_first = not sk.ascending
                null_rank = (0 if nulls_first else 1) if value is None else (
                    1 if nulls_first else 0
                )
                value_key = sort_key(value)
                if not sk.ascending:
                    value_key = _Reversed(value_key)
                keys.append((null_rank, value_key))
            return keys

        return sorted(pairs, key=key_fn)

    def _eval_sort_expr(self, expr, values, row, select, params, outer):
        if isinstance(expr, A.Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if 0 <= index < len(values):
                return values[index]
        # Aggregate sort keys were pre-computed per group by _aggregate.
        agg_key = f"__agg_order__{deparse(expr)}"
        if row.has(None, agg_key):
            return row.lookup(None, agg_key)
        if isinstance(expr, A.ColumnRef) and expr.table is None:
            for i, entry in enumerate(select.targets):
                if isinstance(entry, A.TargetEntry) and entry.alias == expr.name:
                    return values[i]
        try:
            return evaluate(expr, self._ctx(row, params, outer))
        except CatalogError:
            # Reference to an output column by name.
            for i, entry in enumerate(select.targets):
                if (
                    isinstance(entry, A.TargetEntry)
                    and isinstance(entry.expr, A.ColumnRef)
                    and isinstance(expr, A.ColumnRef)
                    and entry.expr.name == expr.name
                ):
                    return values[i]
            raise

    def _lock_rows_for_update(self, pairs):
        xid = self.session.ensure_xid()
        for _, row in pairs:
            for table_name, row_id, _tid in row.provenance.values():
                self.session.acquire_row_lock(table_name, row_id)

    # ----------------------------------------------------- FROM resolution

    def _resolve_from(self, from_items, params, outer, cte_env, where=None) -> RelOutput:
        if not from_items:
            row = Row()
            return RelOutput(columns=[], rows=[row], keys=set())
        # Only push WHERE into the scan for the single-base-table case;
        # multi-relation queries re-filter above anyway.
        scan_where = where if len(from_items) == 1 else None
        rel = self._resolve_item(from_items[0], params, outer, cte_env, scan_where)
        if len(from_items) == 1:
            return rel
        # Comma-separated FROM items: plan as inner joins using any
        # applicable equi-join conjuncts from WHERE (hash joins instead of
        # raw cross products — TPC-H style "FROM a, b, c WHERE ..." relies
        # on this).
        remaining = [self._resolve_item(item, params, outer, cte_env)
                     for item in from_items[1:]]
        conjuncts = _split_and(where) if where is not None else []
        while remaining:
            chosen = None
            for i, right in enumerate(remaining):
                condition = _equi_condition_between(conjuncts, rel.keys, right.keys)
                if condition is not None:
                    chosen = (i, condition)
                    break
            if chosen is None:
                right = remaining.pop(0)
                rel = _cross_join(rel, right)
                continue
            i, condition = chosen
            right = remaining.pop(i)
            equi = _extract_equi_keys(condition, rel.keys, right.keys)
            if equi:
                rel = self._hash_join("inner", rel, right, equi, condition, params, outer)
            else:
                rel = self._nested_loop("inner", rel, right, condition, params, outer)
        return rel

    def _resolve_item(self, item, params, outer, cte_env, where=None) -> RelOutput:
        if isinstance(item, A.TableRef):
            return self._scan_relation(item, params, outer, cte_env, where)
        if isinstance(item, A.SubqueryRef):
            sub = self.execute_select(item.query, params, outer=outer, cte_env=cte_env)
            return _rows_to_rel(item.alias, sub.columns, sub.rows)
        if isinstance(item, A.FunctionRef):
            return self._scan_function(item, params, outer)
        if isinstance(item, A.JoinExpr):
            return self._execute_join(item, params, outer, cte_env)
        raise SyntaxErrorSQL(f"unsupported FROM item {type(item).__name__}")

    def _scan_function(self, item: A.FunctionRef, params, outer) -> RelOutput:
        fn = SET_RETURNING_FUNCTIONS.get(item.func.name.lower())
        if fn is None:
            raise CatalogError(f"set-returning function {item.func.name}() does not exist")
        ctx = self._ctx(Row(), params, outer)
        args = [evaluate(a, ctx) for a in item.func.args]
        values = fn(*args)
        col_name = item.column_names[0] if item.column_names else item.alias
        rows = []
        for v in values:
            row = Row()
            row.bind(item.alias, col_name, v)
            rows.append(row)
        return RelOutput(
            columns=[(item.alias, col_name)],
            rows=rows,
            keys={col_name, f"{item.alias}.{col_name}"},
        )

    def _scan_relation(self, ref: A.TableRef, params, outer, cte_env, where=None) -> RelOutput:
        alias = ref.ref_name
        if ref.name in cte_env:
            names, rows = cte_env[ref.name]
            return _rows_to_rel(alias, names, rows)
        if ref.name in self.session.temp_results:
            names, rows = self.session.temp_results[ref.name]
            return _rows_to_rel(alias, names, rows)
        table = self.catalog.get_table(ref.name)
        self.session.acquire_table_lock(table.name, "AccessShare")
        return self._scan_table(table, alias, params, outer, where)

    def _scan_table(self, table: Table, alias: str, params, outer,
                    where: A.Expr | None = None) -> RelOutput:
        names = table.column_names()
        snapshot = self.session.snapshot()
        clog = self.instance.xids.clog
        from .mvcc import tuple_visible

        path = self.choose_access_path(table, alias, where, params, outer)
        if path is not None:
            kind, tids = path
            tuples = []
            for tid in tids:
                tup = table.heap.get(tid)
                if tup is not None and tuple_visible(tup.header, snapshot, clog):
                    tuples.append(tup)
            self.session.stats["index_lookups"] += 1
            self.session.stats["tuples_scanned"] += len(tuples)
            self.session.stats["pages_read"] += max(1, len(tuples))
        else:
            tuples = list(table.heap.scan(snapshot, clog))
            self.session.stats["tuples_scanned"] += len(tuples)
            self.session.stats["pages_read"] += table.heap.page_count
        rows = []
        for tup in tuples:
            row = Row()
            row.bind_row(alias, names, tup.values)
            row.provenance[alias] = (table.name, tup.row_id, tup.tid)
            rows.append(row)
        keys = set(names) | {f"{alias}.{n}" for n in names}
        return RelOutput(columns=[(alias, n) for n in names], rows=rows, keys=keys)

    def _scan_table_iter(self, table: Table, alias: str, params, outer,
                         where: A.Expr | None, snapshot):
        """Lazily yield bound rows from a table scan, charging scan stats
        incrementally so an early-terminated cursor only pays for what it
        actually read."""
        names = table.column_names()
        clog = self.instance.xids.clog
        from .mvcc import tuple_visible

        stats = self.session.stats

        def bind(tup) -> Row:
            row = Row()
            row.bind_row(alias, names, tup.values)
            row.provenance[alias] = (table.name, tup.row_id, tup.tid)
            return row

        path = self.choose_access_path(table, alias, where, params, outer)
        if path is not None:
            # Index scans are already bounded by selectivity; resolve the
            # TIDs eagerly so the stats match the materializing scan.
            _kind, tids = path
            tuples = []
            for tid in tids:
                tup = table.heap.get(tid)
                if tup is not None and tuple_visible(tup.header, snapshot, clog):
                    tuples.append(tup)
            stats["index_lookups"] += 1
            stats["tuples_scanned"] += len(tuples)
            stats["pages_read"] += max(1, len(tuples))
            for tup in tuples:
                yield bind(tup)
            return
        # Sequential scan: pages charged as tuples stream out (approximate
        # — visible-tuple density — so a LIMIT-stopped scan pays less).
        tuples_per_page = max(1, len(table.heap.tuples) // max(table.heap.page_count, 1))
        stats["pages_read"] += 1
        seen = 0
        for tup in table.heap.scan(snapshot, clog):
            seen += 1
            stats["tuples_scanned"] += 1
            if seen % tuples_per_page == 0:
                stats["pages_read"] += 1
            yield bind(tup)

    # ------------------------------------------------- access path choice

    def choose_access_path(self, table: Table, alias: str, where, params, outer):
        """Pick an index for the scan. Returns (description, tids) or None.

        The returned candidate TIDs are a superset of the matching rows;
        the caller re-applies the full WHERE clause (index recheck).
        """
        if where is None or not table.indexes:
            return None
        conjuncts = _split_and(where)
        const_eq: dict[str, object] = {}
        ranges: dict[str, dict] = {}
        patterns: list[tuple[str, str]] = []  # (indexed expr text, needle)
        ctx = self._ctx(Row(), params, outer)
        for c in conjuncts:
            if isinstance(c, A.BinaryOp) and c.op in ("=", "<", "<=", ">", ">="):
                col, value = _const_comparison(c, alias, ctx)
                if col is None:
                    continue
                if c.op == "=":
                    const_eq[col] = value
                else:
                    bound = ranges.setdefault(col, {})
                    if c.op in (">", ">="):
                        bound["low"] = value
                        bound["low_inc"] = c.op == ">="
                    else:
                        bound["high"] = value
                        bound["high_inc"] = c.op == "<="
            elif isinstance(c, A.BetweenExpr) and isinstance(c.operand, A.ColumnRef):
                if not c.negated and c.operand.table in (None, alias):
                    try:
                        low = evaluate(c.low, ctx)
                        high = evaluate(c.high, ctx)
                    except Exception:
                        continue
                    ranges[c.operand.name] = {
                        "low": low, "low_inc": True, "high": high, "high_inc": True
                    }
            elif isinstance(c, A.BinaryOp) and c.op in ("like", "ilike"):
                if isinstance(c.right, A.Literal) and isinstance(c.right.value, str):
                    pattern = c.right.value
                    if pattern.startswith("%") and pattern.endswith("%"):
                        needle = pattern.strip("%")
                        if "%" not in needle and "_" not in needle:
                            patterns.append((_normalized_expr_text(c.left, alias), needle))
        # Prefer B-tree equality, then GIN, then B-tree range.
        best = None
        for index in table.indexes.values():
            if isinstance(index.data, GinIndex):
                index_text = _normalized_expr_text(index.exprs[0], alias)
                for expr_text, needle in patterns:
                    if expr_text == index_text:
                        tids = index.data.search_substring(needle)
                        if tids is not None:
                            return (f"Bitmap Heap Scan using {index.name}", sorted(tids))
                continue
            if not isinstance(index.data, BTreeIndex):
                continue
            index_cols = [e.name for e in index.exprs if isinstance(e, A.ColumnRef)]
            if len(index_cols) != len(index.exprs) or not index_cols:
                continue
            prefix = []
            for col in index_cols:
                if col in const_eq:
                    prefix.append(const_eq[col])
                else:
                    break
            if prefix:
                tids = index.data.scan_equal(prefix)
                score = len(prefix) * 1000 - len(tids)
                if best is None or score > best[0]:
                    best = (score, (f"Index Scan using {index.name}", tids))
                continue
            bound = ranges.get(index_cols[0])
            if bound:
                tids = index.data.scan_range(
                    bound.get("low"), bound.get("high"),
                    bound.get("low_inc", True), bound.get("high_inc", True),
                )
                score = -len(tids)
                if best is None or score > best[0]:
                    best = (score, (f"Index Scan using {index.name}", tids))
        return best[1] if best else None

    # -------------------------------------------------------------- joins

    def _execute_join(self, join: A.JoinExpr, params, outer, cte_env) -> RelOutput:
        left = self._resolve_item(join.left, params, outer, cte_env)
        right = self._resolve_item(join.right, params, outer, cte_env)
        condition = join.condition
        if join.using:
            condition = _using_to_condition(join.using, left, right)
        if join.join_type == "cross" or condition is None:
            return _cross_join(left, right)
        equi = _extract_equi_keys(condition, left.keys, right.keys)
        if equi and join.join_type in ("inner", "left", "right", "full"):
            return self._hash_join(join.join_type, left, right, equi, condition, params, outer)
        return self._nested_loop(join.join_type, left, right, condition, params, outer)

    def _hash_join(self, join_type, left, right, equi, condition, params, outer) -> RelOutput:
        left_keys, right_keys = equi
        if join_type == "right":
            # Execute as a left join with sides swapped.
            swapped = self._hash_join("left", right, left, (right_keys, left_keys),
                                      condition, params, outer)
            return swapped
        table: dict[tuple, list[Row]] = {}
        right_key_fns = [get_compiled(k) for k in right_keys]
        left_key_fns = [get_compiled(k) for k in left_keys]
        qual = get_compiled(condition)
        for row in right.rows:
            ctx = self._ctx(row, params, outer)
            key = tuple(_group_key(fn(ctx)) for fn in right_key_fns)
            if any(k == ("null",) for k in key):
                continue
            table.setdefault(key, []).append(row)
        out_rows = []
        matched_right: set[int] = set()
        for lrow in left.rows:
            lctx = self._ctx(lrow, params, outer)
            key = tuple(_group_key(fn(lctx)) for fn in left_key_fns)
            matches = table.get(key, [])
            found = False
            for rrow in matches:
                merged = lrow.merge(rrow)
                if qual(self._ctx(merged, params, outer)) is True:
                    out_rows.append(merged)
                    matched_right.add(id(rrow))
                    found = True
            if not found and join_type in ("left", "full"):
                out_rows.append(_null_extend(lrow, right))
        if join_type == "full":
            for rrow in right.rows:
                if id(rrow) not in matched_right:
                    out_rows.append(_null_extend(rrow, left))
        self.session.stats["join_rows"] += len(out_rows)
        return RelOutput(left.columns + right.columns, out_rows, left.keys | right.keys)

    def _nested_loop(self, join_type, left, right, condition, params, outer) -> RelOutput:
        out_rows = []
        matched_right: set[int] = set()
        qual = get_compiled(condition)
        for lrow in left.rows:
            found = False
            for rrow in right.rows:
                merged = lrow.merge(rrow)
                if qual(self._ctx(merged, params, outer)) is True:
                    out_rows.append(merged)
                    matched_right.add(id(rrow))
                    found = True
            if not found and join_type in ("left", "full"):
                out_rows.append(_null_extend(lrow, right))
        if join_type in ("right", "full"):
            for rrow in right.rows:
                if id(rrow) not in matched_right:
                    out_rows.append(_null_extend(rrow, left))
        return RelOutput(left.columns + right.columns, out_rows, left.keys | right.keys)

    # ---------------------------------------------------------------- DML

    def execute_insert(self, stmt: A.Insert, params) -> QueryResult:
        table = self.catalog.get_table(stmt.table)
        self.session.acquire_table_lock(table.name, "RowExclusive")
        columns = stmt.columns or table.column_names()
        if stmt.select is not None:
            source = self.execute_select(stmt.select, params)
            value_rows = source.rows
        elif not stmt.rows:
            # INSERT ... DEFAULT VALUES
            columns = []
            value_rows = [[]]
        else:
            ctx = self._ctx(Row(), params)
            value_rows = [[evaluate(v, ctx) for v in row] for row in stmt.rows]
        inserted = 0
        returned = []
        for values in value_rows:
            if len(values) != len(columns):
                raise DataError(
                    f"INSERT has {len(values)} expressions but {len(columns)} target columns"
                )
            full = self._build_full_row(table, columns, values)
            conflict_tup = self._find_conflict(table, full, stmt.on_conflict)
            if conflict_tup is not None:
                if stmt.on_conflict is None:
                    raise UniqueViolation(
                        f"duplicate key value violates unique constraint on {table.name!r}"
                    )
                if stmt.on_conflict.action == "nothing":
                    continue
                self._apply_conflict_update(table, conflict_tup, stmt.on_conflict, full, params)
                inserted += 1
                continue
            self._check_not_null(table, full)
            self._check_foreign_keys(table, full)
            tup = self._do_insert(table, full)
            inserted += 1
            if stmt.returning:
                returned.append(self._returning_row(table, full, stmt.returning, params))
        cols = _output_names(_expand_returning(stmt.returning, table)) if stmt.returning else []
        result = QueryResult(cols, returned, command="INSERT")
        result.rowcount = inserted
        return result

    def _build_full_row(self, table: Table, columns, values) -> list:
        by_name = dict(zip(columns, values))
        full = []
        for col in table.columns:
            if col.name in by_name:
                full.append(cast_value(by_name[col.name], col.type_name))
            elif col.is_serial:
                seq = self.catalog.get_sequence(f"{table.name}_{col.name}_seq")
                full.append(seq.nextval())
            elif col.default is not None:
                ctx = self._ctx(Row(), None)
                full.append(cast_value(evaluate(col.default, ctx), col.type_name))
            else:
                full.append(None)
        return full

    def _check_not_null(self, table: Table, full: list) -> None:
        for col, value in zip(table.columns, full):
            if col.not_null and value is None:
                raise NotNullViolation(
                    f"null value in column {col.name!r} of relation {table.name!r}"
                )

    def _unique_key_sets(self, table: Table):
        if table.primary_key:
            yield table.primary_key
        for cols in table.unique_constraints:
            yield cols
        for index in table.indexes.values():
            if index.unique:
                cols = [e.name for e in index.exprs if isinstance(e, A.ColumnRef)]
                if len(cols) == len(index.exprs):
                    yield cols

    def _find_conflict(self, table: Table, full: list, on_conflict):
        snapshot = self.session.snapshot()
        clog = self.instance.xids.clog
        names = table.column_names()
        row_map = dict(zip(names, full))
        for cols in self._unique_key_sets(table):
            key_values = [row_map.get(c) for c in cols]
            if any(v is None for v in key_values):
                continue
            index = self._index_for_columns(table, cols)
            if index is not None:
                candidates = [table.heap.get(tid) for tid in index.data.scan_equal(key_values)]
            else:
                candidates = table.heap.tuples
            for tup in candidates:
                if tup is None:
                    continue
                from .mvcc import tuple_visible

                if not tuple_visible(tup.header, snapshot, clog):
                    continue
                existing = dict(zip(names, tup.values))
                if all(
                    existing.get(c) is not None
                    and compare_values(existing[c], row_map[c]) == 0
                    for c in cols
                ):
                    if on_conflict is not None and on_conflict.columns:
                        if set(on_conflict.columns) != set(cols):
                            raise UniqueViolation(
                                f"duplicate key violates unique constraint on {cols}"
                            )
                    return tup
        return None

    def _apply_conflict_update(self, table, conflict_tup, on_conflict, new_full, params):
        names = table.column_names()
        self.session.acquire_row_lock(table.name, conflict_tup.row_id)
        row = Row()
        row.bind_row(table.name, names, conflict_tup.values)
        excluded = Row()
        excluded.bind_row("excluded", names, new_full)
        merged = row.merge(excluded)
        ctx = self._ctx(merged, params)
        updated = list(conflict_tup.values)
        for col_name, expr in on_conflict.updates:
            idx = table.column_index(col_name)
            updated[idx] = cast_value(evaluate(expr, ctx), table.columns[idx].type_name)
        self._do_update(table, conflict_tup, updated)

    def _do_insert(self, table: Table, full: list):
        xid = self.session.ensure_xid()
        tup = table.heap.insert(full, xid)
        self._index_insert(table, tup)
        self.instance.wal.append(xid, "insert", {
            "table": table.name, "row_id": tup.row_id, "values": _wal_values(full),
        })
        self.session.track_write(table.name)
        return tup

    def _do_update(self, table: Table, old_tup, new_values: list):
        xid = self.session.ensure_xid()
        table.heap.mark_deleted(old_tup.tid, xid)
        table.heap.note_dead(old_tup)
        new_tup = table.heap.insert(new_values, xid, row_id=old_tup.row_id)
        self._index_insert(table, new_tup)
        self.instance.wal.append(xid, "update", {
            "table": table.name, "row_id": old_tup.row_id, "values": _wal_values(new_values),
        })
        self.session.track_write(table.name)
        return new_tup

    def _do_delete(self, table: Table, tup):
        xid = self.session.ensure_xid()
        table.heap.mark_deleted(tup.tid, xid)
        table.heap.note_dead(tup)
        self.instance.wal.append(xid, "delete", {"table": table.name, "row_id": tup.row_id})
        self.session.track_write(table.name)

    def _index_insert(self, table: Table, tup):
        names = table.column_names()
        for index in table.indexes.values():
            if index.data is None:
                continue
            row = Row()
            row.bind_row(table.name, names, tup.values)
            row.bind_row(None, names, tup.values)
            ctx = self._ctx(row, None)
            values = [evaluate(e, ctx) for e in index.exprs]
            if isinstance(index.data, GinIndex):
                index.data.insert(values[0], tup.tid)
            else:
                index.data.insert(values, tup.tid)
            self.session.stats["index_writes"] += 1

    def _index_for_columns(self, table: Table, cols: list[str]) -> IndexDef | None:
        for index in table.indexes.values():
            if isinstance(index.data, GinIndex):
                continue
            index_cols = [e.name for e in index.exprs if isinstance(e, A.ColumnRef)]
            if index_cols[: len(cols)] == list(cols):
                return index
        return None

    def _check_foreign_keys(self, table: Table, full: list) -> None:
        if not table.foreign_keys or not self.session.get_guc("foreign_key_checks", True):
            return
        names = table.column_names()
        row_map = dict(zip(names, full))
        snapshot = self.session.snapshot()
        clog = self.instance.xids.clog
        for fk in table.foreign_keys:
            values = [row_map.get(c) for c in fk.columns]
            if any(v is None for v in values):
                continue
            ref_table = self.catalog.get_table(fk.ref_table)
            ref_cols = fk.ref_columns or ref_table.primary_key
            index = self._index_for_columns(ref_table, ref_cols)
            found = False
            if index is not None:
                from .mvcc import tuple_visible

                for tid in index.data.scan_equal(values):
                    tup = ref_table.heap.get(tid)
                    if tup is not None and tuple_visible(tup.header, snapshot, clog):
                        found = True
                        break
            else:
                ref_names = ref_table.column_names()
                positions = [ref_names.index(c) for c in ref_cols]
                for tup in ref_table.heap.scan(snapshot, clog):
                    if all(
                        tup.values[p] is not None
                        and compare_values(tup.values[p], v) == 0
                        for p, v in zip(positions, values)
                    ):
                        found = True
                        break
            if not found:
                raise ForeignKeyViolation(
                    f"insert on {table.name!r} violates foreign key to {fk.ref_table!r}"
                )

    def execute_update(self, stmt: A.Update, params) -> QueryResult:
        table = self.catalog.get_table(stmt.table)
        self.session.acquire_table_lock(table.name, "RowExclusive")
        alias = stmt.alias or stmt.table
        rel = self._scan_table(table, alias, params, None, stmt.where)
        predicate = get_compiled(stmt.where) if stmt.where is not None else None
        target_rows = []
        for row in rel.rows:
            if predicate is None or predicate(self._ctx(row, params)) is True:
                target_rows.append(row)
        updated = 0
        returned = []
        names = table.column_names()
        # Two-phase: acquire every row lock before mutating anything, so a
        # lock wait (parked statement) can re-run the statement from scratch
        # without double-applying assignments.
        assignments = [
            (table.column_index(col_name), get_compiled(expr))
            for col_name, expr in stmt.assignments
        ]
        for row in target_rows:
            _table_name, row_id, _tid = row.provenance[alias]
            self.session.acquire_row_lock(table.name, row_id)
        for row in target_rows:
            _table_name, row_id, tid = row.provenance[alias]
            # Re-read the newest version after acquiring the lock
            # (simplified EvalPlanQual under READ COMMITTED).
            current = table.heap.latest_version(row_id, self.instance.xids.clog)
            if current is None or (
                current.header.xmax is not None
                and current.header.xmax != self.session.xid
            ) and self.instance.xids.clog.status(current.header.xmax) == "committed":
                continue
            ctx = self._ctx(row, params)
            new_values = list(current.values)
            for idx, assign_fn in assignments:
                new_values[idx] = cast_value(assign_fn(ctx), table.columns[idx].type_name)
            self._check_not_null(table, new_values)
            self._check_foreign_keys(table, new_values)
            self._check_update_unique(table, current, new_values)
            self._do_update(table, current, new_values)
            updated += 1
            if stmt.returning:
                out = Row()
                out.bind_row(alias, names, new_values)
                returned.append(
                    [evaluate(t.expr, self._ctx(out, params))
                     for t in _expand_returning(stmt.returning, table)]
                )
        cols = _output_names(_expand_returning(stmt.returning, table)) if stmt.returning else []
        result = QueryResult(cols, returned, command="UPDATE")
        result.rowcount = updated
        return result

    def _check_update_unique(self, table, current, new_values):
        names = table.column_names()
        old_map = dict(zip(names, current.values))
        new_map = dict(zip(names, new_values))
        changed = {n for n in names if _group_key(old_map[n]) != _group_key(new_map[n])}
        for cols in self._unique_key_sets(table):
            if not changed.intersection(cols):
                continue
            conflict = self._find_conflict(table, new_values, None)
            if conflict is not None and conflict.row_id != current.row_id:
                raise UniqueViolation(
                    f"duplicate key value violates unique constraint on {table.name!r}"
                )

    def execute_delete(self, stmt: A.Delete, params) -> QueryResult:
        table = self.catalog.get_table(stmt.table)
        self.session.acquire_table_lock(table.name, "RowExclusive")
        alias = stmt.alias or stmt.table
        rel = self._scan_table(table, alias, params, None, stmt.where)
        deleted = 0
        returned = []
        names = table.column_names()
        predicate = get_compiled(stmt.where) if stmt.where is not None else None
        target_rows = [
            row for row in rel.rows
            if predicate is None or predicate(self._ctx(row, params)) is True
        ]
        for row in target_rows:
            _table_name, row_id, _tid = row.provenance[alias]
            self.session.acquire_row_lock(table.name, row_id)
        for row in target_rows:
            _table_name, row_id, tid = row.provenance[alias]
            current = table.heap.latest_version(row_id, self.instance.xids.clog)
            if current is None or (
                current.header.xmax is not None
                and current.header.xmax != self.session.xid
                and self.instance.xids.clog.status(current.header.xmax) == "committed"
            ):
                continue
            self._check_referencing_keys(table, current.values)
            self._do_delete(table, current)
            deleted += 1
            if stmt.returning:
                returned.append(
                    [evaluate(t.expr, self._ctx(row, params))
                     for t in _expand_returning(stmt.returning, table)]
                )
        cols = _output_names(_expand_returning(stmt.returning, table)) if stmt.returning else []
        result = QueryResult(cols, returned, command="DELETE")
        result.rowcount = deleted
        return result

    def _check_referencing_keys(self, table: Table, values: list) -> None:
        """ON DELETE RESTRICT semantics for incoming foreign keys."""
        if not self.session.get_guc("foreign_key_checks", True):
            return
        names = table.column_names()
        row_map = dict(zip(names, values))
        snapshot = self.session.snapshot()
        clog = self.instance.xids.clog
        for other in self.catalog.tables.values():
            for fk in other.foreign_keys:
                if fk.ref_table != table.name:
                    continue
                ref_cols = fk.ref_columns or table.primary_key
                if not ref_cols:
                    continue
                key = [row_map.get(c) for c in ref_cols]
                other_names = other.column_names()
                positions = [other_names.index(c) for c in fk.columns]
                for tup in other.heap.scan(snapshot, clog):
                    if all(
                        tup.values[p] is not None and compare_values(tup.values[p], v) == 0
                        for p, v in zip(positions, key)
                    ):
                        raise ForeignKeyViolation(
                            f"row in {table.name!r} is still referenced from {other.name!r}"
                        )

    def _returning_row(self, table, full, returning, params):
        names = table.column_names()
        row = Row()
        row.bind_row(table.name, names, full)
        ctx = self._ctx(row, params)
        return [evaluate(t.expr, ctx) for t in _expand_returning(returning, table)]

    # ------------------------------------------------------------ EXPLAIN

    def explain(self, stmt, params) -> list[str]:
        if isinstance(stmt, A.Select):
            lines = []
            self._explain_from(stmt, lines)
            if stmt.group_by or self._has_aggregates(
                [t for t in stmt.targets if isinstance(t, A.TargetEntry)], stmt
            ):
                lines.insert(0, "HashAggregate")
            if stmt.order_by:
                lines.insert(0, "Sort")
            if stmt.limit is not None:
                lines.insert(0, "Limit")
            return lines
        if isinstance(stmt, A.Insert):
            return [f"Insert on {stmt.table}"]
        if isinstance(stmt, A.Update):
            return [f"Update on {stmt.table}"]
        if isinstance(stmt, A.Delete):
            return [f"Delete on {stmt.table}"]
        return [type(stmt).__name__]

    def _explain_from(self, select: A.Select, lines: list[str]) -> None:
        single_table = len(select.from_items) == 1 and isinstance(
            select.from_items[0], A.TableRef
        )

        def describe(item):
            if isinstance(item, A.TableRef):
                if self.catalog.has_table(item.name):
                    path = None
                    if single_table and select.where is not None:
                        table = self.catalog.get_table(item.name)
                        try:
                            path = self.choose_access_path(
                                table, item.ref_name, select.where, None, None
                            )
                        except Exception:
                            path = None
                    if path is not None:
                        lines.append(f"{path[0]} on {item.name}")
                    else:
                        lines.append(f"Seq Scan on {item.name}")
                else:
                    lines.append(f"Scan on {item.name}")
            elif isinstance(item, A.JoinExpr):
                lines.append("Hash Join" if item.condition is not None else "Nested Loop")
                describe(item.left)
                describe(item.right)
            elif isinstance(item, A.SubqueryRef):
                lines.append(f"Subquery Scan on {item.alias}")
                self._explain_from(item.query, lines)
            elif isinstance(item, A.FunctionRef):
                lines.append(f"Function Scan on {item.func.name}")

        for item in select.from_items:
            describe(item)


# --------------------------------------------------------------------------
# module-level helpers
# --------------------------------------------------------------------------


@dataclass
class _AggRef(A.Expr):
    index: int = 0


class _AggContext:
    __slots__ = ("ctx", "values")

    def __init__(self, ctx, values):
        self.ctx = ctx
        self.values = values


def _eval_agg(expr, agg_ctx: _AggContext):
    if isinstance(expr, _AggRef):
        return agg_ctx.values[expr.index]
    if isinstance(expr, A.BinaryOp):
        left_has = _contains_aggref(expr.left)
        right_has = _contains_aggref(expr.right)
        if left_has or right_has:
            from .expr import apply_binary

            if expr.op == "and":
                lv = _eval_agg(expr.left, agg_ctx)
                rv = _eval_agg(expr.right, agg_ctx)
                if lv is False or rv is False:
                    return False
                return None if lv is None or rv is None else True
            if expr.op == "or":
                lv = _eval_agg(expr.left, agg_ctx)
                rv = _eval_agg(expr.right, agg_ctx)
                if lv is True or rv is True:
                    return True
                return None if lv is None or rv is None else False
            return apply_binary(expr.op, _eval_agg(expr.left, agg_ctx),
                                _eval_agg(expr.right, agg_ctx))
    if isinstance(expr, A.Cast) and _contains_aggref(expr.operand):
        return cast_value(_eval_agg(expr.operand, agg_ctx), expr.type_name)
    if isinstance(expr, A.FuncCall) and _contains_aggref(expr):
        from .functions import SCALAR_FUNCTIONS

        fn = SCALAR_FUNCTIONS.get(expr.name.lower())
        if fn is None:
            raise DataError(f"function {expr.name}() does not exist")
        return fn(*[_eval_agg(a, agg_ctx) for a in expr.args])
    if isinstance(expr, A.UnaryOp) and _contains_aggref(expr.operand):
        value = _eval_agg(expr.operand, agg_ctx)
        if expr.op == "not":
            return None if value is None else not value
        return None if value is None else -value
    return evaluate(expr, agg_ctx.ctx)


def _contains_aggref(expr) -> bool:
    return any(isinstance(n, _AggRef) for n in A.walk(expr))


def _walk_skip_subqueries(expr):
    """Pre-order walk that does not descend into SubqueryExpr nodes."""
    if isinstance(expr, A.SubqueryExpr):
        return
    if isinstance(expr, A.Node):
        yield expr
        import dataclasses

        for f in dataclasses.fields(expr):
            value = getattr(expr, f.name)
            if isinstance(value, A.Node):
                yield from _walk_skip_subqueries(value)
            elif isinstance(value, (list, tuple)):
                for v in value:
                    if isinstance(v, A.Node):
                        yield from _walk_skip_subqueries(v)


def _transform_keep_identity(expr, fn):
    """Like ast.transform but replaces nodes in place via visitation order
    that preserves identity of untouched nodes (so aggregate collection can
    key by node identity). Does not descend into subqueries: their
    aggregates belong to the inner query level."""
    if isinstance(expr, A.SubqueryExpr):
        return expr
    result = fn(expr)
    if result is not expr:
        return result
    import dataclasses

    for f in dataclasses.fields(expr) if isinstance(expr, A.Node) else []:
        value = getattr(expr, f.name)
        if isinstance(value, A.Node):
            setattr(expr, f.name, _transform_keep_identity(value, fn))
        elif isinstance(value, list):
            setattr(
                expr,
                f.name,
                [
                    _transform_keep_identity(v, fn) if isinstance(v, A.Node) else v
                    for v in value
                ],
            )
        elif isinstance(value, tuple):
            setattr(
                expr,
                f.name,
                tuple(
                    _transform_keep_identity(v, fn) if isinstance(v, A.Node) else v
                    for v in value
                ),
            )
    return expr


def _group_key(value):
    """Hashable representation of a value for grouping / distinct / join."""
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    if isinstance(value, (dict, list)):
        return ("j", to_text(value))
    return ("v", to_text(value), type(value).__name__)


def _expand_stars(targets, rel: RelOutput | None):
    expanded = []
    for entry in targets:
        expr = entry.expr if isinstance(entry, A.TargetEntry) else entry
        if isinstance(expr, A.Star):
            if rel is None:
                raise SyntaxErrorSQL("SELECT * requires a FROM clause")
            for alias, name in rel.columns:
                if expr.table is None or expr.table == alias:
                    expanded.append(A.TargetEntry(A.ColumnRef(name, table=alias), name))
        else:
            expanded.append(entry)
    return expanded


def _expand_returning(returning, table: Table):
    expanded = []
    for entry in returning:
        expr = entry.expr if isinstance(entry, A.TargetEntry) else entry
        if isinstance(expr, A.Star):
            for name in table.column_names():
                expanded.append(A.TargetEntry(A.ColumnRef(name), name))
        else:
            expanded.append(entry)
    return expanded


def _output_names(targets) -> list[str]:
    names = []
    for entry in targets:
        if entry.alias:
            names.append(entry.alias)
        elif isinstance(entry.expr, A.ColumnRef):
            names.append(entry.expr.name)
        elif isinstance(entry.expr, A.FuncCall):
            names.append(entry.expr.name.lower())
        elif isinstance(entry.expr, A.Cast):
            inner = entry.expr.operand
            names.append(inner.name if isinstance(inner, A.ColumnRef) else entry.expr.type_name)
        else:
            names.append("?column?")
    return names


def _rows_to_rel(alias: str, columns: list[str], rows) -> RelOutput:
    keys = set(columns) | {f"{alias}.{c}" for c in columns}
    rel_columns = [(alias, c) for c in columns]
    if not isinstance(rows, list):
        # Lazy source (a streaming intermediate result): keep it lazy so a
        # single-pass consumer — the coordinator's hash aggregate over
        # ``citus_intermediate`` — never materializes the whole stream.
        def bind_lazily():
            for values in rows:
                row = Row()
                row.bind_row(alias, columns, values)
                yield row

        return RelOutput(columns=rel_columns, rows=bind_lazily(), keys=keys)
    out_rows = []
    for values in rows:
        row = Row()
        row.bind_row(alias, columns, values)
        out_rows.append(row)
    return RelOutput(columns=rel_columns, rows=out_rows, keys=keys)


def _cross_join(left: RelOutput, right: RelOutput) -> RelOutput:
    rows = [l.merge(r) for l in left.rows for r in right.rows]
    return RelOutput(left.columns + right.columns, rows, left.keys | right.keys)


def _null_extend(row: Row, other: RelOutput) -> Row:
    extended = Row()
    extended.qualified.update(row.qualified)
    extended.unqualified.update(row.unqualified)
    extended._ambiguous |= row._ambiguous
    extended.provenance.update(row.provenance)
    for alias, name in other.columns:
        extended.bind(alias, name, None)
    return extended


def _using_to_condition(using: list[str], left: RelOutput, right: RelOutput) -> A.Expr:
    conds = []
    left_aliases = {a for a, _ in left.columns}
    right_aliases = {a for a, _ in right.columns}
    for name in using:
        lalias = next((a for a, n in left.columns if n == name), None)
        ralias = next((a for a, n in right.columns if n == name), None)
        conds.append(
            A.BinaryOp("=", A.ColumnRef(name, table=lalias), A.ColumnRef(name, table=ralias))
        )
    cond = conds[0]
    for c in conds[1:]:
        cond = A.BinaryOp("and", cond, c)
    return cond


def _equi_condition_between(conjuncts, left_keys: set, right_keys: set):
    """AND together the conjuncts that equi-join two relations; None when
    no conjunct connects them."""
    found = []
    for c in conjuncts:
        if not (isinstance(c, A.BinaryOp) and c.op == "="):
            continue
        lrefs = _column_keys(c.left)
        rrefs = _column_keys(c.right)
        if not lrefs or not rrefs:
            continue
        connects = (
            (_subset(lrefs, left_keys) and _subset(rrefs, right_keys))
            or (_subset(lrefs, right_keys) and _subset(rrefs, left_keys))
        )
        if connects:
            found.append(c)
    if not found:
        return None
    condition = found[0]
    for c in found[1:]:
        condition = A.BinaryOp("and", condition, c)
    return condition


def _extract_equi_keys(condition, left_keys: set, right_keys: set):
    """If condition is a conjunction containing equi-join predicates, return
    ([left_exprs], [right_exprs]) for the hash join, else None."""
    conjuncts = _split_and(condition)
    left_exprs, right_exprs = [], []
    for c in conjuncts:
        if isinstance(c, A.BinaryOp) and c.op == "=":
            lrefs = _column_keys(c.left)
            rrefs = _column_keys(c.right)
            if lrefs and rrefs:
                if _subset(lrefs, left_keys) and _subset(rrefs, right_keys):
                    left_exprs.append(c.left)
                    right_exprs.append(c.right)
                elif _subset(lrefs, right_keys) and _subset(rrefs, left_keys):
                    left_exprs.append(c.right)
                    right_exprs.append(c.left)
    if not left_exprs:
        return None
    return left_exprs, right_exprs


def _split_and(expr) -> list:
    if isinstance(expr, A.BinaryOp) and expr.op == "and":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _column_keys(expr) -> set:
    keys = set()
    for node in A.walk(expr):
        if isinstance(node, A.ColumnRef):
            keys.add(node.key)
        elif isinstance(node, A.SubqueryExpr):
            return set()  # never hash on subquery results
    return keys


def _subset(refs: set, keys: set) -> bool:
    return bool(refs) and all(r in keys for r in refs)


def _apply_set_op(op: str, left_pairs, right_pairs):
    if op == "union all":
        return left_pairs + right_pairs
    left_keys = [tuple(_group_key(v) for v in values) for values, _ in left_pairs]
    right_keys = [tuple(_group_key(v) for v in values) for values, _ in right_pairs]
    if op == "union":
        seen = set()
        out = []
        for (values, row), key in zip(left_pairs + right_pairs, left_keys + right_keys):
            if key not in seen:
                seen.add(key)
                out.append((values, row))
        return out
    right_set = set(right_keys)
    if op in ("intersect", "intersect all"):
        return [p for p, k in zip(left_pairs, left_keys) if k in right_set]
    if op in ("except", "except all"):
        return [p for p, k in zip(left_pairs, left_keys) if k not in right_set]
    raise SyntaxErrorSQL(f"unsupported set operation {op!r}")


def _distinct_pairs(pairs, distinct_on, executor, params, outer):
    seen = set()
    out = []
    for values, row in pairs:
        if distinct_on:
            ctx = executor._ctx(row, params, outer)
            key = tuple(_group_key(evaluate(e, ctx)) for e in distinct_on)
        else:
            key = tuple(_group_key(v) for v in values)
        if key not in seen:
            seen.add(key)
            out.append((values, row))
    return out


def _resolve_ref(expr, targets):
    """Resolve positional (GROUP BY 1) and alias references to target exprs."""
    if isinstance(expr, A.Literal) and isinstance(expr.value, int):
        index = expr.value - 1
        if 0 <= index < len(targets):
            return targets[index].expr
    if isinstance(expr, A.ColumnRef) and expr.table is None:
        for entry in targets:
            if entry.alias == expr.name:
                return entry.expr
    return expr


class _Reversed:
    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return self.key == other.key


def _const_comparison(cond: A.BinaryOp, alias: str, ctx):
    """For ``col op const`` / ``const op col`` conjuncts over this relation,
    return (column_name, constant_value); (None, None) otherwise."""
    left, right, op = cond.left, cond.right, cond.op
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if isinstance(right, A.ColumnRef) and not isinstance(left, A.ColumnRef):
        left, right = right, left
        op = flipped[op]
    if not isinstance(left, A.ColumnRef) or left.table not in (None, alias):
        return None, None
    if _references_columns(right):
        return None, None
    try:
        value = evaluate(right, ctx)
    except Exception:
        return None, None
    if value is None:
        return None, None
    return left.name, value


def _references_columns(expr) -> bool:
    return any(isinstance(n, (A.ColumnRef, A.Star, A.SubqueryExpr)) for n in A.walk(expr))


def _normalized_expr_text(expr, alias: str | None) -> str:
    """Deparse an expression with table qualifiers stripped, so a query
    predicate can be matched against an index expression."""

    def strip(node):
        if isinstance(node, A.ColumnRef):
            return A.ColumnRef(node.name)
        return node

    return deparse(A.transform(expr.copy(), strip)).lower()


def _wal_values(values: list) -> list:
    return [to_text(v) if isinstance(v, (dict, list)) else v for v in values]
