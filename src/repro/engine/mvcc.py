"""Transaction IDs, commit log (clog), and MVCC snapshots.

The model follows PostgreSQL: every transaction gets a 64-bit-ish
monotonically increasing xid; a snapshot records the set of transactions
that were in progress when it was taken plus the next-xid horizon; tuple
visibility is decided from (xmin, xmax) against the snapshot and the
commit log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

IN_PROGRESS = "in_progress"
COMMITTED = "committed"
ABORTED = "aborted"
PREPARED = "prepared"


@dataclass
class Snapshot:
    """An MVCC snapshot: xids >= xmax or in ``in_progress`` are invisible."""

    xmax: int
    in_progress: frozenset = frozenset()
    # The xid of the owning transaction; its own effects are always visible.
    own_xid: int = 0

    def sees_xid(self, xid: int, clog: "CommitLog") -> bool:
        """Whether a transaction's effects are visible to this snapshot."""
        if xid == self.own_xid:
            return True
        if xid >= self.xmax or xid in self.in_progress:
            return False
        return clog.status(xid) == COMMITTED


class CommitLog:
    """Transaction status registry (PostgreSQL's pg_xact / clog)."""

    def __init__(self):
        self._status: dict[int, str] = {}

    def begin(self, xid: int) -> None:
        self._status[xid] = IN_PROGRESS

    def commit(self, xid: int) -> None:
        self._status[xid] = COMMITTED

    def abort(self, xid: int) -> None:
        self._status[xid] = ABORTED

    def prepare(self, xid: int) -> None:
        self._status[xid] = PREPARED

    def status(self, xid: int) -> str:
        # Unknown xids are treated as aborted (crash before commit record).
        return self._status.get(xid, ABORTED)

    def snapshot_state(self) -> dict[int, str]:
        return dict(self._status)


class XidManager:
    """Allocates xids and produces snapshots."""

    def __init__(self, start: int = 100):
        self.next_xid = start
        self.clog = CommitLog()
        self.active: set[int] = set()

    def allocate(self) -> int:
        xid = self.next_xid
        self.next_xid += 1
        self.active.add(xid)
        self.clog.begin(xid)
        return xid

    def finish(self, xid: int, committed: bool) -> None:
        if committed:
            self.clog.commit(xid)
        else:
            self.clog.abort(xid)
        self.active.discard(xid)

    def mark_prepared(self, xid: int) -> None:
        """A prepared transaction is no longer running but its effects stay
        invisible (it is neither committed nor aborted)."""
        self.clog.prepare(xid)
        # It stays in `active` so snapshots keep treating it as in-progress.

    def resolve_prepared(self, xid: int, committed: bool) -> None:
        self.finish(xid, committed)

    def take_snapshot(self, own_xid: int = 0) -> Snapshot:
        return Snapshot(self.next_xid, frozenset(self.active), own_xid)


@dataclass
class HeapTupleHeader:
    """MVCC header carried by every heap tuple version."""

    xmin: int
    xmax: int | None = None


def tuple_visible(header: HeapTupleHeader, snapshot: Snapshot, clog: CommitLog) -> bool:
    """PostgreSQL-style visibility check for one tuple version."""
    if not snapshot.sees_xid(header.xmin, clog):
        return False
    if header.xmax is None:
        return True
    # Deleted: invisible if the deleter is visible to us (incl. ourselves),
    # unless the deleting transaction aborted.
    if header.xmax == snapshot.own_xid:
        return False
    if snapshot.sees_xid(header.xmax, clog):
        return False
    return True
