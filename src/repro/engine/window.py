"""Window function execution.

Supports ranking functions (``row_number``, ``rank``, ``dense_rank``,
``ntile``), navigation (``lag``, ``lead``, ``first_value``, ``last_value``)
and any aggregate from the aggregate library used as a window.

Frame semantics follow PostgreSQL defaults: with an ORDER BY the frame is
*range between unbounded preceding and current row* (running aggregates,
peers included); without one, the whole partition.
"""

from __future__ import annotations

from ..errors import DataError
from ..sql import ast as A
from .datum import sort_key
from .functions import get_aggregate, is_aggregate

RANKING_FUNCTIONS = {"row_number", "rank", "dense_rank", "ntile"}
NAVIGATION_FUNCTIONS = {"lag", "lead", "first_value", "last_value"}


def is_window_capable(name: str) -> bool:
    name = name.lower()
    return (
        name in RANKING_FUNCTIONS
        or name in NAVIGATION_FUNCTIONS
        or is_aggregate(name)
    )


def contains_window_function(expr) -> bool:
    return any(
        isinstance(n, A.FuncCall) and n.over is not None for n in A.walk(expr)
    )


def compute_window_values(executor, node: A.FuncCall, rows, params, outer) -> list:
    """Evaluate one window function over the input rows; returns a value
    per row, aligned with ``rows`` order."""
    from .expr import evaluate

    name = node.name.lower()
    if not is_window_capable(name):
        raise DataError(f"{name}() is not a window function")
    window = node.over

    def ctx_for(row):
        return executor._ctx(row, params, outer)

    # Partition rows.
    partitions: dict[tuple, list[int]] = {}
    order_in_input = list(range(len(rows)))
    for i in order_in_input:
        ctx = ctx_for(rows[i])
        key = tuple(
            _hashable(evaluate(e, ctx)) for e in window.partition_by
        )
        partitions.setdefault(key, []).append(i)

    values: list = [None] * len(rows)
    for indices in partitions.values():
        ordered = _order_partition(executor, indices, rows, window.order_by,
                                   params, outer)
        peer_groups = _peer_groups(executor, ordered, rows, window.order_by,
                                   params, outer)
        if name in RANKING_FUNCTIONS:
            _compute_ranking(name, node, executor, ordered, peer_groups, rows,
                             values, params, outer)
        elif name in NAVIGATION_FUNCTIONS:
            _compute_navigation(name, node, executor, ordered, rows, values,
                                params, outer)
        else:
            _compute_window_aggregate(node, executor, ordered, peer_groups,
                                      rows, values, params, outer,
                                      running=bool(window.order_by))
    return values


def _order_partition(executor, indices, rows, order_by, params, outer):
    from .expr import evaluate

    if not order_by:
        return list(indices)

    def key_fn(i):
        ctx = executor._ctx(rows[i], params, outer)
        keys = []
        for sk in order_by:
            value = evaluate(sk.expr, ctx)
            nulls_first = sk.nulls_first
            if nulls_first is None:
                nulls_first = not sk.ascending
            null_rank = (0 if nulls_first else 1) if value is None else (
                1 if nulls_first else 0
            )
            vk = sort_key(value)
            if not sk.ascending:
                from .executor import _Reversed

                vk = _Reversed(vk)
            keys.append((null_rank, vk))
        return keys

    return sorted(indices, key=key_fn)


def _peer_groups(executor, ordered, rows, order_by, params, outer):
    """Group consecutive rows with equal ORDER BY keys (rank peers)."""
    from .expr import evaluate

    if not order_by:
        return [list(ordered)]
    groups = []
    last_key = object()
    for i in ordered:
        ctx = executor._ctx(rows[i], params, outer)
        key = tuple(_hashable(evaluate(sk.expr, ctx)) for sk in order_by)
        if key != last_key:
            groups.append([i])
            last_key = key
        else:
            groups[-1].append(i)
    return groups


def _compute_ranking(name, node, executor, ordered, peer_groups, rows, values,
                     params, outer):
    from .expr import evaluate

    if name == "row_number":
        for position, i in enumerate(ordered, start=1):
            values[i] = position
        return
    if name == "ntile":
        ctx = executor._ctx(rows[ordered[0]], params, outer)
        buckets = int(evaluate(node.args[0], ctx)) if node.args else 1
        n = len(ordered)
        for position, i in enumerate(ordered):
            values[i] = min(position * buckets // n + 1, buckets)
        return
    rank = 1
    dense = 1
    seen = 0
    for group in peer_groups:
        for i in group:
            values[i] = rank if name == "rank" else dense
        seen += len(group)
        rank = seen + 1
        dense += 1


def _compute_navigation(name, node, executor, ordered, rows, values, params, outer):
    from .expr import evaluate

    def arg_value(i, position):
        ctx = executor._ctx(rows[i], params, outer)
        return evaluate(node.args[position], ctx)

    if name in ("first_value", "last_value"):
        source = ordered[0] if name == "first_value" else ordered[-1]
        for i in ordered:
            values[i] = arg_value(source, 0)
        return
    offset = 1
    default = None
    for position, i in enumerate(ordered):
        if len(node.args) > 1:
            offset = int(arg_value(i, 1))
        if len(node.args) > 2:
            default = arg_value(i, 2)
        target = position - offset if name == "lag" else position + offset
        if 0 <= target < len(ordered):
            values[i] = arg_value(ordered[target], 0)
        else:
            values[i] = default


def _compute_window_aggregate(node, executor, ordered, peer_groups, rows,
                              values, params, outer, running: bool):
    from .expr import evaluate

    agg = get_aggregate(node.name)
    if not running:
        state = agg.init()
        for i in ordered:
            ctx = executor._ctx(rows[i], params, outer)
            state = _accumulate(agg, node, state, ctx)
        final = agg.finalize(state)
        for i in ordered:
            values[i] = final
        return
    # Running aggregate over peer groups (default frame).
    state = agg.init()
    for group in peer_groups:
        for i in group:
            ctx = executor._ctx(rows[i], params, outer)
            state = _accumulate(agg, node, state, ctx)
        # All peers share the frame end at the last peer.
        snapshot = agg.finalize(_copy_state(state))
        for i in group:
            values[i] = snapshot


def _accumulate(agg, node, state, ctx):
    from .expr import evaluate
    from .functions import _STAR

    if len(node.args) == 1 and isinstance(node.args[0], A.Star):
        return agg.accumulate(state, _STAR)
    if not node.args:
        return agg.accumulate(state, _STAR)
    return agg.accumulate(state, *[evaluate(a, ctx) for a in node.args])


def _copy_state(state):
    if isinstance(state, list):
        return list(state)
    if isinstance(state, dict):
        return dict(state)
    return state


def _hashable(value):
    from .datum import to_text

    if isinstance(value, (dict, list)):
        return to_text(value)
    return value
