"""Single-node PostgreSQL-like engine: the substrate Citus extends.

Public surface:

- :class:`PostgresInstance` — one simulated PostgreSQL server.
- :class:`Session` — one backend / connection.
- :class:`InstanceSpec` — hardware description for the performance model.
- :class:`QueryResult` — rows + column names + rowcount.
"""

from .executor import QueryResult
from .instance import InstanceSpec, PostgresInstance, Session

__all__ = ["PostgresInstance", "Session", "InstanceSpec", "QueryResult"]
