"""System catalog: tables, columns, indexes, sequences, functions.

One :class:`Catalog` per :class:`~repro.engine.instance.PostgresInstance`.
DDL mutates the catalog; the planner resolves names against it. Citus adds
its own metadata tables *through* this catalog (they are ordinary tables),
exactly as the real extension ships ``pg_dist_*`` catalog tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import CatalogError
from ..sql import ast as A
from .datum import normalize_type
from .heap import Heap


@dataclass
class Column:
    name: str
    type_name: str
    not_null: bool = False
    default: Optional[A.Expr] = None
    is_serial: bool = False

    def __post_init__(self):
        raw = self.type_name.strip().lower()
        if raw in ("serial", "bigserial"):
            self.is_serial = True
        self.type_name = normalize_type(self.type_name)


@dataclass
class ForeignKey:
    name: str
    columns: list[str]
    ref_table: str
    ref_columns: list[str]


@dataclass
class IndexDef:
    name: str
    table: str
    exprs: list  # list[A.Expr] over the table's columns
    unique: bool = False
    method: str = "btree"  # btree | gin
    # Runtime index structure, attached by storage.
    data: object = None


@dataclass
class Table:
    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    unique_constraints: list[list[str]] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    indexes: dict[str, IndexDef] = field(default_factory=dict)
    access_method: str = "heap"  # heap | columnar
    heap: Heap = None

    def __post_init__(self):
        if self.heap is None:
            self.heap = Heap(self.name)

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise CatalogError(f"column {name!r} of table {self.name!r} does not exist")

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)


@dataclass
class SQLFunction:
    """A function callable from SQL — used both for builtins with catalog
    presence and for UDFs (the Citus management API surface).

    ``fn(session, *args)`` receives the executing session so UDFs can run
    queries, mutate metadata, and open remote connections, the way a C
    extension function runs inside the backend.
    """

    name: str
    fn: Callable
    volatile: bool = True


@dataclass
class Procedure:
    """A stored procedure (CALL target). ``fn(session, *args)``.

    ``distribution_arg`` is Citus metadata: when set, calls may be delegated
    to the worker owning the matching shard (§3.8 stored procedures).
    """

    name: str
    fn: Callable
    distribution_arg: Optional[int] = None
    colocated_table: Optional[str] = None


class Sequence:
    def __init__(self, name: str, start: int = 1):
        self.name = name
        self._next = start

    def nextval(self) -> int:
        value = self._next
        self._next += 1
        return value

    def setval(self, value: int) -> None:
        self._next = value + 1


class Catalog:
    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.sequences: dict[str, Sequence] = {}
        self.functions: dict[str, SQLFunction] = {}
        self.procedures: dict[str, Procedure] = {}

    # ------------------------------------------------------------- tables

    def create_table(self, table: Table, if_not_exists: bool = False) -> bool:
        if table.name in self.tables:
            if if_not_exists:
                return False
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        for col in table.columns:
            if col.is_serial:
                self.sequences[f"{table.name}_{col.name}_seq"] = Sequence(
                    f"{table.name}_{col.name}_seq"
                )
        return True

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        if name not in self.tables:
            if if_exists:
                return False
            raise CatalogError(f"table {name!r} does not exist")
        del self.tables[name]
        for seq_name in [s for s in self.sequences if s.startswith(name + "_")]:
            del self.sequences[seq_name]
        return True

    def get_table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise CatalogError(f"relation {name!r} does not exist")
        return table

    def has_table(self, name: str) -> bool:
        return name in self.tables

    # ------------------------------------------------------------ indexes

    def create_index(self, index: IndexDef, if_not_exists: bool = False) -> bool:
        table = self.get_table(index.table)
        if index.name in table.indexes:
            if if_not_exists:
                return False
            raise CatalogError(f"index {index.name!r} already exists")
        table.indexes[index.name] = index
        return True

    def drop_index(self, name: str, if_exists: bool = False) -> bool:
        for table in self.tables.values():
            if name in table.indexes:
                del table.indexes[name]
                return True
        if if_exists:
            return False
        raise CatalogError(f"index {name!r} does not exist")

    # ---------------------------------------------------------- functions

    def register_function(self, name: str, fn: Callable, volatile: bool = True) -> None:
        self.functions[name.lower()] = SQLFunction(name.lower(), fn, volatile)

    def get_function(self, name: str) -> SQLFunction | None:
        return self.functions.get(name.lower())

    def register_procedure(self, proc: Procedure) -> None:
        self.procedures[proc.name.lower()] = proc

    def get_procedure(self, name: str) -> Procedure:
        proc = self.procedures.get(name.lower())
        if proc is None:
            raise CatalogError(f"procedure {name!r} does not exist")
        return proc

    def get_sequence(self, name: str) -> Sequence:
        seq = self.sequences.get(name)
        if seq is None:
            seq = self.sequences[name] = Sequence(name)
        return seq
