"""The PostgreSQL extension hook surface (§3.1 of the paper).

Citus delivers *all* of its functionality through these hooks; this module
is the contract between the engine substrate and the Citus layer:

- **planner hook** — consulted for every SELECT/INSERT/UPDATE/DELETE before
  the local planner; an extension may return a :class:`CustomScanPlan`
  whose execution fully replaces local execution (the CustomScan node).
- **utility hook** — consulted for every command that does not go through
  the planner (DDL, COPY, TRUNCATE, VACUUM, ...).
- **transaction callbacks** — pre-commit, post-commit, abort; Citus drives
  its 2PC from these.
- **background workers** — periodic jobs; Citus registers its maintenance
  daemon (deadlock detection, 2PC recovery) here.
- **UDFs** — registered in the catalog's function registry directly.

Multiple extensions may install hooks; they are consulted in registration
order and the first non-None answer wins (the paper notes Citus and
TimescaleDB conflict exactly because both claim these hooks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


class CustomScanPlan:
    """A plan produced by a planner hook, replacing local planning.

    Subclasses implement :meth:`execute` returning a
    :class:`~repro.engine.executor.QueryResult` and :meth:`explain_lines`
    for EXPLAIN output.
    """

    def execute(self, session, params):
        raise NotImplementedError

    def explain_lines(self) -> list[str]:
        return ["Custom Scan"]


@dataclass
class HookRegistry:
    planner_hooks: list[Callable] = field(default_factory=list)
    utility_hooks: list[Callable] = field(default_factory=list)
    pre_commit_callbacks: list[Callable] = field(default_factory=list)
    post_commit_callbacks: list[Callable] = field(default_factory=list)
    abort_callbacks: list[Callable] = field(default_factory=list)
    background_workers: list["BackgroundWorker"] = field(default_factory=list)

    def call_planner(self, session, stmt, params) -> Optional[CustomScanPlan]:
        for hook in self.planner_hooks:
            plan = hook(session, stmt, params)
            if plan is not None:
                return plan
        return None

    def call_utility(self, session, stmt):
        for hook in self.utility_hooks:
            result = hook(session, stmt)
            if result is not None:
                return result
        return None


@dataclass
class BackgroundWorker:
    """A registered background worker: ``fn(instance)`` run every
    ``interval`` simulated seconds by the maintenance loop (and once
    immediately on its first tick)."""

    name: str
    fn: Callable
    interval: float = 2.0
    last_run: Optional[float] = None

    def maybe_run(self, instance, now: float) -> bool:
        if self.last_run is None or now - self.last_run >= self.interval:
            self.last_run = now
            self.fn(instance)
            return True
        return False
