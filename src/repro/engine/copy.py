"""COPY: bulk append of rows to a table.

``COPY t FROM STDIN`` accepts either pre-split rows (list of value lists)
or CSV text. Like PostgreSQL, COPY goes through the same insertion path as
INSERT (index maintenance, constraints) but in a single streamed command —
the paper's §3.8 distributed COPY builds on this by opening one of these
per shard.
"""

from __future__ import annotations

import csv
import io

from ..errors import DataError
from ..sql import ast as A
from .datum import cast_value
from .executor import LocalExecutor, QueryResult


def execute_copy(session, stmt: A.Copy, copy_data) -> QueryResult:
    if stmt.direction == "to":
        return _copy_to(session, stmt)
    if copy_data is None:
        raise DataError("COPY FROM STDIN requires copy_data")
    rows = _normalize_rows(copy_data, session, stmt)
    count = copy_into(session, stmt.table, rows, stmt.columns or None)
    result = QueryResult([], [], command="COPY")
    result.rowcount = count
    return result


def copy_into(session, table_name: str, rows, columns=None) -> int:
    """Append rows through the executor's insert path. Returns row count."""
    table = session.instance.catalog.get_table(table_name)
    session.acquire_table_lock(table_name, "RowExclusive")
    executor = LocalExecutor(session)
    columns = columns or table.column_names()
    count = 0
    for values in rows:
        values = list(values)
        if len(values) != len(columns):
            raise DataError(
                f"COPY row has {len(values)} values but {len(columns)} columns expected"
            )
        full = executor._build_full_row(table, columns, values)
        executor._check_not_null(table, full)
        if executor._find_conflict(table, full, None) is not None:
            from ..errors import UniqueViolation

            raise UniqueViolation(
                f"duplicate key value violates unique constraint on {table_name!r}"
            )
        executor._check_foreign_keys(table, full)
        executor._do_insert(table, full)
        count += 1
    session.stats["rows_copied"] += count
    return count


def insert_rows(session, table_name: str, rows, columns=None) -> int:
    """Append already-evaluated value rows through the executor's insert
    path, with INSERT semantics (no ``rows_copied`` accounting).

    Used by the INSERT..SELECT coordinator strategy for local destinations:
    the source rows are plain values, so rebuilding per-row Literal AST
    nodes just to re-evaluate them would be pure overhead. ``rows`` may be
    a generator — the streaming write plane feeds it one source batch at a
    time.
    """
    table = session.instance.catalog.get_table(table_name)
    session.acquire_table_lock(table_name, "RowExclusive")
    executor = LocalExecutor(session)
    columns = list(columns or table.column_names())
    count = 0
    for values in rows:
        values = list(values)
        if len(values) != len(columns):
            raise DataError(
                f"INSERT has {len(values)} expressions"
                f" but {len(columns)} target columns"
            )
        full = executor._build_full_row(table, columns, values)
        if executor._find_conflict(table, full, None) is not None:
            from ..errors import UniqueViolation

            raise UniqueViolation(
                f"duplicate key value violates unique constraint on {table_name!r}"
            )
        executor._check_not_null(table, full)
        executor._check_foreign_keys(table, full)
        executor._do_insert(table, full)
        count += 1
    return count


def _normalize_rows(copy_data, session, stmt: A.Copy):
    if isinstance(copy_data, str):
        table = session.instance.catalog.get_table(stmt.table)
        columns = stmt.columns or table.column_names()
        types = [table.column(c).type_name for c in columns]
        reader = csv.reader(io.StringIO(copy_data))
        for record in reader:
            if not record:
                continue
            yield [
                None if text == "" else cast_value(text, type_name)
                for text, type_name in zip(record, types)
            ]
    else:
        yield from copy_data


def _copy_to(session, stmt: A.Copy) -> QueryResult:
    table = session.instance.catalog.get_table(stmt.table)
    columns = stmt.columns or table.column_names()
    select = A.Select(
        targets=[A.TargetEntry(A.ColumnRef(c)) for c in columns],
        from_items=[A.TableRef(stmt.table)],
    )
    result = LocalExecutor(session).execute_select(select, None)
    result.command = "COPY"
    return result
