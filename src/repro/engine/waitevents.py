"""Per-session wait-event instrumentation, stamped from the simulated
clock.

PostgreSQL exposes *wait events* in ``pg_stat_activity``: whenever a
backend is not on-CPU it reports a (class, event) pair — ``Lock:tuple``,
``IO:WALSync``, ``Client:ClientRead`` — and tools like
``citus_dist_stat_activity`` surface them cluster-wide. This module is
the simulation's equivalent. Each :class:`~repro.engine.instance.Session`
(and each connection pool) owns a :class:`WaitEventStack`:

- **live waits** use :meth:`WaitEventStack.begin` /
  :meth:`WaitEventStack.finish` (or the :meth:`WaitEventStack.waiting`
  context manager) around a real suspension point — a lock conflict, a
  pool lease. The top of the stack is what the activity view reports as
  the session's current wait, and a ``wait_events_in_progress`` gauge
  tracks outstanding waits so tests can assert exception-safety.
- **reconstructed waits** use :meth:`WaitEventStack.record` for spans
  whose duration is computed from the cost model after the fact (remote
  I/O round trips, 2PC prepare/commit, WAL flush) — pure accounting, no
  stack entry.

Both fold cumulative per-(class, event) totals into whatever
:class:`~repro.engine.stats.StatsRegistry` the owning instance points at
via ``instance.wait_registry`` (the per-instance registry by default;
``install_citus`` repoints every node at the shared cluster registry so
``citus_stat_counters`` and the metrics snapshot see cluster-wide
totals). Counter names are ``wait_count:<Class>.<Event>`` and
``wait_time_us:<Class>.<Event>``, so :meth:`StatsRegistry.reset` clears
them like any other counter. Setting ``wait_registry`` to ``None``
disables accounting entirely (the introspection kill-switch).

Wait-event class taxonomy (see DESIGN.md):

=========  ==========================================================
Class      Events
=========  ==========================================================
Lock       ``relation`` (table lock), ``tuple`` (row lock)
IPC        ``RemoteStatement`` (coordinator parked on a worker)
Net        ``RemoteConnect``, ``RemoteExecute``, ``RemoteDispatch``,
           ``RemoteFetch``, ``RemoteCopy``
TwoPC      ``Prepare``, ``CommitPrepared``, ``RollbackPrepared``,
           ``Commit1PC``, ``Rollback``
IO         ``WALFlush``
Client     ``PoolLease``
=========  ==========================================================
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager

#: Gauge name for outstanding (begun but not finished) live waits.
IN_PROGRESS_GAUGE = "wait_events_in_progress"

#: Counter-name prefixes under which wait totals land in the registry.
COUNT_PREFIX = "wait_count:"
TIME_PREFIX = "wait_time_us:"


class WaitEvent:
    """One live wait on a :class:`WaitEventStack`."""

    __slots__ = ("wclass", "event", "start", "detail")

    def __init__(self, wclass: str, event: str, start: float, detail=None):
        self.wclass = wclass
        self.event = event
        self.start = start
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaitEvent({self.wclass}.{self.event} @{self.start:.6f})"


class WaitEventStack:
    """The wait-event state of one session (or pool)."""

    __slots__ = ("instance", "node", "_stack", "statement_seconds",
                 "_pending", "_enrolled_reg")

    def __init__(self, instance):
        self.instance = instance
        self.node = instance.name
        self._stack: list[WaitEvent] = []
        # Wait time accumulated since the owning session last began a
        # top-level statement; feeds per-tenant wait attribution.
        self.statement_seconds = 0.0
        # Locally batched (class, event, node) -> [count, seconds] totals,
        # folded into the registry only when it is read (snapshot/reset
        # drain pending sources). Accounting runs once or twice per
        # statement, so the hot path writes two list slots instead of two
        # labelled counters.
        self._pending: dict = {}
        self._enrolled_reg = None

    # ------------------------------------------------------------ reading

    @property
    def current(self) -> WaitEvent | None:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def frames(self) -> tuple:
        """The live waits bottom→top as an immutable snapshot — what the
        ASH sampler captures (the full stack, not just :attr:`current`)."""
        return tuple(self._stack)

    # --------------------------------------------------------- live waits

    def begin(self, wclass: str, event: str, detail=None) -> WaitEvent:
        we = WaitEvent(wclass, event, self.instance.now(), detail)
        self._stack.append(we)
        reg = self.instance.wait_registry
        if reg is not None:
            reg.gauge_incr(IN_PROGRESS_GAUGE, node=self.node)
        return we

    def finish(self, we: WaitEvent) -> None:
        """End a live wait begun with :meth:`begin`. Idempotent: finishing
        an event that is no longer on the stack is a no-op."""
        try:
            self._stack.remove(we)
        except ValueError:
            return
        now = self.instance.now()
        elapsed = now - we.start
        self.statement_seconds += elapsed
        reg = self.instance.wait_registry
        if reg is not None:
            reg.gauge_decr(IN_PROGRESS_GAUGE, node=self.node)
            self._account(reg, we.wclass, we.event, elapsed, self.node)
        tracer = self.instance.tracer
        if tracer is not None and tracer.active:
            tracer.add_span(f"wait.{we.wclass}.{we.event}", "wait",
                            we.start, now, node=self.node)

    @contextmanager
    def waiting(self, wclass: str, event: str, detail=None):
        """``with stack.waiting("Client", "PoolLease"): ...`` — the wait is
        finished on exit even when the body raises."""
        we = self.begin(wclass, event, detail)
        try:
            yield we
        finally:
            self.finish(we)

    def clear(self) -> None:
        """Drop all live waits without accounting (session death)."""
        reg = self.instance.wait_registry
        if reg is not None:
            for _ in self._stack:
                reg.gauge_decr(IN_PROGRESS_GAUGE, node=self.node)
        self._stack.clear()

    # -------------------------------------------------- reconstructed waits

    def record(self, wclass: str, event: str, seconds: float,
               node: str | None = None) -> None:
        """Account a wait whose duration the caller already knows (cost
        model deltas: remote round trips, 2PC, WAL flush)."""
        self.statement_seconds += seconds
        reg = self.instance.wait_registry
        if reg is not None:
            self._account(reg, wclass, event, seconds, node or self.node)

    # ---------------------------------------------------------- accounting

    def _account(self, reg, wclass: str, event: str, seconds: float,
                 node: str) -> None:
        # Batch locally; the registry drains us before any read or reset.
        # This keeps the per-statement cost to one small-dict update (the
        # bench_waitevents <5% gate).
        if self._enrolled_reg is not reg:
            self._flush_pending(self._enrolled_reg)
            reg.add_pending_source(self._flush_pending)
            self._enrolled_reg = reg
        entry = self._pending.get((wclass, event, node))
        if entry is None:
            self._pending[(wclass, event, node)] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def _flush_pending(self, reg=None) -> None:
        """Fold locally batched totals into the enrolled registry and
        disenroll (``reg`` is the draining registry, passed by
        :meth:`StatsRegistry._drain_pending`)."""
        target = self._enrolled_reg
        self._enrolled_reg = None
        pending = self._pending
        if target is None or not pending:
            return
        counters = target._counters
        for (wclass, event, node), (count, seconds) in pending.items():
            names = _COUNTER_NAMES.get((wclass, event))
            if names is None:
                key = f"{wclass}.{event}"
                names = _COUNTER_NAMES[(wclass, event)] = (
                    COUNT_PREFIX + key, TIME_PREFIX + key
                )
            per_node = counters.get(names[0])
            if per_node is None:
                per_node = counters[names[0]] = Counter()
            per_node[node] += count
            micros = int(seconds * 1e6)
            if micros:
                per_node = counters.get(names[1])
                if per_node is None:
                    per_node = counters[names[1]] = Counter()
                per_node[node] += micros
        pending.clear()


#: (class, event) -> (count counter name, time counter name). The taxonomy
#: is a small closed set, so this never grows past a few dozen entries —
#: it exists to keep string formatting off the per-statement hot path.
_COUNTER_NAMES: dict[tuple, tuple] = {}


def wait_class_totals(counters: dict) -> dict[str, int]:
    """Roll a flat counter mapping (``StatsSnapshot.as_dict()`` shape, or
    any ``{counter_name: value}`` dict) up to per-wait-class sample counts:
    ``{"Lock": 12, "Net": 40, ...}``.

    Only ``wait_count:`` entries contribute; per-node duplicates
    (``wait_count:Class.Event@node``) are skipped so a class is counted
    once, from its cluster-wide total. Shared by the traffic harness
    report and the ASH timeline mode.
    """
    out: dict[str, int] = {}
    for name, value in counters.items():
        if name.startswith(COUNT_PREFIX) and "@" not in name:
            wclass = name[len(COUNT_PREFIX):].partition(".")[0]
            out[wclass] = out.get(wclass, 0) + value
    return out


def wait_totals(registry) -> dict[tuple, dict]:
    """Aggregate a registry's wait counters into
    ``{(class, event, node): {"count": n, "seconds": s}}`` — the shape the
    monitoring views and the Prometheus exporter render from."""
    snap = registry.snapshot()
    out: dict[tuple, dict] = {}

    def _entry(wclass, event, node):
        return out.setdefault((wclass, event, node),
                              {"count": 0, "seconds": 0.0})

    for name, per_node in snap.counters.items():
        if name.startswith(COUNT_PREFIX):
            wclass, _, event = name[len(COUNT_PREFIX):].partition(".")
            for node, value in per_node.items():
                _entry(wclass, event, node)["count"] += value
        elif name.startswith(TIME_PREFIX):
            wclass, _, event = name[len(TIME_PREFIX):].partition(".")
            for node, value in per_node.items():
                _entry(wclass, event, node)["seconds"] += value / 1e6
    return out
