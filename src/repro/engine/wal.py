"""Write-ahead log.

Every data modification, transaction outcome, and 2PC state change is
appended here before it is considered durable. The WAL supports:

- crash recovery: :meth:`WriteAheadLog.records` are replayed on restart,
  restoring committed data *and prepared transactions* (the property §3.7.2
  of the paper relies on: "PostgreSQL implements commands to prepare the
  state of a transaction in a way that ... survives restarts and recovery");
- named restore points (§3.9): Citus creates a *consistent restore point*
  across all nodes; restoring each node's WAL to the same named point yields
  a cluster where every 2PC either committed everywhere or is recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Record types
INSERT = "insert"
UPDATE = "update"
DELETE = "delete"
COMMIT = "commit"
ABORT = "abort"
PREPARE = "prepare"
COMMIT_PREPARED = "commit_prepared"
ABORT_PREPARED = "abort_prepared"
CHECKPOINT = "checkpoint"
RESTORE_POINT = "restore_point"
DDL = "ddl"


@dataclass
class WalRecord:
    lsn: int
    xid: int
    kind: str
    payload: dict = field(default_factory=dict)


class WriteAheadLog:
    """An append-only, in-memory WAL with byte accounting for the perf model."""

    def __init__(self):
        self._records: list[WalRecord] = []
        self._next_lsn = 1
        self.bytes_written = 0

    def append(self, xid: int, kind: str, payload: dict | None = None) -> WalRecord:
        record = WalRecord(self._next_lsn, xid, kind, payload or {})
        self._next_lsn += 1
        self._records.append(record)
        self.bytes_written += 64 + _payload_size(record.payload)
        return record

    @property
    def records(self) -> list[WalRecord]:
        return self._records

    @property
    def current_lsn(self) -> int:
        return self._next_lsn - 1

    def create_restore_point(self, name: str) -> int:
        """Write a named restore point; returns its LSN."""
        return self.append(0, RESTORE_POINT, {"name": name}).lsn

    def find_restore_point(self, name: str) -> int | None:
        """LSN of the most recent restore point with the given name."""
        for record in reversed(self._records):
            if record.kind == RESTORE_POINT and record.payload.get("name") == name:
                return record.lsn
        return None

    def records_until(self, lsn: int) -> list[WalRecord]:
        return [r for r in self._records if r.lsn <= lsn]

    def clone(self) -> "WriteAheadLog":
        """Snapshot the WAL (used for standby replication and backups)."""
        copy = WriteAheadLog()
        copy._records = list(self._records)
        copy._next_lsn = self._next_lsn
        copy.bytes_written = self.bytes_written
        return copy


def _payload_size(payload: dict) -> int:
    size = 0
    for value in payload.values():
        if isinstance(value, str):
            size += len(value)
        elif isinstance(value, (list, tuple)):
            size += 8 * len(value)
        else:
            size += 8
    return size
