"""A small bounded LRU mapping shared by the engine's hot-path caches.

Used by the statement cache, the LIKE-pattern regex cache, the compiled
expression cache, and the distributed plan cache. Eviction is one entry
at a time (least recently used first), so a full cache never causes the
latency cliff of a wholesale ``dict.clear()``.

Relies on dict insertion order: a ``pop`` + reinsert moves an entry to
the most-recently-used position, and ``next(iter(...))`` is the least
recently used entry.
"""

from __future__ import annotations


class LRUCache:
    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._data: dict = {}

    def get(self, key, default=None):
        data = self._data
        try:
            value = data.pop(key)
        except KeyError:
            return default
        data[key] = value
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.capacity:
            del data[next(iter(data))]
        data[key] = value

    def delete(self, key) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data
