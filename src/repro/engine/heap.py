"""Heap storage: MVCC tuple versions, page accounting, dead tuples, vacuum.

A :class:`Heap` stores all versions of all rows of one table (or one shard —
shards are just tables named ``<table>_<shardid>``). Each logical row keeps
a stable ``row_id`` across UPDATE version chains, which is what row-level
locks attach to.

Page accounting feeds the performance model: the paper's benchmarks hinge
on whether the working set fits in memory, so the heap tracks an estimated
on-disk size from row widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .datum import to_text
from .mvcc import CommitLog, HeapTupleHeader, Snapshot, tuple_visible

PAGE_SIZE = 8192
TUPLE_OVERHEAD = 28  # header bytes per tuple, roughly PostgreSQL's


@dataclass
class HeapTuple:
    tid: int
    row_id: int
    values: list
    header: HeapTupleHeader

    def width(self) -> int:
        return TUPLE_OVERHEAD + sum(_value_width(v) for v in self.values)


def _value_width(value) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 4
    if isinstance(value, (dict, list)):
        return len(to_text(value)) + 8
    return 16


class Heap:
    """All tuple versions of one table, in insertion order."""

    def __init__(self, name: str):
        self.name = name
        self.tuples: list[HeapTuple] = []
        self._by_tid: dict[int, HeapTuple] = {}
        self._next_tid = 1
        self._next_row_id = 1
        self.live_bytes = 0
        self.dead_bytes = 0
        self.dead_tuples = 0

    # ------------------------------------------------------------- writes

    def insert(self, values: list, xmin: int, row_id: int | None = None) -> HeapTuple:
        if row_id is None:
            row_id = self._next_row_id
            self._next_row_id += 1
        tup = HeapTuple(self._next_tid, row_id, list(values), HeapTupleHeader(xmin))
        self._next_tid += 1
        self.tuples.append(tup)
        self._by_tid[tup.tid] = tup
        self.live_bytes += tup.width()
        return tup

    def mark_deleted(self, tid: int, xmax: int) -> HeapTuple:
        tup = self._by_tid[tid]
        tup.header.xmax = xmax
        return tup

    def unmark_deleted(self, tid: int) -> None:
        """Roll back a delete mark (aborting xmax is enough for MVCC, but
        clearing keeps the heap tidy for inspection)."""
        tup = self._by_tid.get(tid)
        if tup is not None:
            tup.header.xmax = None

    def get(self, tid: int) -> HeapTuple | None:
        return self._by_tid.get(tid)

    # -------------------------------------------------------------- reads

    def scan(self, snapshot: Snapshot, clog: CommitLog):
        """Yield tuples visible to the snapshot."""
        for tup in self.tuples:
            if tuple_visible(tup.header, snapshot, clog):
                yield tup

    def latest_version(self, row_id: int, clog: CommitLog | None = None) -> HeapTuple | None:
        """The newest non-aborted version of a logical row (used by UPDATE
        re-checks after lock waits). Versions inserted by aborted
        transactions are skipped — they are not part of the live chain."""
        from .mvcc import ABORTED

        newest = None
        for tup in self.tuples:
            if tup.row_id != row_id:
                continue
            if clog is not None and clog.status(tup.header.xmin) == ABORTED:
                continue
            newest = tup
        return newest

    # ------------------------------------------------------------- vacuum

    def vacuum(self, oldest_active_xid: int, clog: CommitLog) -> int:
        """Remove tuple versions no transaction can see anymore.

        Mirrors PostgreSQL autovacuum: a version is dead when its xmax
        committed before the oldest active xid, or its xmin aborted.
        Returns the number of versions reclaimed.
        """
        from .mvcc import ABORTED, COMMITTED

        keep: list[HeapTuple] = []
        removed = 0
        for tup in self.tuples:
            xmin_status = clog.status(tup.header.xmin)
            dead = False
            if xmin_status == ABORTED:
                dead = True
            elif tup.header.xmax is not None:
                xmax_status = clog.status(tup.header.xmax)
                if xmax_status == COMMITTED and tup.header.xmax < oldest_active_xid:
                    dead = True
            if dead:
                removed += 1
                width = tup.width()
                self.live_bytes -= width
                del self._by_tid[tup.tid]
            else:
                keep.append(tup)
        self.tuples = keep
        self.dead_tuples = 0
        self.dead_bytes = 0
        return removed

    def note_dead(self, tup: HeapTuple) -> None:
        self.dead_tuples += 1
        self.dead_bytes += tup.width()

    # ---------------------------------------------------------- statistics

    @property
    def total_bytes(self) -> int:
        return max(self.live_bytes, 0)

    @property
    def page_count(self) -> int:
        return max(1, (self.total_bytes + PAGE_SIZE - 1) // PAGE_SIZE)

    def visible_count(self, snapshot: Snapshot, clog: CommitLog) -> int:
        return sum(1 for _ in self.scan(snapshot, clog))
