"""Index access methods: B-tree and GIN (trigram).

Indexes map key values to heap TIDs. They are *not* MVCC-aware — like
PostgreSQL, they may return TIDs of invisible tuple versions; the executor
rechecks visibility (and for GIN, rechecks the predicate) against the heap.

The GIN index models ``pg_trgm``'s ``gin_trgm_ops``: the indexed expression
is rendered to text, split into trigrams, and each trigram maps to the set
of TIDs containing it. An ``ILIKE '%needle%'`` probe intersects the TID
sets of the needle's trigrams — the same containment-with-recheck strategy
PostgreSQL uses for Figure 7(b)'s dashboard query.
"""

from __future__ import annotations

import bisect
from collections import defaultdict

from .datum import sort_key, to_text


class BTreeIndex:
    """Sorted (key, tid) pairs with bisect-based range scans.

    Multi-column keys are tuples; ordering uses :func:`sort_key` per column
    so heterogeneous values order consistently with the executor's ORDER BY.
    """

    def __init__(self, n_columns: int):
        self.n_columns = n_columns
        self._entries: list[tuple[tuple, int]] = []  # (sortable_key, tid)
        self._keys: list[tuple] = []  # parallel array for bisect

    @staticmethod
    def make_key(values) -> tuple:
        return tuple(sort_key(v) for v in values)

    def insert(self, values, tid: int) -> None:
        key = self.make_key(values)
        pos = bisect.bisect_left(self._keys, key)
        # Keep equal keys ordered by tid for determinism.
        while pos < len(self._keys) and self._keys[pos] == key and self._entries[pos][1] < tid:
            pos += 1
        self._keys.insert(pos, key)
        self._entries.insert(pos, (key, tid))

    def delete(self, values, tid: int) -> None:
        key = self.make_key(values)
        pos = bisect.bisect_left(self._keys, key)
        while pos < len(self._keys) and self._keys[pos] == key:
            if self._entries[pos][1] == tid:
                del self._keys[pos]
                del self._entries[pos]
                return
            pos += 1

    def scan_equal(self, values) -> list[int]:
        """TIDs whose leading columns equal ``values`` (may be a prefix)."""
        prefix = self.make_key(values)
        lo = bisect.bisect_left(self._keys, prefix)
        tids = []
        for i in range(lo, len(self._keys)):
            if self._keys[i][: len(prefix)] != prefix:
                break
            tids.append(self._entries[i][1])
        return tids

    def scan_range(self, low=None, high=None, low_inclusive=True, high_inclusive=True) -> list[int]:
        """TIDs with leading-column key in [low, high] (single-column ranges)."""
        low_key = sort_key(low) if low is not None else None
        high_key = sort_key(high) if high is not None else None
        lo = bisect.bisect_left(self._keys, (low_key,)) if low_key is not None else 0
        tids = []
        for i in range(lo, len(self._keys)):
            first = self._keys[i][0]
            if high_key is not None:
                beyond = first > high_key if high_inclusive else first >= high_key
                if beyond:
                    break
            if low_key is not None and not low_inclusive and first == low_key:
                continue
            tids.append(self._entries[i][1])
        return tids

    def scan_all(self) -> list[int]:
        """All TIDs in key order (index-only-scan ordering)."""
        return [tid for _, tid in self._entries]

    def __len__(self) -> int:
        return len(self._entries)


def trigrams(text: str) -> set[str]:
    """pg_trgm-style trigram extraction (lower-cased, space-padded words)."""
    grams: set[str] = set()
    for word in text.lower().split():
        padded = "  " + word + " "
        for i in range(len(padded) - 2):
            grams.add(padded[i : i + 3])
    return grams


class GinIndex:
    """Inverted index: trigram -> set of TIDs. Rechecks happen at the heap."""

    def __init__(self):
        self._postings: dict[str, set[int]] = defaultdict(set)
        self._tid_keys: dict[int, set[str]] = {}
        self.entry_count = 0

    def insert(self, value, tid: int) -> None:
        grams = trigrams(to_text(value)) if value is not None else set()
        self._tid_keys[tid] = grams
        for gram in grams:
            self._postings[gram].add(tid)
        self.entry_count += len(grams)

    def delete(self, value, tid: int) -> None:
        for gram in self._tid_keys.pop(tid, set()):
            postings = self._postings.get(gram)
            if postings:
                postings.discard(tid)
                self.entry_count -= 1

    def search_substring(self, needle: str) -> set[int] | None:
        """Candidate TIDs that may contain ``needle`` (ILIKE '%needle%').

        Returns None when the needle is too short to extract trigrams from
        (the planner must fall back to a sequential scan, as PostgreSQL does).
        """
        grams = _substring_trigrams(needle)
        if not grams:
            return None
        result: set[int] | None = None
        for gram in grams:
            postings = self._postings.get(gram, set())
            result = set(postings) if result is None else (result & postings)
            if not result:
                return set()
        return result if result is not None else set()


def _substring_trigrams(needle: str) -> set[str]:
    """Trigrams fully contained in any match of %needle% (no padding —
    we don't know the match boundaries)."""
    grams: set[str] = set()
    for word in needle.lower().split():
        if len(word) < 3:
            continue
        for i in range(len(word) - 2):
            grams.add(word[i : i + 3])
    return grams
