"""Built-in SQL functions and aggregates.

Aggregates implement the two-phase protocol that distributed aggregation
needs (§3.5 / §5: "calculating partial aggregates on the worker nodes and
merging the partial aggregates on the coordinator"): every aggregate has an
``accumulate`` step, a ``partial`` serialization, and a ``merge`` step. The
logical pushdown planner rewrites ``avg(x)`` on the coordinator into
``avg_partial(x)`` on the workers plus ``avg_merge(partial)`` on top.

Scalar functions include the jsonb toolbox used by the paper's real-time
analytics benchmark (``jsonb_path_query_array`` with ``$.a.b[*].c`` paths,
``jsonb_array_length``) and a HyperLogLog-style distinct-count aggregate
(``approx_count_distinct``) standing in for the ``hll`` extension VeniceDB
uses.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import math
import re
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import DataError
from .datum import cast_value, compare_values, hash_value, to_text

# --------------------------------------------------------------------------
# Aggregates
# --------------------------------------------------------------------------


@dataclass
class Aggregate:
    name: str
    init: Callable[[], object]
    accumulate: Callable  # (state, value) -> state ; count(*) passes _STAR
    finalize: Callable[[object], object]
    # Distributed protocol:
    partial: Callable[[object], object]  # state -> shippable partial value
    merge: Callable[[object, object], object]  # (state, partial) -> state
    # Name of the aggregate the *coordinator* applies over worker partials.
    merge_name: Optional[str] = None


_STAR = object()


def _count_init():
    return 0


def _sum_init():
    return None


def _avg_init():
    return [None, 0]  # [sum, count]


def _minmax_init():
    return None


def _identity(state):
    return state


AGGREGATES: dict[str, Aggregate] = {}


def _register_agg(agg: Aggregate) -> None:
    AGGREGATES[agg.name] = agg


_register_agg(
    Aggregate(
        "count",
        _count_init,
        lambda s, v: s + (1 if v is _STAR or v is not None else 0),
        _identity,
        _identity,
        lambda s, p: s + (p or 0),
        merge_name="sum",
    )
)


def _sum_accum(state, value):
    if value is None:
        return state
    return value if state is None else state + value


_register_agg(
    Aggregate("sum", _sum_init, _sum_accum, _identity, _identity, _sum_accum, merge_name="sum")
)


def _avg_accum(state, value):
    if value is None:
        return state
    total, count = state
    return [value if total is None else total + value, count + 1]


def _avg_final(state):
    total, count = state
    if count == 0 or total is None:
        return None
    return total / count


def _avg_merge(state, part):
    if part is None:
        return state
    total, count = state
    ptotal, pcount = part
    if ptotal is not None:
        total = ptotal if total is None else total + ptotal
    return [total, count + pcount]


_register_agg(Aggregate("avg", _avg_init, _avg_accum, _avg_final, _identity, _avg_merge,
                        merge_name="avg_merge"))
_register_agg(Aggregate("avg_partial", _avg_init, _avg_accum, _identity, _identity, _avg_merge))
_register_agg(
    Aggregate(
        "avg_merge",
        _avg_init,
        lambda s, part: _avg_merge(s, part),
        _avg_final,
        _identity,
        _avg_merge,
    )
)


def _min_accum(state, value):
    if value is None:
        return state
    if state is None or compare_values(value, state) < 0:
        return value
    return state


def _max_accum(state, value):
    if value is None:
        return state
    if state is None or compare_values(value, state) > 0:
        return value
    return state


_register_agg(Aggregate("min", _minmax_init, _min_accum, _identity, _identity, _min_accum,
                        merge_name="min"))
_register_agg(Aggregate("max", _minmax_init, _max_accum, _identity, _identity, _max_accum,
                        merge_name="max"))


def _array_agg_accum(state, value):
    state = state or []
    state.append(value)
    return state


_register_agg(
    Aggregate(
        "array_agg",
        lambda: None,
        _array_agg_accum,
        lambda s: s,
        lambda s: s,
        lambda s, p: (s or []) + (p or []),
        merge_name="array_cat_agg",
    )
)
_register_agg(
    Aggregate(
        "array_cat_agg",
        lambda: None,
        lambda s, p: (s or []) + (p or []),
        lambda s: s,
        lambda s: s,
        lambda s, p: (s or []) + (p or []),
    )
)
_register_agg(
    Aggregate(
        "jsonb_agg",
        lambda: None,
        _array_agg_accum,
        lambda s: s or [],
        lambda s: s,
        lambda s, p: (s or []) + (p or []),
        merge_name="array_cat_agg",
    )
)


def _string_agg_init():
    return None


def _string_agg_accum(state, value, sep=","):
    if value is None:
        return state
    return to_text(value) if state is None else state + sep + to_text(value)


_register_agg(
    Aggregate(
        "string_agg",
        _string_agg_init,
        _string_agg_accum,
        _identity,
        _identity,
        lambda s, p, sep=",": p if s is None else (s if p is None else s + sep + p),
    )
)


def _stddev_init():
    return [0, 0.0, 0.0]  # n, sum, sum of squares


def _stddev_accum(state, value):
    if value is None:
        return state
    n, s, s2 = state
    return [n + 1, s + value, s2 + value * value]


def _stddev_final(state):
    n, s, s2 = state
    if n < 2:
        return None
    var = (s2 - s * s / n) / (n - 1)
    return math.sqrt(max(var, 0.0))


def _stddev_merge(state, part):
    if part is None:
        return state
    return [state[0] + part[0], state[1] + part[1], state[2] + part[2]]


_register_agg(Aggregate("stddev", _stddev_init, _stddev_accum, _stddev_final, _identity,
                        _stddev_merge, merge_name="stddev_merge"))
_register_agg(Aggregate("stddev_partial", _stddev_init, _stddev_accum, _identity, _identity,
                        _stddev_merge))
_register_agg(
    Aggregate(
        "stddev_merge",
        _stddev_init,
        lambda s, p: _stddev_merge(s, p),
        _stddev_final,
        _identity,
        _stddev_merge,
    )
)

# HyperLogLog-flavoured approximate distinct count (stands in for the hll
# extension mentioned in the VeniceDB case study). State: dict of register
# index -> max leading-zero rank, 2^b registers.

_HLL_BITS = 10
_HLL_REGISTERS = 1 << _HLL_BITS


def _hll_init():
    return {}


def _hll_accum(state, value):
    if value is None:
        return state
    h = hash_value(value) & 0xFFFFFFFF
    # Remix: the crc-based shard hash isn't uniform enough in its low bits
    # for leading-zero counting; a multiplicative finalizer fixes the bias.
    h = (h * 0x9E3779B1 + 0x85EBCA6B) & 0xFFFFFFFF
    register = h >> (32 - _HLL_BITS)
    tail = h & ((1 << (32 - _HLL_BITS)) - 1)
    rank = (32 - _HLL_BITS) - tail.bit_length() + 1
    if state.get(register, 0) < rank:
        state[register] = rank
    return state


def _hll_final(state):
    m = _HLL_REGISTERS
    alpha = 0.7213 / (1 + 1.079 / m)
    total = sum(2.0 ** -state.get(i, 0) for i in range(m))
    estimate = alpha * m * m / total
    zeros = m - len(state)
    if estimate <= 2.5 * m and zeros:
        estimate = m * math.log(m / zeros)
    return int(round(estimate))


def _hll_merge(state, part):
    if not part:
        return state
    for register, rank in part.items():
        register = int(register)
        if state.get(register, 0) < rank:
            state[register] = rank
    return state


def _hll_partial(state):
    return {str(k): v for k, v in state.items()}  # json-safe keys


_register_agg(Aggregate("approx_count_distinct", _hll_init, _hll_accum, _hll_final, _hll_partial,
                        _hll_merge, merge_name="approx_merge"))
_register_agg(Aggregate("approx_partial", _hll_init, _hll_accum, _hll_partial, _hll_partial,
                        _hll_merge))
_register_agg(
    Aggregate(
        "approx_merge",
        _hll_init,
        lambda s, p: _hll_merge(s, p),
        _hll_final,
        _hll_partial,
        _hll_merge,
    )
)

_register_agg(
    Aggregate(
        "bool_and",
        lambda: None,
        lambda s, v: s if v is None else (v if s is None else s and v),
        _identity,
        _identity,
        lambda s, p: s if p is None else (p if s is None else s and p),
        merge_name="bool_and",
    )
)
_register_agg(
    Aggregate(
        "bool_or",
        lambda: None,
        lambda s, v: s if v is None else (v if s is None else s or v),
        _identity,
        _identity,
        lambda s, p: s if p is None else (p if s is None else s or p),
        merge_name="bool_or",
    )
)


def is_aggregate(name: str) -> bool:
    return name.lower() in AGGREGATES


def get_aggregate(name: str) -> Aggregate:
    agg = AGGREGATES.get(name.lower())
    if agg is None:
        raise DataError(f"unknown aggregate {name!r}")
    return agg


# The worker-side rewrite for distributed two-phase aggregation:
# coordinator aggregate name -> (worker aggregate name, coordinator merge name)
PARTIAL_REWRITES = {
    "count": ("count", "sum"),
    "sum": ("sum", "sum"),
    "min": ("min", "min"),
    "max": ("max", "max"),
    "avg": ("avg_partial", "avg_merge"),
    "stddev": ("stddev_partial", "stddev_merge"),
    "array_agg": ("array_agg", "array_cat_agg"),
    "jsonb_agg": ("jsonb_agg", "array_cat_agg"),
    "bool_and": ("bool_and", "bool_and"),
    "bool_or": ("bool_or", "bool_or"),
    "approx_count_distinct": ("approx_partial", "approx_merge"),
}


# --------------------------------------------------------------------------
# Scalar functions
# --------------------------------------------------------------------------


def _jsonb_path(value, path: str) -> list:
    """Evaluate a simple SQL/JSON path like ``$.payload.commits[*].message``.

    Returns the list of matched values (jsonb_path_query_array semantics).
    """
    steps = _parse_json_path(path)
    current = [value]
    for step in steps:
        nxt = []
        for item in current:
            if step == "[*]":
                if isinstance(item, list):
                    nxt.extend(item)
            elif isinstance(step, int):
                if isinstance(item, list) and -len(item) <= step < len(item):
                    nxt.append(item[step])
            else:
                if isinstance(item, dict) and step in item:
                    nxt.append(item[step])
        current = nxt
    return current


_PATH_TOKEN = re.compile(r"\.([A-Za-z_][A-Za-z0-9_]*)|\[(\*|\d+)\]")


def _parse_json_path(path: str) -> list:
    path = path.strip()
    if path.startswith("$"):
        path = path[1:]
    steps = []
    for match in _PATH_TOKEN.finditer(path):
        if match.group(1) is not None:
            steps.append(match.group(1))
        else:
            token = match.group(2)
            steps.append("[*]" if token == "*" else int(token))
    return steps


def _substring(text, start=None, length=None):
    if text is None:
        return None
    s = to_text(text)
    start = 1 if start is None else int(start)
    begin = max(start - 1, 0)
    if length is None:
        return s[begin:]
    return s[begin : begin + int(length)]


def _date_trunc(field, value):
    value = cast_value(value, "timestamp")
    if value is None:
        return None
    field = str(field).lower()
    if field == "year":
        return value.replace(month=1, day=1, hour=0, minute=0, second=0, microsecond=0)
    if field == "month":
        return value.replace(day=1, hour=0, minute=0, second=0, microsecond=0)
    if field == "week":
        start = value - _dt.timedelta(days=value.weekday())
        return start.replace(hour=0, minute=0, second=0, microsecond=0)
    if field == "day":
        return value.replace(hour=0, minute=0, second=0, microsecond=0)
    if field == "hour":
        return value.replace(minute=0, second=0, microsecond=0)
    if field == "minute":
        return value.replace(second=0, microsecond=0)
    if field == "second":
        return value.replace(microsecond=0)
    raise DataError(f"unsupported date_trunc field {field!r}")


def _extract(field, value):
    field = str(field).lower()
    if isinstance(value, _dt.timedelta):
        if field == "epoch":
            return value.total_seconds()
        if field == "day":
            return float(value.days)
        raise DataError(f"unsupported extract field {field!r} for interval")
    value = cast_value(value, "timestamp")
    if value is None:
        return None
    mapping = {
        "year": value.year,
        "month": value.month,
        "day": value.day,
        "hour": value.hour,
        "minute": value.minute,
        "second": value.second,
        "dow": (value.weekday() + 1) % 7,
        "doy": value.timetuple().tm_yday,
        "epoch": value.timestamp() if value.tzinfo else value.replace(
            tzinfo=_dt.timezone.utc
        ).timestamp(),
        "quarter": (value.month - 1) // 3 + 1,
    }
    if field not in mapping:
        raise DataError(f"unsupported extract field {field!r}")
    return float(mapping[field])


_INTERVAL_RE = re.compile(r"(-?\d+(?:\.\d+)?)\s*(\w+)")

_INTERVAL_UNITS = {
    "us": 1e-6, "microsecond": 1e-6, "microseconds": 1e-6,
    "ms": 1e-3, "millisecond": 1e-3, "milliseconds": 1e-3,
    "s": 1, "sec": 1, "secs": 1, "second": 1, "seconds": 1,
    "min": 60, "mins": 60, "minute": 60, "minutes": 60,
    "h": 3600, "hour": 3600, "hours": 3600,
    "d": 86400, "day": 86400, "days": 86400,
    "week": 604800, "weeks": 604800,
    "mon": 2592000, "month": 2592000, "months": 2592000,
    "year": 31536000, "years": 31536000,
}


def _interval(spec) -> _dt.timedelta:
    total = 0.0
    for number, unit in _INTERVAL_RE.findall(str(spec)):
        scale = _INTERVAL_UNITS.get(unit.lower())
        if scale is None:
            raise DataError(f"unknown interval unit {unit!r}")
        total += float(number) * scale
    return _dt.timedelta(seconds=total)


def _split_part(text, delimiter, n):
    if text is None:
        return None
    parts = to_text(text).split(to_text(delimiter))
    index = int(n) - 1
    return parts[index] if 0 <= index < len(parts) else ""


def _any_all(left, op, kind, array):
    """expr op ANY/ALL (array)."""
    if array is None:
        return None
    results = [_apply_cmp(op, left, item) for item in array]
    if kind == "any":
        if any(r is True for r in results):
            return True
        return None if any(r is None for r in results) else False
    if all(r is True for r in results):
        return True
    return None if any(r is None for r in results) else False


def _apply_cmp(op, a, b):
    if a is None or b is None:
        return None
    c = compare_values(a, b)
    return {
        "=": c == 0, "<>": c != 0, "<": c < 0, "<=": c <= 0, ">": c > 0, ">=": c >= 0
    }[op]


def _width_bucket(value, low, high, buckets):
    if value is None:
        return None
    if value < low:
        return 0
    if value >= high:
        return int(buckets) + 1
    return int((value - low) / (high - low) * buckets) + 1


SCALAR_FUNCTIONS: dict[str, Callable] = {
    # math
    "abs": lambda x: None if x is None else abs(x),
    "round": lambda x, n=0: None if x is None else round(x, int(n)) if n else float(round(x)),
    "floor": lambda x: None if x is None else float(math.floor(x)),
    "ceil": lambda x: None if x is None else float(math.ceil(x)),
    "ceiling": lambda x: None if x is None else float(math.ceil(x)),
    "mod": lambda a, b: None if a is None or b is None else a % b,
    "power": lambda a, b: None if a is None or b is None else float(a) ** float(b),
    "sqrt": lambda x: None if x is None else math.sqrt(x),
    "ln": lambda x: None if x is None else math.log(x),
    "log": lambda x: None if x is None else math.log10(x),
    "exp": lambda x: None if x is None else math.exp(x),
    "sign": lambda x: None if x is None else float((x > 0) - (x < 0)),
    "width_bucket": _width_bucket,
    "greatest": lambda *xs: max((x for x in xs if x is not None), default=None),
    "least": lambda *xs: min((x for x in xs if x is not None), default=None),
    # strings
    "lower": lambda s: None if s is None else to_text(s).lower(),
    "upper": lambda s: None if s is None else to_text(s).upper(),
    "length": lambda s: None if s is None else len(to_text(s)),
    "char_length": lambda s: None if s is None else len(to_text(s)),
    "substring": _substring,
    "substr": _substring,
    "left": lambda s, n: None if s is None else to_text(s)[: int(n)],
    "right": lambda s, n: None if s is None else to_text(s)[-int(n):] if int(n) else "",
    "concat": lambda *xs: "".join(to_text(x) for x in xs if x is not None),
    "md5": lambda s: None if s is None else hashlib.md5(to_text(s).encode()).hexdigest(),
    "trim": lambda s: None if s is None else to_text(s).strip(),
    "btrim": lambda s: None if s is None else to_text(s).strip(),
    "ltrim": lambda s: None if s is None else to_text(s).lstrip(),
    "rtrim": lambda s: None if s is None else to_text(s).rstrip(),
    "replace": lambda s, a, b: None if s is None else to_text(s).replace(to_text(a), to_text(b)),
    "repeat": lambda s, n: None if s is None else to_text(s) * int(n),
    "lpad": lambda s, n, fill=" ": None if s is None else to_text(s).rjust(int(n), to_text(fill))[: int(n)],
    "rpad": lambda s, n, fill=" ": None if s is None else to_text(s).ljust(int(n), to_text(fill))[: int(n)],
    "position": lambda sub, s: None if s is None else to_text(s).find(to_text(sub)) + 1,
    "strpos": lambda s, sub: None if s is None else to_text(s).find(to_text(sub)) + 1,
    "split_part": _split_part,
    "starts_with": lambda s, p: None if s is None else to_text(s).startswith(to_text(p)),
    "reverse": lambda s: None if s is None else to_text(s)[::-1],
    "ascii": lambda s: None if not s else ord(to_text(s)[0]),
    "chr": lambda n: None if n is None else chr(int(n)),
    "to_char": lambda v, fmt=None: to_text(v),
    "to_hex": lambda n: None if n is None else format(int(n), "x"),
    # date / time
    "date_trunc": _date_trunc,
    "extract": _extract,
    "date_part": lambda f, v: _extract(f, v),
    "interval": _interval,
    "make_date": lambda y, m, d: _dt.date(int(y), int(m), int(d)),
    "make_timestamp": lambda y, m, d, h=0, mi=0, s=0: _dt.datetime(
        int(y), int(m), int(d), int(h), int(mi), int(s)
    ),
    "age": lambda a, b: cast_value(a, "timestamp") - cast_value(b, "timestamp"),
    # jsonb
    "jsonb_array_length": lambda j: None if j is None else len(j) if isinstance(j, list) else 0,
    "jsonb_path_query_array": lambda j, p: _jsonb_path(j, to_text(p)),
    "jsonb_extract_path_text": lambda j, *ks: _jsonb_extract_text(j, ks),
    "jsonb_typeof": lambda j: {dict: "object", list: "array", str: "string", bool: "boolean",
                               int: "number", float: "number", type(None): "null"}.get(type(j)),
    "jsonb_build_object": lambda *kv: {to_text(kv[i]): kv[i + 1] for i in range(0, len(kv), 2)},
    "to_jsonb": lambda v: v,
    "jsonb_array_elements_text": lambda j: [to_text(x) for x in (j or [])],
    # misc
    "coalesce": lambda *xs: next((x for x in xs if x is not None), None),
    "nullif": lambda a, b: None if (a is not None and b is not None and compare_values(a, b) == 0) else a,
    "hashtext": hash_value,
    "hashint8": hash_value,
    "version": lambda: "PostgreSQL 13.2 (repro) with citus-repro 9.5",
    "array_length": lambda a, dim=1: None if a is None else len(a),
    "array_cat": lambda a, b: (a or []) + (b or []),
    "array_append": lambda a, v: (a or []) + [v],
    "array_position": lambda a, v: next(
        (i + 1 for i, x in enumerate(a or []) if x is not None and compare_values(x, v) == 0), None
    ),
    "unnest": lambda a: list(a or []),
    "num_nulls": lambda *xs: sum(1 for x in xs if x is None),
    "num_nonnulls": lambda *xs: sum(1 for x in xs if x is not None),
    # internal helpers produced by the parser
    "_any_all": _any_all,
    "_not_distinct": lambda a, b: (a is None and b is None)
    or (a is not None and b is not None and compare_values(a, b) == 0),
    "_subscript": lambda a, i: None
    if a is None or i is None or not isinstance(a, (list, str)) or not (1 <= int(i) <= len(a))
    else a[int(i) - 1],
}


def _jsonb_extract_text(j, keys):
    current = j
    for key in keys:
        if isinstance(current, dict):
            current = current.get(to_text(key))
        elif isinstance(current, list):
            try:
                current = current[int(key)]
            except (ValueError, IndexError):
                return None
        else:
            return None
    return to_text(current) if current is not None else None


# Set-returning functions usable in FROM.
def _generate_series(start, stop, step=1):
    if isinstance(start, _dt.datetime) or isinstance(start, _dt.date):
        start = cast_value(start, "timestamp")
        stop = cast_value(stop, "timestamp")
        delta = step if isinstance(step, _dt.timedelta) else _interval(step)
        out = []
        current = start
        while current <= stop:
            out.append(current)
            current = current + delta
        return out
    step = int(step)
    if step == 0:
        raise DataError("generate_series step must not be zero")
    values = []
    current = int(start)
    stop = int(stop)
    while (step > 0 and current <= stop) or (step < 0 and current >= stop):
        values.append(current)
        current += step
    return values


SET_RETURNING_FUNCTIONS: dict[str, Callable] = {
    "generate_series": _generate_series,
    "unnest": lambda a: list(a or []),
    "jsonb_array_elements": lambda j: list(j or []),
}
