"""Expression compilation.

:func:`get_compiled` turns an expression AST into a Python closure
``fn(ctx) -> value`` once, so the executor's per-row loops (WHERE filters,
projections, join quals) pay the tree walk and dispatch-table lookups a
single time per statement instead of once per row.

Semantics are identical to :func:`repro.engine.expr.evaluate` by
construction: every node kind either composes child closures around the
same primitives the interpreter uses (``apply_binary``, ``cast_value``,
``compare_values``) or — for context-dependent nodes such as volatile
functions, UDFs and subqueries — delegates to the interpreter's own
handler. ``evaluate`` remains the fallback for anything unknown.

Compiled closures are cached by expression identity in a bounded LRU; the
statement cache returns the same AST per SQL text, so a statement compiles
once across executions. Trivial nodes (literals, columns, parameters) are
compiled on the fly without caching — star expansion materializes fresh
``ColumnRef`` objects per statement and would churn the cache.
"""

from __future__ import annotations

from ..errors import DataError
from ..sql import ast as A
from .datum import cast_value, compare_values
from .expr import _func_call, _param, _subquery, apply_binary, evaluate
from .functions import SCALAR_FUNCTIONS, is_aggregate
from .lru import LRUCache

_COMPILE_CACHE = LRUCache(4096)
_compile_count = 0


def compile_count() -> int:
    """Number of (non-trivial) expressions compiled so far; exposed as the
    ``expr_compile_count`` statistic."""
    return _compile_count


def get_compiled(expr):
    """A closure ``fn(ctx)`` evaluating ``expr``; cached per AST object."""
    kind = type(expr)
    if kind is A.Literal:
        value = expr.value
        return lambda ctx: value
    if kind is A.ColumnRef:
        table, name = expr.table, expr.name
        return lambda ctx: ctx.lookup_column(table, name)
    if kind is A.Param:
        return lambda ctx: _param(expr, ctx)
    key = id(expr)
    memo = _COMPILE_CACHE.get(key)
    if memo is not None and memo[0] is expr:
        return memo[1]
    global _compile_count
    _compile_count += 1
    fn = _build(expr)
    # The strong reference to the AST keeps id(expr) from being recycled.
    _COMPILE_CACHE.put(key, (expr, fn))
    return fn


def _build(expr):
    builder = _BUILDERS.get(type(expr))
    if builder is None:
        # Unknown node: the interpreter raises the canonical error.
        return lambda ctx: evaluate(expr, ctx)
    return builder(expr)


# ---------------------------------------------------------------- builders


def _build_cast(node: A.Cast):
    operand = get_compiled(node.operand)
    type_name = node.type_name
    return lambda ctx: cast_value(operand(ctx), type_name)


def _build_is_null(node: A.IsNull):
    operand = get_compiled(node.operand)
    if node.negated:
        return lambda ctx: operand(ctx) is not None
    return lambda ctx: operand(ctx) is None


def _build_between(node: A.BetweenExpr):
    operand = get_compiled(node.operand)
    low = get_compiled(node.low)
    high = get_compiled(node.high)
    negated = node.negated

    def run(ctx):
        value = operand(ctx)
        lo = low(ctx)
        hi = high(ctx)
        if value is None or lo is None or hi is None:
            return None
        result = compare_values(value, lo) >= 0 and compare_values(value, hi) <= 0
        return (not result) if negated else result

    return run


def _build_in_list(node: A.InList):
    operand = get_compiled(node.operand)
    items = [get_compiled(item) for item in node.items]
    negated = node.negated

    def run(ctx):
        value = operand(ctx)
        if value is None:
            return None
        saw_null = False
        for item in items:
            iv = item(ctx)
            if iv is None:
                saw_null = True
            elif compare_values(value, iv) == 0:
                return not negated
        if saw_null:
            return None
        return negated

    return run


def _build_case(node: A.CaseExpr):
    whens = [(get_compiled(c), get_compiled(r)) for c, r in node.whens]
    else_fn = get_compiled(node.else_result) if node.else_result is not None else None
    if node.operand is not None:
        operand = get_compiled(node.operand)

        def run(ctx):
            value = operand(ctx)
            for cond, result in whens:
                cv = cond(ctx)
                if value is not None and cv is not None \
                        and compare_values(value, cv) == 0:
                    return result(ctx)
            return else_fn(ctx) if else_fn is not None else None

        return run

    def run(ctx):
        for cond, result in whens:
            if cond(ctx) is True:
                return result(ctx)
        return else_fn(ctx) if else_fn is not None else None

    return run


def _build_array(node: A.ArrayExpr):
    elements = [get_compiled(e) for e in node.elements]
    return lambda ctx: [e(ctx) for e in elements]


def _build_unary(node: A.UnaryOp):
    operand = get_compiled(node.operand)
    if node.op == "not":
        def run(ctx):
            value = operand(ctx)
            return None if value is None else (not value)
        return run
    if node.op == "-":
        def run(ctx):
            value = operand(ctx)
            return None if value is None else -value
        return run
    op = node.op

    def run(ctx):
        raise DataError(f"unknown unary operator {op!r}")

    return run


_COMPARISONS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def _build_binary(node: A.BinaryOp):
    op = node.op
    left = get_compiled(node.left)
    right = get_compiled(node.right)
    if op == "and":
        def run(ctx):
            lv = left(ctx)
            if lv is False:
                return False
            rv = right(ctx)
            if rv is False:
                return False
            return None if lv is None or rv is None else True
        return run
    if op == "or":
        def run(ctx):
            lv = left(ctx)
            if lv is True:
                return True
            rv = right(ctx)
            if rv is True:
                return True
            return None if lv is None or rv is None else False
        return run
    if op == "is":
        def run(ctx):
            lv = left(ctx)
            rv = right(ctx)
            return lv is rv if rv is None else lv == rv
        return run
    check = _COMPARISONS.get(op)
    if check is not None:
        def run(ctx):
            lv = left(ctx)
            rv = right(ctx)
            if lv is None or rv is None:
                return None
            return check(compare_values(lv, rv))
        return run

    def run(ctx):
        return apply_binary(op, left(ctx), right(ctx))

    return run


#: Function names whose results depend on the session / wall clock; they
#: go through the interpreter's handler to share its exact behaviour.
_SESSION_FNS = frozenset((
    "now", "current_timestamp", "localtimestamp", "current_date", "random",
    "nextval", "setval", "currval", "txid_current", "pg_backend_pid",
))


def _build_func_call(node: A.FuncCall):
    name = node.name.lower()
    if (
        node.over is not None
        or node.agg_phase is not None
        or node.distinct
        or node.order_by
        or node.filter is not None
        or is_aggregate(name)
        or name in _SESSION_FNS
        or name not in SCALAR_FUNCTIONS
    ):
        # Aggregates raise, session functions need the session, unknown
        # names may resolve to catalog UDFs per-call: all interpreter turf.
        return lambda ctx: _func_call(node, ctx)
    fn = SCALAR_FUNCTIONS[name]
    args = [get_compiled(a) for a in node.args]
    return lambda ctx: fn(*[a(ctx) for a in args])


def _build_subquery(node: A.SubqueryExpr):
    return lambda ctx: _subquery(node, ctx)


_BUILDERS = {
    A.Cast: _build_cast,
    A.IsNull: _build_is_null,
    A.BetweenExpr: _build_between,
    A.InList: _build_in_list,
    A.CaseExpr: _build_case,
    A.ArrayExpr: _build_array,
    A.UnaryOp: _build_unary,
    A.BinaryOp: _build_binary,
    A.FuncCall: _build_func_call,
    A.SubqueryExpr: _build_subquery,
}
