"""SQL value domain: types, casts, comparisons, and the sharding hash.

Values are represented as plain Python objects:

=============  =========================================
SQL type       Python representation
=============  =========================================
int/bigint     int
float/numeric  float
text/varchar   str
bool           bool
date           datetime.date
timestamp(tz)  datetime.datetime
jsonb          dict | list | str | int | float | bool | None
uuid           str
<type>[]       list
NULL           None
=============  =========================================

``hash_value`` is the deterministic 32-bit hash used for hash-partitioning
distributed tables (the stand-in for PostgreSQL's ``hashtext``/``hash_any``).
It is stable across processes and Python versions, which matters because
shard pruning on the coordinator and tuple routing during COPY must agree.
"""

from __future__ import annotations

import datetime as _dt
import json
import struct
import zlib

from ..errors import DataError

# Canonical type names. Aliases are folded into these during normalization.
INT = "int"
BIGINT = "bigint"
FLOAT = "float"
NUMERIC = "numeric"
TEXT = "text"
BOOL = "bool"
DATE = "date"
TIMESTAMP = "timestamp"
JSONB = "jsonb"
UUID = "uuid"

_ALIASES = {
    "integer": INT,
    "int4": INT,
    "int8": BIGINT,
    "smallint": INT,
    "serial": INT,
    "bigserial": BIGINT,
    "double precision": FLOAT,
    "real": FLOAT,
    "float8": FLOAT,
    "float4": FLOAT,
    "decimal": NUMERIC,
    "varchar": TEXT,
    "char": TEXT,
    "character varying": TEXT,
    "character": TEXT,
    "string": TEXT,
    "boolean": BOOL,
    "timestamptz": TIMESTAMP,
    "timestamp with time zone": TIMESTAMP,
    "timestamp without time zone": TIMESTAMP,
    "json": JSONB,
}

_HASHABLE_TYPES = (INT, BIGINT, FLOAT, NUMERIC, TEXT, BOOL, DATE, TIMESTAMP, UUID)

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1


def normalize_type(name: str) -> str:
    """Fold a SQL type name (possibly an alias, possibly with a length
    modifier like ``varchar(64)`` or an array suffix) to a canonical name."""
    name = name.strip().lower()
    is_array = name.endswith("[]")
    if is_array:
        name = name[:-2].strip()
    if "(" in name:
        name = name[: name.index("(")].strip()
    name = _ALIASES.get(name, name)
    return name + "[]" if is_array else name


def is_array_type(name: str) -> bool:
    return name.endswith("[]")


def is_hash_distributable(type_name: str) -> bool:
    """Whether a column of this type may be used as a hash distribution column."""
    return normalize_type(type_name) in _HASHABLE_TYPES


def cast_value(value, type_name: str):
    """Cast ``value`` to the given SQL type, mimicking PostgreSQL's input
    conversion. ``None`` passes through (SQL NULL is typeless)."""
    if value is None:
        return None
    t = normalize_type(type_name)
    if is_array_type(t):
        if not isinstance(value, list):
            raise DataError(f"cannot cast {value!r} to {t}")
        elem = t[:-2]
        return [cast_value(v, elem) for v in value]
    try:
        if t in (INT, BIGINT):
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                return int(round(value))
            return int(value)
        if t in (FLOAT, NUMERIC):
            return float(value)
        if t == TEXT:
            return to_text(value)
        if t == BOOL:
            return _cast_bool(value)
        if t == DATE:
            return _cast_date(value)
        if t == TIMESTAMP:
            return _cast_timestamp(value)
        if t == JSONB:
            if isinstance(value, str):
                return json.loads(value)
            return value
        if t == UUID:
            return str(value)
    except (ValueError, TypeError) as exc:
        raise DataError(f"invalid input for type {t}: {value!r}") from exc
    # Unknown type: pass through untouched (user-defined type).
    return value


def _cast_bool(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    if isinstance(value, str):
        v = value.strip().lower()
        if v in ("t", "true", "yes", "on", "1"):
            return True
        if v in ("f", "false", "no", "off", "0"):
            return False
    raise DataError(f"invalid input for type bool: {value!r}")


def _cast_date(value) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        return _dt.date.fromisoformat(value.strip()[:10])
    raise DataError(f"invalid input for type date: {value!r}")


def _cast_timestamp(value) -> _dt.datetime:
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        return _dt.datetime.fromisoformat(value.strip().replace("Z", "+00:00"))
    if isinstance(value, (int, float)):
        return _dt.datetime.utcfromtimestamp(value)
    raise DataError(f"invalid input for type timestamp: {value!r}")


def to_text(value) -> str:
    """Render a value the way PostgreSQL prints it in text output."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "t" if value else "f"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, default=str)
    if isinstance(value, (_dt.date, _dt.datetime)):
        return value.isoformat()
    return str(value)


_TYPE_ORDER = {bool: 0, int: 1, float: 1, str: 2}


def compare_values(a, b) -> int:
    """Three-way compare with SQL semantics for mixed numeric types.

    NULL ordering is handled by callers (comparison operators on NULL yield
    NULL; ORDER BY treats NULLs as largest, as PostgreSQL does by default).
    """
    if isinstance(a, bool) and isinstance(b, bool):
        return (a > b) - (a < b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return (a > b) - (a < b)
    if isinstance(a, (dict, list)) or isinstance(b, (dict, list)):
        sa, sb = to_text(a), to_text(b)
        return (sa > sb) - (sa < sb)
    if type(a) is not type(b):
        if isinstance(a, _dt.datetime) and isinstance(b, _dt.date):
            b = _dt.datetime(b.year, b.month, b.day)
        elif isinstance(b, _dt.datetime) and isinstance(a, _dt.date):
            a = _dt.datetime(a.year, a.month, a.day)
        else:
            sa, sb = to_text(a), to_text(b)
            return (sa > sb) - (sa < sb)
    try:
        return (a > b) - (a < b)
    except TypeError as exc:
        raise DataError(f"cannot compare {a!r} and {b!r}") from exc


def sort_key(value):
    """A key usable by ``sorted`` that matches ``compare_values`` ordering
    within a single column and places NULLs last."""
    if value is None:
        return (2, 0)
    if isinstance(value, bool):
        return (0, _TYPE_ORDER[bool], int(value))
    if isinstance(value, (int, float)):
        return (0, _TYPE_ORDER[int], float(value))
    if isinstance(value, _dt.datetime):
        return (0, 3, value.isoformat())
    if isinstance(value, _dt.date):
        return (0, 3, _dt.datetime(value.year, value.month, value.day).isoformat())
    return (0, 4, to_text(value))


def hash_value(value) -> int:
    """Deterministic 32-bit signed hash used for hash partitioning.

    This is the moral equivalent of PostgreSQL's ``hash_any``; the exact bit
    pattern differs, but the properties that matter are preserved: stable
    across processes, well-spread over the int32 range, and equal inputs of
    equivalent numeric types hash equally (so ``1::int`` and ``1::bigint``
    co-locate, as in PostgreSQL's cross-type hash opfamily).
    """
    data = _hash_bytes(value)
    h = zlib.crc32(data)
    # Mix a second round so short integer keys spread across the full range.
    h = zlib.crc32(struct.pack("<I", h), 0x9E3779B9)
    return h - 2**32 if h > _INT32_MAX else h


def _hash_bytes(value) -> bytes:
    if value is None:
        return b"\x00"
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, float):
        return b"i" + str(int(value)).encode() if value.is_integer() else b"f" + repr(value).encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, _dt.datetime):
        return b"t" + value.isoformat().encode()
    if isinstance(value, _dt.date):
        return b"d" + value.isoformat().encode()
    return b"j" + to_text(value).encode("utf-8")
