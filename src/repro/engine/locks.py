"""Multi-granularity lock manager with a wait-for graph.

Provides table-level lock modes (a condensed version of PostgreSQL's eight
modes) and row-level exclusive locks keyed by ``(table, row_id)``. Because
the simulation is single-threaded, a conflicting acquisition does not block
a thread: it raises :class:`WouldBlock` carrying the holder, and the session
layer decides to park the statement (async execution), run deadlock
detection, or surface a lock conflict. The wait-for graph built here is
exactly what the Citus distributed deadlock detector polls from each worker
(§3.7.3: "edges in their lock graph (process a waits for process b)").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError

# Table lock modes, weakest to strongest.
ACCESS_SHARE = "AccessShare"
ROW_SHARE = "RowShare"
ROW_EXCLUSIVE = "RowExclusive"
SHARE = "Share"
SHARE_ROW_EXCLUSIVE = "ShareRowExclusive"
EXCLUSIVE = "Exclusive"
ACCESS_EXCLUSIVE = "AccessExclusive"

_MODES = [
    ACCESS_SHARE,
    ROW_SHARE,
    ROW_EXCLUSIVE,
    SHARE,
    SHARE_ROW_EXCLUSIVE,
    EXCLUSIVE,
    ACCESS_EXCLUSIVE,
]
_LEVEL = {mode: i for i, mode in enumerate(_MODES)}

# conflicts[a] = set of modes that conflict with a (PostgreSQL's matrix,
# condensed to the modes we implement).
_CONFLICTS = {
    ACCESS_SHARE: {ACCESS_EXCLUSIVE},
    ROW_SHARE: {EXCLUSIVE, ACCESS_EXCLUSIVE},
    ROW_EXCLUSIVE: {SHARE, SHARE_ROW_EXCLUSIVE, EXCLUSIVE, ACCESS_EXCLUSIVE},
    SHARE: {ROW_EXCLUSIVE, SHARE_ROW_EXCLUSIVE, EXCLUSIVE, ACCESS_EXCLUSIVE},
    SHARE_ROW_EXCLUSIVE: {ROW_EXCLUSIVE, SHARE, SHARE_ROW_EXCLUSIVE, EXCLUSIVE, ACCESS_EXCLUSIVE},
    EXCLUSIVE: {ROW_SHARE, ROW_EXCLUSIVE, SHARE, SHARE_ROW_EXCLUSIVE, EXCLUSIVE, ACCESS_EXCLUSIVE},
    ACCESS_EXCLUSIVE: set(_MODES),
}


class WouldBlock(ReproError):
    """Internal signal: the lock is held in a conflicting mode.

    Not a user-facing error — the session layer catches it.
    """

    def __init__(self, key, holders: set[int], mode: str):
        super().__init__(f"lock {key} held by {sorted(holders)} (wanted {mode})")
        self.key = key
        self.holders = holders
        self.mode = mode


@dataclass
class _TableLock:
    holders: dict[int, str] = field(default_factory=dict)  # xid -> strongest mode


class LockManager:
    def __init__(self):
        self._table_locks: dict[str, _TableLock] = {}
        self._row_locks: dict[tuple, int] = {}  # (table, row_id) -> xid
        # xid -> set of xids it waits for (edges polled by the deadlock detector)
        self.wait_edges: dict[int, set[int]] = {}
        # xid -> the lock key it is waiting on (("table", name) or
        # ("row", table, row_id)); feeds the citus_lock_waits view.
        self.wait_keys: dict[int, tuple] = {}
        self._held_tables: dict[int, set[str]] = {}
        self._held_rows: dict[int, set[tuple]] = {}

    # ------------------------------------------------------------ tables

    def acquire_table(self, table: str, mode: str, xid: int) -> None:
        lock = self._table_locks.setdefault(table, _TableLock())
        current = lock.holders.get(xid)
        if current is not None and _LEVEL[current] >= _LEVEL[mode]:
            return
        conflicts = {
            other
            for other, held in lock.holders.items()
            if other != xid and (held in _CONFLICTS[mode] or mode in _CONFLICTS[held])
        }
        if conflicts:
            raise WouldBlock(("table", table), conflicts, mode)
        lock.holders[xid] = mode if current is None or _LEVEL[mode] > _LEVEL[current] else current
        self._held_tables.setdefault(xid, set()).add(table)

    # -------------------------------------------------------------- rows

    def acquire_row(self, table: str, row_id: int, xid: int) -> None:
        key = (table, row_id)
        holder = self._row_locks.get(key)
        if holder is not None and holder != xid:
            raise WouldBlock(("row",) + key, {holder}, "RowExclusive")
        self._row_locks[key] = xid
        self._held_rows.setdefault(xid, set()).add(key)

    def row_holder(self, table: str, row_id: int) -> int | None:
        return self._row_locks.get((table, row_id))

    # ----------------------------------------------------------- waiting

    def add_wait(self, waiter_xid: int, holder_xids: set[int],
                 key: tuple | None = None) -> None:
        self.wait_edges.setdefault(waiter_xid, set()).update(
            h for h in holder_xids if h != waiter_xid
        )
        if key is not None:
            self.wait_keys[waiter_xid] = key

    def clear_wait(self, waiter_xid: int) -> None:
        self.wait_edges.pop(waiter_xid, None)
        self.wait_keys.pop(waiter_xid, None)

    def wait_graph_edges(self) -> list[tuple[int, int]]:
        """Flattened (waiter, holder) edges — the payload workers return to
        the distributed deadlock detector."""
        return [
            (waiter, holder)
            for waiter, holders in self.wait_edges.items()
            for holder in holders
        ]

    def find_local_cycle(self) -> list[int] | None:
        """Detect a cycle in the local wait-for graph; returns the xids on
        the cycle or None. This is PostgreSQL's single-node deadlock check."""
        return find_cycle(self.wait_edges)

    # ------------------------------------------------------------ release

    def release_all(self, xid: int) -> None:
        for table in self._held_tables.pop(xid, ()):  # noqa: B007
            lock = self._table_locks.get(table)
            if lock:
                lock.holders.pop(xid, None)
                if not lock.holders:
                    self._table_locks.pop(table, None)
        for key in self._held_rows.pop(xid, ()):
            if self._row_locks.get(key) == xid:
                del self._row_locks[key]
        self.clear_wait(xid)
        # Nobody should keep waiting on a finished transaction.
        for holders in self.wait_edges.values():
            holders.discard(xid)

    def transfer(self, old_xid: int, new_xid: int) -> None:
        """Re-own all locks (used when a prepared transaction is recovered
        after a crash: PREPARE TRANSACTION preserves locks)."""
        for table in self._held_tables.pop(old_xid, set()).copy():
            lock = self._table_locks.setdefault(table, _TableLock())
            mode = lock.holders.pop(old_xid, ACCESS_SHARE)
            lock.holders[new_xid] = mode
            self._held_tables.setdefault(new_xid, set()).add(table)
        for key in self._held_rows.pop(old_xid, set()).copy():
            self._row_locks[key] = new_xid
            self._held_rows.setdefault(new_xid, set()).add(key)


def find_cycle(edges: dict[int, set[int]]) -> list[int] | None:
    """Find a cycle in a waiter→holder digraph; returns the cycle nodes."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    stack: list[int] = []

    def visit(node: int) -> list[int] | None:
        color[node] = GRAY
        stack.append(node)
        for nxt in edges.get(node, ()):  # noqa: B007
            c = color.get(nxt, WHITE)
            if c == GRAY:
                return stack[stack.index(nxt):]
            if c == WHITE:
                cycle = visit(nxt)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for start in list(edges):
        if color.get(start, WHITE) == WHITE:
            cycle = visit(start)
            if cycle is not None:
                return cycle
    return None
