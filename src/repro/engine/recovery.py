"""WAL replay: crash recovery and point-in-time restore.

The replay algorithm mirrors PostgreSQL redo at the logical level:

1. DDL records rebuild the catalog (they are only logged once committed —
   our DDL autocommits or is distributed under 2PC by the Citus layer).
2. Data records are buffered per transaction and applied when the
   transaction's COMMIT (or COMMIT PREPARED) record is reached.
3. Transactions that reached PREPARE but have no resolution record by end
   of log are restored *as prepared*: their effects are written with an
   in-doubt xid (invisible to snapshots), their row locks are re-acquired,
   and they appear in ``instance.prepared_txns`` for 2PC recovery (§3.7.2).
"""

from __future__ import annotations

from ..sql import parse
from .datum import cast_value
from .locks import LockManager
from .mvcc import XidManager
from .wal import WriteAheadLog


def replay_wal(instance, upto_lsn: int | None = None) -> None:
    from .catalog import Catalog
    from .instance import PreparedTransaction

    records = instance.wal.records if upto_lsn is None else instance.wal.records_until(upto_lsn)

    # Reset volatile state. The WAL object survives (it is the durable part).
    instance.catalog = Catalog()
    instance.xids = XidManager()
    instance.locks = LockManager()
    instance.prepared_txns = {}
    instance.sessions = []
    old_wal = instance.wal
    instance.wal = WriteAheadLog()  # suppress re-logging during replay
    instance.is_up = True

    # Re-register extension-provided objects (UDFs, hooks survive in the
    # registry because extensions are reinstalled by the caller; builtins
    # need nothing).
    pending: dict[int, list] = {}
    prepared_gids: dict[int, str] = {}
    resolved: dict[int, bool] = {}
    max_xid = 100

    session = instance.connect("wal_replay")
    try:
        for record in records:
            max_xid = max(max_xid, record.xid + 1)
            if record.kind == "ddl":
                for stmt in parse(record.payload["sql"]):
                    session._execute_utility(stmt, None, None)
            elif record.kind in ("insert", "update", "delete"):
                pending.setdefault(record.xid, []).append(record)
            elif record.kind == "commit":
                _apply_changes(instance, session, pending.pop(record.xid, []))
                resolved[record.xid] = True
            elif record.kind == "abort":
                pending.pop(record.xid, None)
                resolved[record.xid] = False
            elif record.kind == "prepare":
                prepared_gids[record.xid] = record.payload["gid"]
            elif record.kind == "commit_prepared":
                _apply_changes(instance, session, pending.pop(record.xid, []))
                prepared_gids.pop(record.xid, None)
                resolved[record.xid] = True
            elif record.kind == "abort_prepared":
                pending.pop(record.xid, None)
                prepared_gids.pop(record.xid, None)
                resolved[record.xid] = False

        # Unresolved prepared transactions: restore as prepared.
        instance.xids.next_xid = max_xid
        for xid, gid in prepared_gids.items():
            new_xid = _restore_prepared(instance, session, xid, pending.pop(xid, []), gid)
            instance.prepared_txns[gid] = PreparedTransaction(gid, new_xid, instance.name)
    finally:
        session.close()
        instance.wal = old_wal


def _apply_changes(instance, session, records) -> None:
    """Apply one committed transaction's data changes with a fresh xid."""
    if not records:
        return
    xid = instance.xids.allocate()
    _write_records(instance, records, xid)
    instance.xids.finish(xid, committed=True)


def _restore_prepared(instance, session, orig_xid: int, records, gid: str) -> int:
    xid = instance.xids.allocate()
    _write_records(instance, records, xid, lock_rows=True)
    instance.xids.mark_prepared(xid)
    return xid


def _write_records(instance, records, xid: int, lock_rows: bool = False) -> None:
    for record in records:
        table = instance.catalog.get_table(record.payload["table"])
        row_id = record.payload["row_id"]
        if record.kind == "insert":
            values = _cast_row(table, record.payload["values"])
            tup = table.heap.insert(values, xid, row_id=row_id)
            table.heap._next_row_id = max(table.heap._next_row_id, row_id + 1)
            _reindex(instance, table, tup)
        elif record.kind == "update":
            old = table.heap.latest_version(row_id)
            if old is not None:
                table.heap.mark_deleted(old.tid, xid)
            values = _cast_row(table, record.payload["values"])
            tup = table.heap.insert(values, xid, row_id=row_id)
            _reindex(instance, table, tup)
        elif record.kind == "delete":
            old = table.heap.latest_version(row_id)
            if old is not None:
                table.heap.mark_deleted(old.tid, xid)
        if lock_rows:
            instance.locks.acquire_row(table.name, row_id, xid)


def _cast_row(table, values) -> list:
    return [cast_value(v, col.type_name) for v, col in zip(values, table.columns)]


def _reindex(instance, table, tup) -> None:
    from .expr import EvalContext, Row, evaluate
    from .index import GinIndex

    names = table.column_names()
    for index in table.indexes.values():
        if index.data is None:
            continue
        row = Row()
        row.bind_row(table.name, names, tup.values)
        row.bind_row(None, names, tup.values)
        values = [evaluate(e, EvalContext(row=row)) for e in index.exprs]
        if isinstance(index.data, GinIndex):
            index.data.insert(values[0], tup.tid)
        else:
            index.data.insert(values, tup.tid)
