"""Expression evaluation.

An :class:`EvalContext` carries everything an expression can touch: the
current row's column bindings, query parameters, the executing session
(for volatile functions, sequences, UDFs), and a callback for executing
subqueries with the outer row visible (correlated subqueries).

NULL propagation follows SQL three-valued logic: comparison/arithmetic
operators yield NULL on NULL input; AND/OR implement Kleene logic.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import CatalogError, DataError
from ..sql import ast as A
from .datum import cast_value, compare_values, to_text
from .functions import SCALAR_FUNCTIONS, is_aggregate
from .lru import LRUCache


class BoundParams:
    """Parameter bindings for a cached distributed plan.

    A plan-cache template replaces the statement's literals with synthetic
    named parameters (``__c0``, ``__c1``, ...); at execution time the
    extracted constant values are merged with the user's positional or
    named parameters into one object that answers both ``$n`` and
    ``:name`` lookups.
    """

    __slots__ = ("positional", "named")

    def __init__(self, positional=None, named=None):
        self.positional = positional  # list/tuple or None
        self.named = named if named is not None else {}


class AmbiguousColumn(DataError):
    pass


class Row:
    """Column bindings for one input row.

    Stores qualified (``alias.col``) and unqualified (``col``) keys;
    an unqualified key bound from two different relations becomes
    ambiguous and raises on access, as PostgreSQL would.
    """

    __slots__ = ("qualified", "unqualified", "_ambiguous", "provenance")

    def __init__(self):
        self.qualified: dict[str, object] = {}
        self.unqualified: dict[str, object] = {}
        self._ambiguous: set[str] = set()
        # alias -> (table_name, row_id, tid) for rows scanned from base
        # tables; consumed by UPDATE / DELETE / SELECT FOR UPDATE.
        self.provenance: dict[str, tuple] = {}

    def bind(self, alias: str | None, name: str, value) -> None:
        if alias:
            self.qualified[f"{alias}.{name}"] = value
        if name in self.unqualified and alias:
            self._ambiguous.add(name)
        self.unqualified[name] = value

    def bind_row(self, alias: str | None, names: list[str], values: list) -> None:
        for name, value in zip(names, values):
            self.bind(alias, name, value)

    def merge(self, other: "Row") -> "Row":
        merged = Row()
        merged.qualified.update(self.qualified)
        merged.qualified.update(other.qualified)
        merged.unqualified.update(self.unqualified)
        merged._ambiguous |= self._ambiguous | other._ambiguous
        for name, value in other.unqualified.items():
            if name in self.unqualified:
                merged._ambiguous.add(name)
            merged.unqualified[name] = value
        merged.provenance.update(self.provenance)
        merged.provenance.update(other.provenance)
        return merged

    def lookup(self, table: str | None, name: str):
        if table:
            key = f"{table}.{name}"
            if key in self.qualified:
                return self.qualified[key]
            raise CatalogError(f"column {key!r} does not exist")
        if name in self.unqualified:
            if name in self._ambiguous:
                raise AmbiguousColumn(f"column reference {name!r} is ambiguous")
            return self.unqualified[name]
        raise CatalogError(f"column {name!r} does not exist")

    def has(self, table: str | None, name: str) -> bool:
        if table:
            return f"{table}.{name}" in self.qualified
        return name in self.unqualified


EMPTY_ROW = Row()


@dataclass
class EvalContext:
    row: Row = field(default_factory=Row)
    params: object = None  # list (for $n) or dict (for :name)
    session: object = None  # Session, for volatile functions / UDFs
    subquery_executor: Optional[Callable] = None  # (Select, EvalContext) -> rows
    outer: Optional["EvalContext"] = None

    def child(self, row: Row) -> "EvalContext":
        return EvalContext(row, self.params, self.session, self.subquery_executor, self)

    def lookup_column(self, table, name):
        ctx = self
        while ctx is not None:
            if ctx.row.has(table, name):
                return ctx.row.lookup(table, name)
            ctx = ctx.outer
        # Raise with the nearest scope's error message.
        return self.row.lookup(table, name)


def evaluate(expr, ctx: EvalContext):
    """Evaluate an expression AST node to a Python value."""
    handler = _EVAL.get(type(expr))
    if handler is None:
        raise DataError(f"cannot evaluate expression node {type(expr).__name__}")
    return handler(expr, ctx)


# ------------------------------------------------------------------ nodes


def _literal(node: A.Literal, ctx):
    return node.value


def _param(node: A.Param, ctx):
    params = ctx.params
    if type(params) is BoundParams:
        if node.index is not None:
            positional = params.positional
            if positional is None or node.index > len(positional):
                raise DataError(f"no value for parameter ${node.index}")
            return positional[node.index - 1]
        if node.name in params.named:
            return params.named[node.name]
        raise DataError(f"no value for parameter :{node.name}")
    if node.index is not None:
        if not isinstance(params, (list, tuple)) or node.index > len(params):
            raise DataError(f"no value for parameter ${node.index}")
        return params[node.index - 1]
    if not isinstance(params, dict) or node.name not in params:
        raise DataError(f"no value for parameter :{node.name}")
    return params[node.name]


def _column_ref(node: A.ColumnRef, ctx):
    return ctx.lookup_column(node.table, node.name)


def _cast(node: A.Cast, ctx):
    return cast_value(evaluate(node.operand, ctx), node.type_name)


def _is_null(node: A.IsNull, ctx):
    value = evaluate(node.operand, ctx)
    return (value is not None) if node.negated else (value is None)


def _between(node: A.BetweenExpr, ctx):
    value = evaluate(node.operand, ctx)
    low = evaluate(node.low, ctx)
    high = evaluate(node.high, ctx)
    if value is None or low is None or high is None:
        return None
    result = compare_values(value, low) >= 0 and compare_values(value, high) <= 0
    return (not result) if node.negated else result


def _in_list(node: A.InList, ctx):
    value = evaluate(node.operand, ctx)
    if value is None:
        return None
    saw_null = False
    for item in node.items:
        iv = evaluate(item, ctx)
        if iv is None:
            saw_null = True
        elif compare_values(value, iv) == 0:
            return not node.negated
    if saw_null:
        return None
    return node.negated


def _case(node: A.CaseExpr, ctx):
    if node.operand is not None:
        operand = evaluate(node.operand, ctx)
        for cond, result in node.whens:
            cv = evaluate(cond, ctx)
            if operand is not None and cv is not None and compare_values(operand, cv) == 0:
                return evaluate(result, ctx)
    else:
        for cond, result in node.whens:
            if evaluate(cond, ctx) is True:
                return evaluate(result, ctx)
    return evaluate(node.else_result, ctx) if node.else_result is not None else None


def _array(node: A.ArrayExpr, ctx):
    return [evaluate(e, ctx) for e in node.elements]


def _unary(node: A.UnaryOp, ctx):
    value = evaluate(node.operand, ctx)
    if node.op == "not":
        return None if value is None else (not value)
    if node.op == "-":
        return None if value is None else -value
    raise DataError(f"unknown unary operator {node.op!r}")


_LIKE_CACHE = LRUCache(4096)


def like_match(text: str, pattern: str, case_insensitive: bool) -> bool:
    key = (pattern, case_insensitive)
    regex = _LIKE_CACHE.get(key)
    if regex is None:
        # re.escape leaves % and _ untouched on modern Python; handle both
        # the escaped and bare spellings.
        escaped = (
            re.escape(pattern)
            .replace(r"\%", ".*").replace("%", ".*")
            .replace(r"\_", ".").replace("_", ".")
        )
        regex = re.compile("^" + escaped + "$", re.IGNORECASE | re.DOTALL if case_insensitive else re.DOTALL)
        _LIKE_CACHE.put(key, regex)
    return regex.match(text) is not None


def _binary(node: A.BinaryOp, ctx):
    op = node.op
    if op == "and":
        left = evaluate(node.left, ctx)
        if left is False:
            return False
        right = evaluate(node.right, ctx)
        if right is False:
            return False
        return None if left is None or right is None else True
    if op == "or":
        left = evaluate(node.left, ctx)
        if left is True:
            return True
        right = evaluate(node.right, ctx)
        if right is True:
            return True
        return None if left is None or right is None else False
    left = evaluate(node.left, ctx)
    if op == "is":
        right = evaluate(node.right, ctx)
        return left is right if right is None else left == right
    right = evaluate(node.right, ctx)
    return apply_binary(op, left, right)


def apply_binary(op: str, left, right):
    """Apply a (non-logical) binary operator with NULL propagation."""
    if op in ("->", "->>", "#>", "#>>"):
        return _json_op(op, left, right)
    if left is None or right is None:
        return None
    if op in ("=", "<>", "<", "<=", ">", ">="):
        c = compare_values(left, right)
        return {"=": c == 0, "<>": c != 0, "<": c < 0, "<=": c <= 0, ">": c > 0, ">=": c >= 0}[op]
    if op == "+":
        if isinstance(left, (_dt.date, _dt.datetime)) and isinstance(right, _dt.timedelta):
            return _as_ts(left) + right
        if isinstance(right, (_dt.date, _dt.datetime)) and isinstance(left, _dt.timedelta):
            return _as_ts(right) + left
        if isinstance(left, _dt.date) and isinstance(right, (int, float)):
            return left + _dt.timedelta(days=int(right))
        return left + right
    if op == "-":
        if isinstance(left, (_dt.date, _dt.datetime)) and isinstance(right, _dt.timedelta):
            return _as_ts(left) - right
        if isinstance(left, (_dt.date, _dt.datetime)) and isinstance(right, (_dt.date, _dt.datetime)):
            return _as_ts(left) - _as_ts(right)
        if isinstance(left, _dt.date) and isinstance(right, (int, float)):
            return left - _dt.timedelta(days=int(right))
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise DataError("division by zero")
        if isinstance(left, int) and isinstance(right, int) \
                and not isinstance(left, bool) and not isinstance(right, bool):
            # PostgreSQL integer division truncates toward zero.
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        return left / right
    if op == "%":
        if right == 0:
            raise DataError("division by zero")
        return left % right
    if op == "||":
        if isinstance(left, dict) and isinstance(right, dict):
            merged = dict(left)
            merged.update(right)
            return merged
        if isinstance(left, list) or isinstance(right, list):
            left_list = left if isinstance(left, list) else [left]
            right_list = right if isinstance(right, list) else [right]
            return left_list + right_list
        return to_text(left) + to_text(right)
    if op in ("like", "ilike"):
        return like_match(to_text(left), to_text(right), op == "ilike")
    if op in ("~", "~*"):
        flags = re.IGNORECASE if op == "~*" else 0
        return re.search(str(right), to_text(left), flags) is not None
    if op == "!~":
        return re.search(str(right), to_text(left)) is None
    if op == "@>":
        return _jsonb_contains(_coerce_json(left), _coerce_json(right))
    if op == "<@":
        return _jsonb_contains(_coerce_json(right), _coerce_json(left))
    raise DataError(f"unknown operator {op!r}")


def _as_ts(v):
    if isinstance(v, _dt.datetime):
        return v
    return _dt.datetime(v.year, v.month, v.day)


def _json_op(op, left, right):
    if left is None or right is None:
        return None
    if op in ("->", "->>"):
        result = None
        if isinstance(left, dict):
            result = left.get(to_text(right)) if not isinstance(right, int) else left.get(str(right))
        elif isinstance(left, list) and isinstance(right, int):
            if -len(left) <= right < len(left):
                result = left[right]
        if op == "->>":
            return to_text(result) if result is not None else None
        return result
    # #> / #>> : path as array of keys; PostgreSQL's '{a,b,c}' text-array
    # literal syntax is accepted too.
    if isinstance(right, str) and right.startswith("{") and right.endswith("}"):
        right = [k.strip() for k in right[1:-1].split(",")] if len(right) > 2 else []
    current = left
    for key in right if isinstance(right, list) else [right]:
        if isinstance(current, dict):
            current = current.get(to_text(key))
        elif isinstance(current, list):
            try:
                current = current[int(key)]
            except (ValueError, IndexError, TypeError):
                current = None
        else:
            current = None
        if current is None:
            break
    if op == "#>>":
        return to_text(current) if current is not None else None
    return current


def _coerce_json(value):
    """String operands of jsonb operators parse as jsonb (operator typing)."""
    if isinstance(value, str):
        import json

        try:
            return json.loads(value)
        except ValueError:
            return value
    return value


def _jsonb_contains(container, contained) -> bool:
    if isinstance(container, dict) and isinstance(contained, dict):
        return all(
            k in container and _jsonb_contains(container[k], v) for k, v in contained.items()
        )
    if isinstance(container, list):
        if isinstance(contained, list):
            return all(any(_jsonb_contains(c, item) for c in container) for item in contained)
        return any(_jsonb_contains(c, contained) for c in container)
    return container == contained


def _func_call(node: A.FuncCall, ctx):
    name = node.name.lower()
    if is_aggregate(name):
        raise DataError(f"aggregate function {name}() used outside of aggregation context")
    if name in ("now", "current_timestamp", "localtimestamp"):
        return _session_now(ctx)
    if name == "current_date":
        return _session_now(ctx).date()
    if name == "random":
        if ctx.session is not None:
            return ctx.session.rng.random()
        raise DataError("random() requires a session")
    if name in ("nextval", "setval", "currval"):
        return _sequence_fn(name, node, ctx)
    if name == "txid_current":
        return ctx.session.ensure_xid() if ctx.session else 0
    if name == "pg_backend_pid":
        return ctx.session.backend_pid if ctx.session else 0
    args = [evaluate(arg, ctx) for arg in node.args]
    fn = SCALAR_FUNCTIONS.get(name)
    if fn is not None:
        return fn(*args)
    # User-defined / extension function registered in the catalog.
    if ctx.session is not None:
        udf = ctx.session.instance.catalog.get_function(name)
        if udf is not None:
            return udf.fn(ctx.session, *args)
    raise CatalogError(f"function {name}() does not exist")


def _session_now(ctx):
    if ctx.session is not None:
        return ctx.session.now()
    return _dt.datetime(2021, 6, 20)  # deterministic default: SIGMOD'21 day one


def _sequence_fn(name, node, ctx):
    if ctx.session is None:
        raise DataError(f"{name}() requires a session")
    seq_name = evaluate(node.args[0], ctx)
    seq = ctx.session.instance.catalog.get_sequence(to_text(seq_name))
    if name == "nextval":
        return seq.nextval()
    if name == "setval":
        value = int(evaluate(node.args[1], ctx))
        seq.setval(value)
        return value
    return seq._next - 1


def _subquery(node: A.SubqueryExpr, ctx):
    if ctx.subquery_executor is None:
        raise DataError("subqueries are not supported in this context")
    rows = ctx.subquery_executor(node.query, ctx)
    if node.kind == "scalar":
        if not rows:
            return None
        if len(rows[0]) != 1:
            raise DataError("scalar subquery must return one column")
        if len(rows) > 1:
            raise DataError("scalar subquery returned more than one row")
        return rows[0][0]
    if node.kind == "exists":
        return bool(rows)
    if node.kind == "array":
        return [r[0] for r in rows]
    if node.kind == "in":
        value = evaluate(node.operand, ctx)
        if value is None:
            return None
        saw_null = False
        for row in rows:
            if row[0] is None:
                saw_null = True
            elif compare_values(value, row[0]) == 0:
                return not node.negated
        if saw_null:
            return None
        return node.negated
    if node.kind in ("any", "all"):
        value = evaluate(node.operand, ctx)
        results = [apply_binary(node.op, value, row[0]) for row in rows]
        if node.kind == "any":
            if any(r is True for r in results):
                return True
            return None if any(r is None for r in results) else False
        if all(r is True for r in results):
            return True
        return None if any(r is None for r in results) else False
    raise DataError(f"unknown subquery kind {node.kind!r}")


_EVAL = {
    A.Literal: _literal,
    A.Param: _param,
    A.ColumnRef: _column_ref,
    A.Cast: _cast,
    A.IsNull: _is_null,
    A.BetweenExpr: _between,
    A.InList: _in_list,
    A.CaseExpr: _case,
    A.ArrayExpr: _array,
    A.UnaryOp: _unary,
    A.BinaryOp: _binary,
    A.FuncCall: _func_call,
    A.SubqueryExpr: _subquery,
}
