"""Cluster-wide statistics counters (the ``pg_stat_*`` / ``citus_stat_*``
pattern).

A :class:`StatsRegistry` holds monotonically increasing **counters**,
up/down **gauges**, and log-bucketed **histograms**
(:class:`LogHistogram`), optionally labelled by node name, so the
distributed machinery can expose its internal decisions — which planner
tier fired, how many tasks ran, how many connections slow-start opened,
how many 2PC prepares each worker saw, how statement latency distributes —
as structured, queryable numbers.

The registry is deliberately engine-level (it knows nothing about Citus):
any subsystem may attach one to a shared holder object via
:func:`stats_for` — the Citus extension attaches one to the
:class:`~repro.net.cluster.Cluster` so every node's extension increments
the *same* counters, which is what makes them cluster-wide.

Tests and benchmarks scope their measurements with ``snapshot()`` /
``diff()`` (or the :meth:`StatsRegistry.measure` context manager) instead
of resetting global state, and guard gauge balance with
:meth:`StatsRegistry.track`, which is exception-safe by construction.
"""

from __future__ import annotations

import math
from collections import Counter
from contextlib import contextmanager

_UNLABELLED = ""


class LogHistogram:
    """A log-bucketed histogram of non-negative observations (latencies,
    byte counts).

    Buckets grow geometrically from ``base`` by ``factor`` per step, so a
    fixed, small number of integer counters covers nine orders of
    magnitude with bounded relative error — the classic HdrHistogram /
    Prometheus trade-off. Exact ``count``/``sum``/``min``/``max`` are kept
    alongside so the extremes never suffer bucket rounding.

    ``percentile`` walks the cumulative bucket counts and reports the
    upper bound of the bucket containing the requested rank, which makes
    p50 <= p95 <= p99 monotone by construction.
    """

    __slots__ = ("base", "log_factor", "buckets", "count", "sum", "min", "max")

    def __init__(self, base: float = 1e-6, factor: float = 1.5):
        self.base = base
        self.log_factor = math.log(factor)
        self.buckets: Counter = Counter()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram observation must be >= 0, got {value}")
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[self._index(value)] += 1

    def _index(self, value: float) -> int:
        if value <= self.base:
            return 0
        return 1 + int(math.log(value / self.base) / self.log_factor)

    def _upper_bound(self, index: int) -> float:
        return self.base * math.exp(self.log_factor * index)

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100); 0.0 on an empty histogram.

        Clamped to the observed ``min``/``max`` so bucket rounding can
        never report a value outside the real range.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(max(self._upper_bound(index), self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "LogHistogram") -> None:
        if other.base != self.base or other.log_factor != self.log_factor:
            raise ValueError("cannot merge histograms with different bucket layouts")
        self.buckets.update(other.buckets)
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self):
        return f"LogHistogram(count={self.count}, p50={self.percentile(50):.6g}, max={self.max:.6g})"


class StatsSnapshot:
    """An immutable point-in-time (or delta) view of a registry.

    ``counters`` / ``gauges`` map ``name -> {node -> value}``; the empty
    string labels the node-less total. The accessors mirror the registry's.
    """

    def __init__(self, counters: dict[str, Counter], gauges: dict[str, Counter]):
        self.counters = {name: Counter(c) for name, c in counters.items()}
        self.gauges = {name: Counter(c) for name, c in gauges.items()}

    # ------------------------------------------------------------ reading

    def value(self, name: str, node: str | None = None) -> int:
        per_node = self.counters.get(name)
        if per_node is None:
            return 0
        if node is None:
            return sum(per_node.values())
        return per_node.get(node, 0)

    def gauge(self, name: str, node: str | None = None) -> int:
        per_node = self.gauges.get(name)
        if per_node is None:
            return 0
        if node is None:
            return sum(per_node.values())
        return per_node.get(node, 0)

    def per_node(self, name: str) -> dict[str, int]:
        """``{node: value}`` for a labelled counter (node-less part under '')."""
        return dict(self.counters.get(name, ()))

    def diff(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """This snapshot minus an earlier one (zero entries dropped)."""
        counters = _subtract(self.counters, earlier.counters)
        gauges = _subtract(self.gauges, earlier.gauges)
        return StatsSnapshot(counters, gauges)

    def as_dict(self) -> dict:
        """Flat ``{name: total}`` plus ``{name@node: value}`` for labels."""
        out: dict[str, int] = {}
        for kind in (self.counters, self.gauges):
            for name, per_node in kind.items():
                total = 0
                for node, value in per_node.items():
                    total += value
                    if node != _UNLABELLED and value:
                        out[f"{name}@{node}"] = value
                if total or name not in out:
                    out[name] = total
        return out

    def __repr__(self):
        return f"StatsSnapshot({self.as_dict()!r})"


def _subtract(after: dict[str, Counter], before: dict[str, Counter]) -> dict[str, Counter]:
    out: dict[str, Counter] = {}
    for name in set(after) | set(before):
        delta = Counter()
        a, b = after.get(name, Counter()), before.get(name, Counter())
        for node in set(a) | set(b):
            d = a.get(node, 0) - b.get(node, 0)
            if d:
                delta[node] = d
        if delta:
            out[name] = delta
    return out


class StatsRegistry:
    """Counters and gauges with optional per-node labels."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Counter] = {}
        self._histograms: dict[str, LogHistogram] = {}
        # Names registered through gauge_max: high-water marks, not live
        # levels, so reset() may safely zero them (live gauges it must not).
        self._peaks: set[str] = set()
        # Deferred writers (see add_pending_source): drained before any
        # read or reset so hot paths may batch counter updates locally.
        self._pending_sources: list = []

    # ------------------------------------------------------------ writing

    def incr(self, name: str, n: int = 1, node: str | None = None) -> None:
        # get-then-insert rather than setdefault: setdefault constructs a
        # throwaway Counter on every call, and incr is on the hot path.
        per_node = self._counters.get(name)
        if per_node is None:
            per_node = self._counters[name] = Counter()
        per_node[node or _UNLABELLED] += n

    def gauge_incr(self, name: str, n: int = 1, node: str | None = None) -> None:
        per_node = self._gauges.get(name)
        if per_node is None:
            per_node = self._gauges[name] = Counter()
        per_node[node or _UNLABELLED] += n

    def gauge_decr(self, name: str, n: int = 1, node: str | None = None) -> None:
        self.gauge_incr(name, -n, node)

    def gauge_max(self, name: str, value: int, node: str | None = None) -> None:
        """Raise a high-water-mark gauge to ``value`` if currently below it
        (``rows_buffered_peak``-style peak accounting)."""
        self._peaks.add(name)
        per_node = self._gauges.setdefault(name, Counter())
        key = node or _UNLABELLED
        if value > per_node[key]:
            per_node[key] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named log-bucketed histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LogHistogram()
        hist.observe(value)

    @contextmanager
    def track(self, name: str, node: str | None = None):
        """Hold a gauge at +1 for the duration of a block.

        The decrement runs in a ``finally`` so a failing task can never
        leave an in-flight/connection gauge stuck high.
        """
        self.gauge_incr(name, 1, node)
        try:
            yield self
        finally:
            self.gauge_decr(name, 1, node)

    def add_pending_source(self, flush) -> None:
        """Enroll a deferred writer: ``flush(registry)`` will be called
        (once, then forgotten) before the next read or reset, letting a
        hot path accumulate counter updates in local state instead of
        writing through on every event. The writer re-enrolls whenever it
        has new pending data."""
        self._pending_sources.append(flush)

    def _drain_pending(self) -> None:
        sources = self._pending_sources
        if sources:
            self._pending_sources = []
            for flush in sources:
                flush(self)

    def reset(self) -> None:
        """Zero the accumulated statistics.

        Counters, histograms, and high-water-mark gauges (anything ever
        written through :meth:`gauge_max`, e.g. ``rows_buffered_peak``)
        are cleared. **Live** up/down gauges — current pool slots,
        in-flight tasks, open sessions — are preserved: zeroing a level
        while its resource is still held would let the matching decrement
        drive it negative and desynchronise admission control from
        reality forever after.
        """
        self._drain_pending()
        self._counters.clear()
        self._histograms.clear()
        for name in self._peaks:
            self._gauges.pop(name, None)

    # ------------------------------------------------------------ reading

    def value(self, name: str, node: str | None = None) -> int:
        return self.snapshot().value(name, node)

    def gauge(self, name: str, node: str | None = None) -> int:
        return self.snapshot().gauge(name, node)

    def per_node(self, name: str) -> dict[str, int]:
        return self.snapshot().per_node(name)

    def histogram(self, name: str) -> LogHistogram | None:
        return self._histograms.get(name)

    def histograms(self) -> dict[str, LogHistogram]:
        return dict(self._histograms)

    def snapshot(self) -> StatsSnapshot:
        self._drain_pending()
        return StatsSnapshot(self._counters, self._gauges)

    @contextmanager
    def measure(self):
        """``with registry.measure() as delta:`` — after the block, ``delta``
        holds the counter/gauge deltas accumulated inside it."""
        before = self.snapshot()
        box = _DeltaBox(self)
        try:
            yield box
        finally:
            box._delta = self.snapshot().diff(before)

    def as_dict(self) -> dict:
        return self.snapshot().as_dict()


class _DeltaBox:
    """Yielded by :meth:`StatsRegistry.measure`; proxies to the delta
    snapshot once the block exits (live registry values before that)."""

    def __init__(self, registry: StatsRegistry):
        self._registry = registry
        self._delta: StatsSnapshot | None = None

    @property
    def delta(self) -> StatsSnapshot:
        return self._delta if self._delta is not None else self._registry.snapshot()

    def value(self, name: str, node: str | None = None) -> int:
        return self.delta.value(name, node)

    def gauge(self, name: str, node: str | None = None) -> int:
        return self.delta.gauge(name, node)

    def per_node(self, name: str) -> dict[str, int]:
        return self.delta.per_node(name)

    def as_dict(self) -> dict:
        return self.delta.as_dict()


_ATTR = "_stats_registry"


def stats_for(holder) -> StatsRegistry:
    """The registry attached to ``holder``, creating it on first use.

    All parties that share the holder (e.g. every extension of one
    cluster) share the registry.
    """
    registry = getattr(holder, _ATTR, None)
    if registry is None:
        registry = StatsRegistry()
        setattr(holder, _ATTR, registry)
    return registry
