"""Cluster-wide statistics counters (the ``pg_stat_*`` / ``citus_stat_*``
pattern).

A :class:`StatsRegistry` holds monotonically increasing **counters** and
up/down **gauges**, optionally labelled by node name, so the distributed
machinery can expose its internal decisions — which planner tier fired, how
many tasks ran, how many connections slow-start opened, how many 2PC
prepares each worker saw — as structured, queryable numbers.

The registry is deliberately engine-level (it knows nothing about Citus):
any subsystem may attach one to a shared holder object via
:func:`stats_for` — the Citus extension attaches one to the
:class:`~repro.net.cluster.Cluster` so every node's extension increments
the *same* counters, which is what makes them cluster-wide.

Tests and benchmarks scope their measurements with ``snapshot()`` /
``diff()`` (or the :meth:`StatsRegistry.measure` context manager) instead
of resetting global state, and guard gauge balance with
:meth:`StatsRegistry.track`, which is exception-safe by construction.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager

_UNLABELLED = ""


class StatsSnapshot:
    """An immutable point-in-time (or delta) view of a registry.

    ``counters`` / ``gauges`` map ``name -> {node -> value}``; the empty
    string labels the node-less total. The accessors mirror the registry's.
    """

    def __init__(self, counters: dict[str, Counter], gauges: dict[str, Counter]):
        self.counters = {name: Counter(c) for name, c in counters.items()}
        self.gauges = {name: Counter(c) for name, c in gauges.items()}

    # ------------------------------------------------------------ reading

    def value(self, name: str, node: str | None = None) -> int:
        per_node = self.counters.get(name)
        if per_node is None:
            return 0
        if node is None:
            return sum(per_node.values())
        return per_node.get(node, 0)

    def gauge(self, name: str, node: str | None = None) -> int:
        per_node = self.gauges.get(name)
        if per_node is None:
            return 0
        if node is None:
            return sum(per_node.values())
        return per_node.get(node, 0)

    def per_node(self, name: str) -> dict[str, int]:
        """``{node: value}`` for a labelled counter (node-less part under '')."""
        return dict(self.counters.get(name, ()))

    def diff(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """This snapshot minus an earlier one (zero entries dropped)."""
        counters = _subtract(self.counters, earlier.counters)
        gauges = _subtract(self.gauges, earlier.gauges)
        return StatsSnapshot(counters, gauges)

    def as_dict(self) -> dict:
        """Flat ``{name: total}`` plus ``{name@node: value}`` for labels."""
        out: dict[str, int] = {}
        for kind in (self.counters, self.gauges):
            for name, per_node in kind.items():
                total = 0
                for node, value in per_node.items():
                    total += value
                    if node != _UNLABELLED and value:
                        out[f"{name}@{node}"] = value
                if total or name not in out:
                    out[name] = total
        return out

    def __repr__(self):
        return f"StatsSnapshot({self.as_dict()!r})"


def _subtract(after: dict[str, Counter], before: dict[str, Counter]) -> dict[str, Counter]:
    out: dict[str, Counter] = {}
    for name in set(after) | set(before):
        delta = Counter()
        a, b = after.get(name, Counter()), before.get(name, Counter())
        for node in set(a) | set(b):
            d = a.get(node, 0) - b.get(node, 0)
            if d:
                delta[node] = d
        if delta:
            out[name] = delta
    return out


class StatsRegistry:
    """Counters and gauges with optional per-node labels."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Counter] = {}

    # ------------------------------------------------------------ writing

    def incr(self, name: str, n: int = 1, node: str | None = None) -> None:
        self._counters.setdefault(name, Counter())[node or _UNLABELLED] += n

    def gauge_incr(self, name: str, n: int = 1, node: str | None = None) -> None:
        self._gauges.setdefault(name, Counter())[node or _UNLABELLED] += n

    def gauge_decr(self, name: str, n: int = 1, node: str | None = None) -> None:
        self.gauge_incr(name, -n, node)

    def gauge_max(self, name: str, value: int, node: str | None = None) -> None:
        """Raise a high-water-mark gauge to ``value`` if currently below it
        (``rows_buffered_peak``-style peak accounting)."""
        per_node = self._gauges.setdefault(name, Counter())
        key = node or _UNLABELLED
        if value > per_node[key]:
            per_node[key] = value

    @contextmanager
    def track(self, name: str, node: str | None = None):
        """Hold a gauge at +1 for the duration of a block.

        The decrement runs in a ``finally`` so a failing task can never
        leave an in-flight/connection gauge stuck high.
        """
        self.gauge_incr(name, 1, node)
        try:
            yield self
        finally:
            self.gauge_decr(name, 1, node)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()

    # ------------------------------------------------------------ reading

    def value(self, name: str, node: str | None = None) -> int:
        return self.snapshot().value(name, node)

    def gauge(self, name: str, node: str | None = None) -> int:
        return self.snapshot().gauge(name, node)

    def per_node(self, name: str) -> dict[str, int]:
        return self.snapshot().per_node(name)

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(self._counters, self._gauges)

    @contextmanager
    def measure(self):
        """``with registry.measure() as delta:`` — after the block, ``delta``
        holds the counter/gauge deltas accumulated inside it."""
        before = self.snapshot()
        box = _DeltaBox(self)
        try:
            yield box
        finally:
            box._delta = self.snapshot().diff(before)

    def as_dict(self) -> dict:
        return self.snapshot().as_dict()


class _DeltaBox:
    """Yielded by :meth:`StatsRegistry.measure`; proxies to the delta
    snapshot once the block exits (live registry values before that)."""

    def __init__(self, registry: StatsRegistry):
        self._registry = registry
        self._delta: StatsSnapshot | None = None

    @property
    def delta(self) -> StatsSnapshot:
        return self._delta if self._delta is not None else self._registry.snapshot()

    def value(self, name: str, node: str | None = None) -> int:
        return self.delta.value(name, node)

    def gauge(self, name: str, node: str | None = None) -> int:
        return self.delta.gauge(name, node)

    def per_node(self, name: str) -> dict[str, int]:
        return self.delta.per_node(name)

    def as_dict(self) -> dict:
        return self.delta.as_dict()


_ATTR = "_stats_registry"


def stats_for(holder) -> StatsRegistry:
    """The registry attached to ``holder``, creating it on first use.

    All parties that share the holder (e.g. every extension of one
    cluster) share the registry.
    """
    registry = getattr(holder, _ATTR, None)
    if registry is None:
        registry = StatsRegistry()
        setattr(holder, _ATTR, registry)
    return registry
