"""repro: a reproduction of "Citus: Distributed PostgreSQL for
Data-Intensive Applications" (SIGMOD 2021) as a pure-Python distributed
SQL engine with a simulated cluster substrate.

Layers:

- :mod:`repro.sql` — SQL lexer / parser / AST / deparser.
- :mod:`repro.engine` — single-node PostgreSQL-like engine (MVCC heap,
  B-tree/GIN indexes, WAL, locks, 2PC primitives, extension hooks).
- :mod:`repro.net` — simulated cluster: clock, network, HA, PgBouncer.
- :mod:`repro.citus` — the paper's contribution, implemented strictly via
  the engine's extension hooks.
- :mod:`repro.perf` — calibrated resource model behind the benchmark
  figures.
- :mod:`repro.workloads` — TPC-C, YCSB, TPC-H, GitHub-archive, pgbench.
"""

__version__ = "1.0.0"

from .citus import CitusCluster, make_cluster
from .engine import InstanceSpec, PostgresInstance, Session

__all__ = [
    "make_cluster",
    "CitusCluster",
    "PostgresInstance",
    "Session",
    "InstanceSpec",
    "__version__",
]
