"""Cluster and network simulation substrate."""

from .clock import SimClock
from .cluster import Cluster, StandbyConfig
from .network import Network, NetworkSpec, RemoteConnection
from .pool import ConnectionPool, PooledClient

__all__ = [
    "SimClock",
    "Cluster",
    "StandbyConfig",
    "Network",
    "NetworkSpec",
    "RemoteConnection",
    "ConnectionPool",
    "PooledClient",
]
