"""Simulated network: latency accounting and remote connections.

A :class:`RemoteConnection` is what the Citus adaptive executor opens to a
worker node: it wraps a backend (:class:`~repro.engine.instance.Session`)
on the target instance and charges network round trips and connection
establishment to per-connection counters. The executor aggregates those
counters to compute elapsed simulated time for a distributed query
(max over parallel connections, sum over sequential statements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.executor import EngineCursor
from ..engine.locks import WouldBlock
from ..errors import NodeUnavailable

#: Per-row wire framing overhead (DataRow message header).
_ROW_OVERHEAD = 2


def estimate_row_bytes(row) -> int:
    """Wire-size estimate of one result row — the per-batch payload the
    bandwidth model charges, replacing the old flat 256-byte guess."""
    total = _ROW_OVERHEAD
    for value in row:
        if value is None or isinstance(value, bool):
            total += 1
        elif isinstance(value, (int, float)):
            total += 8
        elif isinstance(value, str):
            total += len(value) + 1
        else:
            total += len(str(value)) + 1
    return total


class RemoteBlocked(WouldBlock):
    """A statement shipped to a worker is waiting for a lock there.

    Carries the worker-side parked-statement handle; the coordinator parks
    its own statement and polls the handle instead of re-sending the SQL.
    """

    def __init__(self, handle, conn):
        super().__init__(("remote", conn.node_name), set(), "Remote")
        self.handle = handle
        self.conn = conn


@dataclass
class NetworkSpec:
    rtt_ms: float = 0.5  # same-datacenter round trip
    connection_setup_ms: float = 15.0  # TCP + TLS + auth + fork backend
    bandwidth_mb_s: float = 1000.0


class Network:
    """Latency model + global traffic counters."""

    def __init__(self, clock, spec: NetworkSpec | None = None):
        self.clock = clock
        self.spec = spec or NetworkSpec()
        self.messages_sent = 0
        self.bytes_sent = 0

    def note_round_trip(self, payload_bytes: int = 256) -> float:
        """Record one request/response exchange; returns its latency in
        seconds (not advanced on the clock — callers aggregate)."""
        self.messages_sent += 1
        self.bytes_sent += payload_bytes
        transfer = payload_bytes / (self.spec.bandwidth_mb_s * 1e6)
        return self.spec.rtt_ms / 1000.0 + transfer

    def note_transfer(self, payload_bytes: int) -> float:
        """Record extra payload riding an exchange already counted by
        :meth:`note_round_trip` (a blocking result set following its
        request): bandwidth cost only, no additional message or RTT."""
        self.bytes_sent += payload_bytes
        return payload_bytes / (self.spec.bandwidth_mb_s * 1e6)

    def connection_setup_cost(self) -> float:
        return self.spec.connection_setup_ms / 1000.0


class RemoteConnection:
    """A coordinator-to-worker connection (what the executor pools).

    Tracks the transaction block state and which co-located shard group the
    connection has touched in the current transaction — the assignment
    invariant of §3.6.1 ("the same connection will be used for any
    subsequent access to the same set of co-located shards").
    """

    def __init__(self, node_name: str, session, network: Network):
        self.node_name = node_name
        self.session = session
        self.network = network
        self.in_txn_block = False
        self.accessed_groups: set = set()  # (colocation_id, shard_index) pairs
        self.busy_until = 0.0  # simulated time when current task finishes
        self.elapsed = 0.0  # total simulated busy time
        self.round_trips = 0
        self.bytes_transferred = 0  # wire bytes either direction
        self.closed = False

    def execute(self, sql: str, params=None, payload_bytes: int = 256,
                allow_block: bool = False):
        """One blocking request/response exchange.

        The request is charged as one round trip up front — it crosses the
        wire whether or not the worker statement then fails — and the
        response rows are charged at their actual byte size
        (``estimate_row_bytes``), so the blocking plane prices the wire
        exactly like the streaming cursors do.
        """
        if self.closed:
            raise NodeUnavailable(f"connection to {self.node_name} is closed")
        self.round_trips += 1
        self.bytes_transferred += payload_bytes
        self.elapsed += self.network.note_round_trip(payload_bytes)
        if allow_block:
            handle = self.session.execute_async(sql, params)
            if handle.done:
                return self._charge_result(handle.get())
            raise RemoteBlocked(handle, self)
        return self._charge_result(self.session.execute(sql, params))

    def execute_parsed(self, stmt, params=None, payload_bytes: int = 256,
                       allow_block: bool = False):
        """Ship a pre-parsed statement AST to the worker backend, skipping
        the deparse → lexer → parser round-trip. Network cost accounting is
        identical to :meth:`execute` — the simulation charges for the wire
        exchange, not for parsing."""
        if self.closed:
            raise NodeUnavailable(f"connection to {self.node_name} is closed")
        self.round_trips += 1
        self.bytes_transferred += payload_bytes
        self.elapsed += self.network.note_round_trip(payload_bytes)
        if allow_block:
            handle = self.session.execute_parsed_async(stmt, params)
            if handle.done:
                return self._charge_result(handle.get())
            raise RemoteBlocked(handle, self)
        return self._charge_result(self.session.execute_parsed(stmt, params))

    def _charge_result(self, result):
        """Bandwidth-charge a blocking result set at its actual wire size
        (the response rides the round trip already counted, so only the
        transfer term is added — no extra message)."""
        rows = getattr(result, "rows", None)
        if rows:
            payload = sum(estimate_row_bytes(r) for r in rows)
            self.bytes_transferred += payload
            self.elapsed += self.network.note_transfer(payload)
        return result

    def execute_async(self, sql: str, params=None):
        self.round_trips += 1
        self.elapsed += self.network.note_round_trip()
        return self.session.execute_async(sql, params)

    def execute_cursor(self, stmt=None, params=None, batch_size: int = 256,
                       sql: str | None = None) -> "RemoteCursor":
        """Open a worker-side cursor for a SELECT task; batches are then
        pulled on demand via :meth:`RemoteCursor.fetch_batch`. Only the
        dispatch round trip is charged here — each batch pays for its own
        transfer at its actual byte size."""
        if self.closed:
            raise NodeUnavailable(f"connection to {self.node_name} is closed")
        self.round_trips += 1
        self.bytes_transferred += 256
        self.elapsed += self.network.note_round_trip()
        engine_cursor = None
        if stmt is not None:
            engine_cursor = self.session.execute_parsed_cursor(stmt, params)
            if engine_cursor is None:
                # Not cursor-capable on the worker backend: materialize
                # there and stream the buffered result (the wire protocol
                # is the same either way).
                result = self.session.execute_parsed(stmt, params)
                engine_cursor = EngineCursor(result.columns, iter(result.rows))
        else:
            result = self.session.execute(sql, params)
            engine_cursor = EngineCursor(result.columns, iter(result.rows))
        return RemoteCursor(self, engine_cursor, batch_size)

    def copy_rows(self, table: str, rows, columns=None,
                  pipelined: bool = False) -> int:
        if self.closed:
            raise NodeUnavailable(f"connection to {self.node_name} is closed")
        # Charge the wire cost up front, like execute(): the rows cross the
        # network whether or not the worker-side copy then fails. The
        # payload is the rows' actual wire size, same pricing as the
        # result-set and cursor-batch directions. A ``pipelined`` chunk
        # rides a COPY stream that is already open on this connection —
        # the sender does not wait for a per-chunk response, so it costs
        # bandwidth only, no extra round trip (§3.8 "streams rows to the
        # shards asynchronously").
        if not hasattr(rows, "__len__"):
            rows = list(rows)
        payload = sum(estimate_row_bytes(r) for r in rows) if rows else _ROW_OVERHEAD
        self.bytes_transferred += payload
        if pipelined:
            self.elapsed += self.network.note_transfer(payload)
        else:
            self.round_trips += 1
            self.elapsed += self.network.note_round_trip(payload_bytes=payload)
        return self.session.copy_rows(table, rows, columns)

    def begin_if_needed(self) -> None:
        if not self.in_txn_block:
            self.execute("BEGIN")
            self.in_txn_block = True

    def close(self) -> None:
        if not self.closed:
            if self.in_txn_block:
                try:
                    self.session.rollback()
                except Exception:
                    pass
            self.session.close()
            self.closed = True


class RemoteCursor:
    """A pull-based remote result stream over one connection.

    Each ``fetch_batch()`` is a round trip charged at the batch's actual
    byte size (bandwidth-aware). ``close()`` before exhaustion sends a
    small CLOSE message and drops the worker-side cursor without
    transferring the remaining rows — the early-termination primitive the
    streaming coordinator merge relies on.
    """

    def __init__(self, conn: RemoteConnection, engine_cursor: EngineCursor,
                 batch_size: int):
        self.conn = conn
        self.batch_size = max(1, int(batch_size))
        self._cursor = engine_cursor
        self.bytes_fetched = 0
        self.batches_fetched = 0
        self.rows_fetched = 0
        self.last_payload = 0
        self.exhausted = False
        self.closed = False

    @property
    def columns(self):
        return self._cursor.columns

    def fetch_batch(self):
        """Next batch of rows, or None once the stream is exhausted."""
        if self.closed or self.exhausted:
            return None
        if self.conn.closed:
            raise NodeUnavailable(
                f"connection to {self.conn.node_name} is closed"
            )
        rows = self._cursor.fetch(self.batch_size)
        if not rows:
            self.exhausted = True
            # Observing end-of-stream costs a bare round trip.
            self.conn.round_trips += 1
            self.conn.bytes_transferred += _ROW_OVERHEAD
            self.conn.elapsed += self.conn.network.note_round_trip(_ROW_OVERHEAD)
            self.last_payload = 0
            return None
        payload = sum(estimate_row_bytes(r) for r in rows)
        self.conn.round_trips += 1
        self.conn.bytes_transferred += payload
        self.conn.elapsed += self.conn.network.note_round_trip(payload)
        self.last_payload = payload
        self.bytes_fetched += payload
        self.batches_fetched += 1
        self.rows_fetched += len(rows)
        if len(rows) < self.batch_size:
            # A short batch signals end-of-stream in-band: no extra round
            # trip needed to observe exhaustion.
            self.exhausted = True
        return rows

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if not self.exhausted and not self.conn.closed:
            self.conn.round_trips += 1
            self.conn.bytes_transferred += _ROW_OVERHEAD
            self.conn.elapsed += self.conn.network.note_round_trip(_ROW_OVERHEAD)
        self._cursor.close()
