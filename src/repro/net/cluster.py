"""Cluster: a set of named PostgresInstances sharing a clock and network.

Provides node lifecycle (add/remove/fail), HA standby management and the
failover orchestration described in §3.9: each node may have a hot standby
replicating its WAL; on failure, the orchestrator promotes the standby by
replaying the replicated WAL into a fresh instance and updating the node
map ("updates the Citus metadata, DNS record, or virtual IP"). Synchronous
replication loses nothing; asynchronous replication may lose a configurable
tail of the WAL.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import InstanceSpec, PostgresInstance
from ..errors import NodeUnavailable
from .clock import SimClock
from .network import Network, NetworkSpec, RemoteConnection


@dataclass
class StandbyConfig:
    mode: str = "synchronous"  # synchronous | asynchronous
    async_lag_records: int = 5  # WAL records that may be lost when async


class Cluster:
    def __init__(self, spec: InstanceSpec | None = None,
                 network_spec: NetworkSpec | None = None,
                 max_connections: int = 300):
        self.clock = SimClock()
        self.network = Network(self.clock, network_spec)
        self.spec = spec or InstanceSpec()
        self.max_connections = max_connections
        self.nodes: dict[str, PostgresInstance] = {}
        self._standbys: dict[str, StandbyConfig] = {}
        self.failover_log: list[dict] = []

    # ------------------------------------------------------------- nodes

    def add_node(self, name: str, spec: InstanceSpec | None = None) -> PostgresInstance:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        instance = PostgresInstance(
            name, spec or self.spec, max_connections=self.max_connections, clock=self.clock
        )
        self.nodes[name] = instance
        return instance

    def node(self, name: str) -> PostgresInstance:
        instance = self.nodes.get(name)
        if instance is None:
            raise NodeUnavailable(f"unknown node {name!r}")
        return instance

    def node_names(self) -> list[str]:
        return list(self.nodes)

    def connect(self, node_name: str, application_name: str = "") -> RemoteConnection:
        instance = self.node(node_name)
        if not instance.is_up:
            raise NodeUnavailable(f"node {node_name!r} is down")
        session = instance.connect(application_name)
        return RemoteConnection(node_name, session, self.network)

    # ---------------------------------------------------------------- HA

    def enable_standby(self, node_name: str, config: StandbyConfig | None = None) -> None:
        self.node(node_name)  # validate
        self._standbys[node_name] = config or StandbyConfig()

    def fail_node(self, name: str) -> None:
        """Hard-fail a node: sessions die, in-flight transactions roll back."""
        self.node(name).crash()

    def promote_standby(self, name: str) -> PostgresInstance:
        """Failover: replace a failed node with its promoted standby.

        The paper reports the whole process takes 20–30 s, during which
        distributed transactions involving the node roll back; we advance
        the simulated clock accordingly.
        """
        config = self._standbys.get(name)
        if config is None:
            raise NodeUnavailable(f"node {name!r} has no standby configured")
        old = self.node(name)
        wal = old.wal.clone()
        if config.mode == "asynchronous" and config.async_lag_records:
            wal._records = wal._records[: max(0, len(wal._records) - config.async_lag_records)]
        replacement = PostgresInstance(
            name, old.spec, max_connections=old.max_connections, clock=self.clock
        )
        replacement.wal = wal
        replacement.hooks = old.hooks  # extensions stay installed
        replacement.restart()
        self.nodes[name] = replacement
        self.clock.advance(25.0)  # failover window
        self.failover_log.append({"node": name, "mode": config.mode, "at": self.clock.now()})
        return replacement

    # ------------------------------------------------------------- stats

    def total_memory_gb(self) -> float:
        return sum(n.spec.memory_gb for n in self.nodes.values())

    def total_data_bytes(self) -> int:
        return sum(n.total_data_bytes() for n in self.nodes.values())
