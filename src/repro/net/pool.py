"""PgBouncer-style transaction-mode connection pool (§3.2.1).

When every worker acts as a coordinator, each client connection fans out
into intra-cluster connections; the paper mitigates the resulting
connection explosion "by setting up connection pooling between the
instances, via PgBouncer". The pool multiplexes many client handles over a
bounded set of server sessions, leasing a server session per transaction.
"""

from __future__ import annotations

from ..engine.stats import stats_for
from ..engine.waitevents import WaitEventStack
from ..errors import TooManyConnections


class ConnectionPool:
    def __init__(self, instance, pool_size: int = 20, max_client_conn: int = 1000,
                 stats_holder=None):
        self.instance = instance
        self.pool_size = pool_size
        self.max_client_conn = max_client_conn
        # Counters default to the instance's private registry; passing the
        # cluster as stats_holder folds pool accounting into the shared
        # cluster-wide registry (citus_stat_counters, metrics snapshot).
        self.stats = stats_for(stats_holder if stats_holder is not None else instance)
        # Client:PoolLease wait events; the context-manager push/pop keeps
        # the in-progress gauge balanced even when a lease attempt fails.
        self.wait_events = WaitEventStack(instance)
        self._node = getattr(instance, "name", None)
        self._idle: list = []
        self._lease_count = 0
        self._client_count = 0
        #: Lease attempts that found every server session busy and raised
        #: ``TooManyConnections`` (mirrors the ``pool_exhausted`` counter;
        #: this pool rejects rather than queueing, so the client retries).
        self.waits = 0
        self.peak_leases = 0
        self.peak_clients = 0

    def client(self) -> "PooledClient":
        if self._client_count >= self.max_client_conn:
            self.stats.incr("pool_client_rejections", node=self._node)
            raise TooManyConnections("pgbouncer: no more client connections allowed")
        self._client_count += 1
        self.peak_clients = max(self.peak_clients, self._client_count)
        self.stats.gauge_incr("pool_clients", node=self._node)
        return PooledClient(self)

    @property
    def client_count(self) -> int:
        """Currently open client handles (high-water mark in ``peak_clients``)."""
        return self._client_count

    def _tracer(self):
        """The instance's tracer while it is collecting, else None (the
        attribute only exists once a Citus cluster attached one)."""
        tracer = getattr(self.instance, "tracer", None)
        if tracer is not None and tracer.active:
            return tracer
        return None

    def _acquire(self):
        with self.wait_events.waiting("Client", "PoolLease"):
            return self._lease_session()

    def _lease_session(self):
        tracer = self._tracer()
        if self._idle:
            session = self._idle.pop()
            self.stats.incr("pool_session_reuses", node=self._node)
            if tracer is not None:
                tracer.event("pool.lease", "pool", node=self._node, reused=True)
        elif self._lease_count < self.pool_size:
            session = self.instance.connect("pgbouncer")
            self.stats.incr("pool_sessions_opened", node=self._node)
            if tracer is not None:
                tracer.event("pool.lease", "pool", node=self._node, reused=False)
        else:
            self.waits += 1
            self.stats.incr("pool_exhausted", node=self._node)
            if tracer is not None:
                tracer.event("pool.exhausted", "pool", node=self._node,
                             pool_size=self.pool_size)
            raise _PoolExhausted()
        self._lease_count += 1
        self.stats.gauge_incr("pool_leases", node=self._node)
        self.peak_leases = max(self.peak_leases, self._lease_count)
        return session

    def _release(self, session) -> None:
        self._lease_count -= 1
        self.stats.gauge_decr("pool_leases", node=self._node)
        tracer = self._tracer()
        if tracer is not None:
            tracer.event("pool.release", "pool", node=self._node)
        if session.in_transaction:
            session.rollback()
        self._idle.append(session)

    def close(self) -> None:
        for session in self._idle:
            session.close()
        self._idle.clear()


class _PoolExhausted(TooManyConnections):
    def __init__(self):
        super().__init__("pgbouncer: server pool exhausted, transaction queued")


class PooledClient:
    """A client handle: leases a server session per transaction block
    (transaction pooling mode), or per statement outside a block."""

    def __init__(self, pool: ConnectionPool):
        self.pool = pool
        self._leased = None
        self.closed = False

    def execute(self, sql: str, params=None):
        if self.closed:
            raise TooManyConnections(
                "pgbouncer: client handle is closed"
            )
        session = self._leased
        if session is None:
            session = self.pool._acquire()
        try:
            result = session.execute(sql, params)
        except Exception:
            if session.in_transaction:
                session.rollback()
            self.pool._release(session)
            self._leased = None
            raise
        if session.in_transaction:
            self._leased = session
        else:
            self._leased = None
            self.pool._release(session)
        return result

    def copy_rows(self, table: str, rows, columns=None) -> int:
        """Programmatic COPY FROM through the pool, with the same lease /
        release semantics as :meth:`execute` (COPY autocommits outside a
        transaction block, so the server session is released afterwards)."""
        if self.closed:
            raise TooManyConnections(
                "pgbouncer: client handle is closed"
            )
        session = self._leased
        if session is None:
            session = self.pool._acquire()
        try:
            count = session.copy_rows(table, rows, columns)
        except Exception:
            if session.in_transaction:
                session.rollback()
            self.pool._release(session)
            self._leased = None
            raise
        if session.in_transaction:
            self._leased = session
        else:
            self._leased = None
            self.pool._release(session)
        return count

    def close(self) -> None:
        """Idempotent: a double close must not underflow ``_client_count``
        or the ``pool_clients`` gauge (which would permanently inflate the
        pool's client capacity)."""
        if self.closed:
            return
        self.closed = True
        if self._leased is not None:
            self.pool._release(self._leased)
            self._leased = None
        self.pool._client_count -= 1
        self.pool.stats.gauge_decr("pool_clients", node=self.pool._node)
