"""Simulated wall clock shared by all nodes of a cluster.

The engine is single-threaded; "time" is a number that components advance
explicitly. The adaptive executor charges task latencies here (taking the
max over concurrent tasks rather than the sum), the slow-start algorithm
reads it to decide when to open new connections, and background workers use
it for their intervals.

**Observers.** Samplers that want to act "every N virtual seconds" without
threads register a callback via :meth:`SimClock.add_observer`; it fires
``observer(previous, now)`` after every forward movement of the clock, from
whichever call site charged the time. The observer decides which interval
boundaries the jump crossed — the clock stays policy-free. With no
observers registered, every advance pays exactly one attribute load and
truth test (the ASH sampler's zero-cost-when-off guarantee). Observers MUST
NOT advance the clock themselves; they run synchronously inside the
advancing call.
"""

from __future__ import annotations


class SimClock:
    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._observers: list = []

    def now(self) -> float:
        return self._now

    # ---------------------------------------------------------- observers

    def add_observer(self, observer) -> None:
        """Register ``observer(previous, now)`` to fire after every forward
        clock movement. Idempotent: re-adding an installed observer is a
        no-op, so repeated reconfiguration can't double-sample."""
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unregister an observer; unknown observers are ignored."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _notify(self, previous: float) -> None:
        for observer in self._observers:
            observer(previous, self._now)

    # ----------------------------------------------------------- movement

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        previous = self._now
        self._now = previous + seconds
        if self._observers and seconds:
            self._notify(previous)
        return self._now

    def advance_ms(self, millis: float) -> float:
        return self.advance(millis / 1000.0)

    def advance_to(self, when: float) -> float:
        """Move the clock forward to an absolute virtual time.

        A no-op when ``when`` is already in the past: event-driven
        schedulers (the traffic harness) pop wake-ups whose scheduled
        time may have been overtaken by service time charged while other
        actors executed, and those fire "now" rather than rewinding.
        """
        previous = self._now
        if when > previous:
            self._now = float(when)
            if self._observers:
                self._notify(previous)
        return self._now
