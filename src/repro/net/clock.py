"""Simulated wall clock shared by all nodes of a cluster.

The engine is single-threaded; "time" is a number that components advance
explicitly. The adaptive executor charges task latencies here (taking the
max over concurrent tasks rather than the sum), the slow-start algorithm
reads it to decide when to open new connections, and background workers use
it for their intervals.
"""

from __future__ import annotations


class SimClock:
    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_ms(self, millis: float) -> float:
        return self.advance(millis / 1000.0)

    def advance_to(self, when: float) -> float:
        """Move the clock forward to an absolute virtual time.

        A no-op when ``when`` is already in the past: event-driven
        schedulers (the traffic harness) pop wake-ups whose scheduled
        time may have been overtaken by service time charged while other
        actors executed, and those fire "now" rather than rewinding.
        """
        if when > self._now:
            self._now = float(when)
        return self._now
