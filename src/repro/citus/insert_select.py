"""Distributed INSERT..SELECT (§3.8) — the backbone of real-time rollups.

Three strategies, chosen in this order:

1. **co-located pushdown** — source and destination are co-located and the
   SELECT is pushdownable per shard with the destination's distribution
   column produced by the source's: the INSERT..SELECT executes directly
   on co-located shard pairs, fully in parallel.
2. **re-partitioning** — no coordinator merge step is needed but the
   source and destination are not co-located: the distributed SELECT's
   per-shard results are re-routed by the destination's distribution
   column and inserted in batches.
3. **pull to coordinator** — the SELECT requires a merge step on the
   coordinator: run it as a regular distributed query, then distribute the
   result like a COPY.

With ``citus.enable_streaming_writes`` the re-routing strategies are fully
pipelined: the distributed SELECT is consumed through the PR-3 cursor
machinery one batch at a time and fed straight into the ShardCopyRouter's
per-shard COPY channels, so the coordinator never holds the intermediate
result — its buffering is bounded by the read batch size plus
``copy_flush_threshold × shards``.
"""

from __future__ import annotations

from .copy_dist import distribute_rows
from .planner.distributed import CitusPlan
from .planner.pushdown import _choose_mode, plan_pushdown_select
from .planner.tasks import Task, task_sql_for_shard
from .sharding import analyze_statement
from ..engine.executor import QueryResult
from ..errors import UnsupportedDistributedQuery
from ..sql import ast as A


def plan_insert_select(ext, stmt: A.Insert, params):
    cache = ext.metadata.cache
    dest = cache.tables.get(stmt.table)
    if dest is None:
        # Local destination fed from distributed source: run the select
        # distributed, insert locally.
        return CoordinatorInsertSelectPlan(ext, stmt, params, local_dest=True)
    analysis = analyze_statement(stmt.select, cache, params, ext.instance.catalog)
    if dest.is_reference:
        return CoordinatorInsertSelectPlan(ext, stmt, params)
    strategy = _choose_strategy(ext, stmt, dest, analysis)
    if strategy == "pushdown":
        return PushdownInsertSelectPlan(ext, stmt, params, dest, analysis)
    if strategy == "repartition":
        return RepartitionInsertSelectPlan(ext, stmt, params, dest)
    return CoordinatorInsertSelectPlan(ext, stmt, params)


def _choose_strategy(ext, stmt: A.Insert, dest, analysis) -> str:
    select = stmt.select
    dist_sources = analysis.distributed
    if not dist_sources:
        return "coordinator"  # SELECT over reference/local tables
    if analysis.locals or select.ctes or select.set_ops:
        return "coordinator"
    same_colocation = all(
        o.dist.colocation_id == dest.colocation_id for o in dist_sources
    )
    pushable = analysis.all_dist_columns_equal() and not analysis.inner_cross_shard_agg
    if not pushable:
        return "coordinator"
    needs_merge = _choose_mode(select, analysis) == "merge"
    if needs_merge:
        return "coordinator"
    # The destination's distribution column must be fed by the source's
    # distribution column for per-shard-pair execution.
    if same_colocation and _dest_key_from_source_key(stmt, dest, analysis):
        return "pushdown"
    return "repartition"


def _dest_key_from_source_key(stmt: A.Insert, dest, analysis) -> bool:
    select = stmt.select
    shell_columns = stmt.columns
    if not shell_columns:
        return False
    try:
        position = shell_columns.index(dest.dist_column)
    except ValueError:
        return False
    targets = [t for t in select.targets if isinstance(t, A.TargetEntry)]
    if position >= len(targets):
        return False
    expr = targets[position].expr
    if not isinstance(expr, A.ColumnRef):
        return False
    roots = {
        analysis.equivalence.find(analysis.dist_column_key(o))
        for o in analysis.distributed
    }
    return analysis.equivalence.find(expr.key) in roots


# --------------------------------------------------- streaming SELECT feed


def _streaming_writes(ext) -> bool:
    return (getattr(ext.config, "enable_streaming_writes", True)
            and ext.cluster is not None)


def _select_row_stream(ext, session, select, params):
    """The SELECT side of the write pipeline.

    Streaming writes on: returns a lazy row iterator that pulls the
    distributed SELECT through the cursor pipeline batch by batch (when the
    plan supports it), so rows flow straight into the copy channels without
    coordinator materialization. Off: materializes the whole result first,
    exactly like the pre-streaming write plane.
    """
    if not _streaming_writes(ext):
        return session._execute_statement(select, params, None).rows
    return _select_rows(ext, session, select, params)


def _select_rows(ext, session, select, params):
    plan = session.instance.hooks.call_planner(session, select, params)
    if plan is None:
        result = session._execute_local_dml(select, params)
        yield from result.rows
        return
    open_batches = getattr(plan, "execute_batches", None)
    if open_batches is not None:
        source = open_batches(session, params)
        if source is not None:
            for batch in source:
                yield from batch
            return
    # Not a streaming-capable plan (router, join-order, reference, or the
    # pipeline GUC is off): materialized execution, same as before.
    result = plan.execute(session, params)
    yield from result.rows


def _copy_target_tasks(ext, dest) -> list[Task]:
    """The destination-side task list (one per COPY channel, in channel
    index order), for EXPLAIN: channel spans match back to these by index."""
    if dest is None:
        return []
    if dest.is_reference:
        shard = dest.shards[0]
        return [
            Task(node, f"COPY {shard.shard_name}",
                 shard_group=(dest.colocation_id, 0, node), returns_rows=False)
            for node in ext.metadata.all_placements(shard.shardid)
        ]
    cache = ext.metadata.cache
    return [
        Task(cache.placement_node(shard.shardid), f"COPY {shard.shard_name}",
             shard_group=(dest.colocation_id, index), returns_rows=False)
        for index, shard in enumerate(dest.shards)
    ]


def _repartition_info(ext, channel_count: int) -> dict:
    if _streaming_writes(ext):
        return {
            "mode": "streaming",
            "flush_threshold": ext.config.copy_flush_threshold,
            "channels": channel_count,
        }
    return {"mode": "materialized", "channels": channel_count}


class PushdownInsertSelectPlan(CitusPlan):
    """Strategy 1: INSERT INTO dest_shard SELECT ... FROM src_shard, one
    task per co-located shard pair, fully parallel."""

    tier = "insert_select"
    detail = "Insert..Select (co-located)"

    def __init__(self, ext, stmt, params, dest, analysis):
        super().__init__(ext)
        self.stmt = stmt
        self.dest = dest

    def execute(self, session, params):
        cache = self.ext.metadata.cache
        tasks = []
        for index, shard in enumerate(self.dest.shards):
            node = cache.placement_node(shard.shardid)
            sql = task_sql_for_shard(self.stmt, cache, index)
            tasks.append(
                Task(node, sql, params, shard_group=(self.dest.colocation_id, index),
                     returns_rows=False)
            )
        results = self.ext.executor.execute_tasks(session, tasks, is_write=True)
        total = sum(r.rowcount for r in results if r is not None)
        out = QueryResult([], [], command="INSERT")
        out.rowcount = total
        self.ext.stats["insert_select_pushdown"] += 1
        return out

    def explain_lines(self):
        return self._explain_header(len(self.dest.shards), "Insert..Select (co-located)")

    def explain_info(self):
        cache = self.ext.metadata.cache
        tasks = [
            Task(cache.placement_node(shard.shardid),
                 task_sql_for_shard(self.stmt, cache, index),
                 shard_group=(self.dest.colocation_id, index), returns_rows=False)
            for index, shard in enumerate(self.dest.shards)
        ]
        return {
            "tier": self.tier,
            "detail": self.detail,
            "tasks": tasks,
            "total_shard_count": len(self.dest.shards),
            "pruned_shard_count": 0,
            "is_write": True,
            "pushed_down": ["INSERT..SELECT (per shard pair)"],
            "subplan": {"strategy": "pushdown", "destination": self.dest.name},
        }


class RepartitionInsertSelectPlan(CitusPlan):
    """Strategy 2: distributed SELECT whose per-shard results are re-routed
    by the destination's distribution column, without a coordinator merge
    of the query itself. Streaming writes pipeline the SELECT's cursor
    batches straight into the per-shard COPY channels."""

    tier = "insert_select"
    detail = "Insert..Select (repartition)"

    def __init__(self, ext, stmt, params, dest):
        super().__init__(ext)
        self.stmt = stmt
        self.dest = dest

    def execute(self, session, params):
        rows = _select_row_stream(self.ext, session, self.stmt.select, params)
        shell = self.ext.instance.catalog.get_table(self.stmt.table)
        columns = self.stmt.columns or shell.column_names()
        count = distribute_rows(self.ext, session, self.stmt.table,
                                rows, columns)
        out = QueryResult([], [], command="INSERT")
        out.rowcount = count
        self.ext.stats["insert_select_repartition"] += 1
        return out

    def explain_lines(self):
        return self._explain_header(len(self.dest.shards), "Insert..Select (repartition)")

    def explain_info(self):
        return {
            "tier": self.tier,
            "detail": self.detail,
            "tasks": _copy_target_tasks(self.ext, self.dest),
            "task_count": len(self.dest.shards),
            "total_shard_count": len(self.dest.shards),
            "pruned_shard_count": 0,
            "is_write": True,
            "pushed_down": ["SELECT (distributed)"],
            "coordinator": ["ROW RE-ROUTING"],
            "repartition": _repartition_info(self.ext, len(self.dest.shards)),
            "subplan": {"strategy": "repartition", "destination": self.dest.name},
        }


class CoordinatorInsertSelectPlan(CitusPlan):
    """Strategy 3: distributed SELECT with merge on the coordinator, then
    COPY-style distribution into the destination."""

    tier = "insert_select"
    detail = "Insert..Select (via coordinator)"

    def __init__(self, ext, stmt, params, local_dest: bool = False):
        super().__init__(ext)
        self.stmt = stmt
        self.local_dest = local_dest

    def execute(self, session, params):
        self.ext.stats["insert_select_coordinator"] += 1
        rows = _select_row_stream(self.ext, session, self.stmt.select, params)
        shell = self.ext.instance.catalog.get_table(self.stmt.table)
        columns = self.stmt.columns or shell.column_names()
        if self.local_dest:
            from ..engine.copy import insert_rows

            count = insert_rows(session, self.stmt.table, rows, columns)
        else:
            count = distribute_rows(self.ext, session, self.stmt.table,
                                    rows, columns)
        out = QueryResult([], [], command="INSERT")
        out.rowcount = count
        return out

    def explain_lines(self):
        return self._explain_header(1, "Insert..Select (via coordinator)")

    def explain_info(self):
        dest = None
        if not self.local_dest:
            dest = self.ext.metadata.cache.tables.get(self.stmt.table)
        tasks = _copy_target_tasks(self.ext, dest)
        info = {
            "tier": self.tier,
            "detail": self.detail,
            "tasks": tasks,
            "task_count": len(tasks) or 1,
            "is_write": True,
            "coordinator": ["SELECT MERGE", "ROW DISTRIBUTION"],
            "subplan": {"strategy": "coordinator", "destination": self.stmt.table},
        }
        if dest is not None:
            info["repartition"] = _repartition_info(self.ext, len(tasks))
        return info
