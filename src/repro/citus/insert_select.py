"""Distributed INSERT..SELECT (§3.8) — the backbone of real-time rollups.

Three strategies, chosen in this order:

1. **co-located pushdown** — source and destination are co-located and the
   SELECT is pushdownable per shard with the destination's distribution
   column produced by the source's: the INSERT..SELECT executes directly
   on co-located shard pairs, fully in parallel.
2. **re-partitioning** — no coordinator merge step is needed but the
   source and destination are not co-located: the distributed SELECT's
   per-shard results are re-routed by the destination's distribution
   column and inserted in batches.
3. **pull to coordinator** — the SELECT requires a merge step on the
   coordinator: run it as a regular distributed query, then distribute the
   result like a COPY.
"""

from __future__ import annotations

from .copy_dist import distribute_rows
from .planner.distributed import CitusPlan
from .planner.pushdown import _choose_mode, plan_pushdown_select
from .planner.tasks import Task, task_sql_for_shard
from .sharding import analyze_statement
from ..engine.executor import QueryResult
from ..errors import UnsupportedDistributedQuery
from ..sql import ast as A


def plan_insert_select(ext, stmt: A.Insert, params):
    cache = ext.metadata.cache
    dest = cache.tables.get(stmt.table)
    if dest is None:
        # Local destination fed from distributed source: run the select
        # distributed, insert locally.
        return CoordinatorInsertSelectPlan(ext, stmt, params, local_dest=True)
    analysis = analyze_statement(stmt.select, cache, params, ext.instance.catalog)
    if dest.is_reference:
        return CoordinatorInsertSelectPlan(ext, stmt, params)
    strategy = _choose_strategy(ext, stmt, dest, analysis)
    if strategy == "pushdown":
        return PushdownInsertSelectPlan(ext, stmt, params, dest, analysis)
    if strategy == "repartition":
        return RepartitionInsertSelectPlan(ext, stmt, params, dest)
    return CoordinatorInsertSelectPlan(ext, stmt, params)


def _choose_strategy(ext, stmt: A.Insert, dest, analysis) -> str:
    select = stmt.select
    dist_sources = analysis.distributed
    if not dist_sources:
        return "coordinator"  # SELECT over reference/local tables
    if analysis.locals or select.ctes or select.set_ops:
        return "coordinator"
    same_colocation = all(
        o.dist.colocation_id == dest.colocation_id for o in dist_sources
    )
    pushable = analysis.all_dist_columns_equal() and not analysis.inner_cross_shard_agg
    if not pushable:
        return "coordinator"
    needs_merge = _choose_mode(select, analysis) == "merge"
    if needs_merge:
        return "coordinator"
    # The destination's distribution column must be fed by the source's
    # distribution column for per-shard-pair execution.
    if same_colocation and _dest_key_from_source_key(stmt, dest, analysis):
        return "pushdown"
    return "repartition"


def _dest_key_from_source_key(stmt: A.Insert, dest, analysis) -> bool:
    select = stmt.select
    shell_columns = stmt.columns
    if not shell_columns:
        return False
    try:
        position = shell_columns.index(dest.dist_column)
    except ValueError:
        return False
    targets = [t for t in select.targets if isinstance(t, A.TargetEntry)]
    if position >= len(targets):
        return False
    expr = targets[position].expr
    if not isinstance(expr, A.ColumnRef):
        return False
    roots = {
        analysis.equivalence.find(analysis.dist_column_key(o))
        for o in analysis.distributed
    }
    return analysis.equivalence.find(expr.key) in roots


class PushdownInsertSelectPlan(CitusPlan):
    """Strategy 1: INSERT INTO dest_shard SELECT ... FROM src_shard, one
    task per co-located shard pair, fully parallel."""

    tier = "insert_select"

    def __init__(self, ext, stmt, params, dest, analysis):
        super().__init__(ext)
        self.stmt = stmt
        self.dest = dest

    def execute(self, session, params):
        cache = self.ext.metadata.cache
        tasks = []
        for index, shard in enumerate(self.dest.shards):
            node = cache.placement_node(shard.shardid)
            sql = task_sql_for_shard(self.stmt, cache, index)
            tasks.append(
                Task(node, sql, params, shard_group=(self.dest.colocation_id, index),
                     returns_rows=False)
            )
        results = self.ext.executor.execute_tasks(session, tasks, is_write=True)
        total = sum(r.rowcount for r in results if r is not None)
        out = QueryResult([], [], command="INSERT")
        out.rowcount = total
        self.ext.stats["insert_select_pushdown"] += 1
        return out

    def explain_lines(self):
        return self._explain_header(len(self.dest.shards), "Insert..Select (co-located)")

    def explain_info(self):
        cache = self.ext.metadata.cache
        tasks = [
            Task(cache.placement_node(shard.shardid),
                 task_sql_for_shard(self.stmt, cache, index),
                 shard_group=(self.dest.colocation_id, index), returns_rows=False)
            for index, shard in enumerate(self.dest.shards)
        ]
        return {
            "tier": self.tier,
            "planner": "Insert..Select (co-located)",
            "tasks": tasks,
            "total_shard_count": len(self.dest.shards),
            "pruned_shard_count": 0,
            "is_write": True,
            "pushed_down": ["INSERT..SELECT (per shard pair)"],
            "subplan": {"strategy": "pushdown", "destination": self.dest.name},
        }


class RepartitionInsertSelectPlan(CitusPlan):
    """Strategy 2: distributed SELECT whose per-shard results are re-routed
    by the destination's distribution column, without a coordinator merge
    of the query itself."""

    tier = "insert_select"

    def __init__(self, ext, stmt, params, dest):
        super().__init__(ext)
        self.stmt = stmt
        self.dest = dest

    def execute(self, session, params):
        select_result = session._execute_statement(self.stmt.select, params, None)
        shell = self.ext.instance.catalog.get_table(self.stmt.table)
        columns = self.stmt.columns or shell.column_names()
        count = distribute_rows(self.ext, session, self.stmt.table,
                                select_result.rows, columns)
        out = QueryResult([], [], command="INSERT")
        out.rowcount = count
        self.ext.stats["insert_select_repartition"] += 1
        return out

    def explain_lines(self):
        return self._explain_header(len(self.dest.shards), "Insert..Select (repartition)")

    def explain_info(self):
        return {
            "tier": self.tier,
            "planner": "Insert..Select (repartition)",
            "tasks": [],
            "task_count": len(self.dest.shards),
            "total_shard_count": len(self.dest.shards),
            "is_write": True,
            "pushed_down": ["SELECT (distributed)"],
            "coordinator": ["ROW RE-ROUTING"],
            "subplan": {"strategy": "repartition", "destination": self.dest.name},
        }


class CoordinatorInsertSelectPlan(CitusPlan):
    """Strategy 3: distributed SELECT with merge on the coordinator, then
    COPY-style distribution into the destination."""

    tier = "insert_select"

    def __init__(self, ext, stmt, params, local_dest: bool = False):
        super().__init__(ext)
        self.stmt = stmt
        self.local_dest = local_dest

    def execute(self, session, params):
        select_result = session._execute_statement(self.stmt.select, params, None)
        self.ext.stats["insert_select_coordinator"] += 1
        if self.local_dest:
            insert = A.Insert(
                table=self.stmt.table,
                columns=list(self.stmt.columns),
                rows=[[A.Literal(v) for v in row] for row in select_result.rows],
            )
            if not insert.rows:
                out = QueryResult([], [], command="INSERT")
                out.rowcount = 0
                return out
            return session._execute_local_dml(insert, None)
        shell = self.ext.instance.catalog.get_table(self.stmt.table)
        columns = self.stmt.columns or shell.column_names()
        dist = self.ext.metadata.cache.get_table(self.stmt.table)
        count = distribute_rows(self.ext, session, self.stmt.table,
                                select_result.rows, columns)
        out = QueryResult([], [], command="INSERT")
        out.rowcount = count
        return out

    def explain_lines(self):
        return self._explain_header(1, "Insert..Select (via coordinator)")

    def explain_info(self):
        return {
            "tier": self.tier,
            "planner": "Insert..Select (via coordinator)",
            "tasks": [],
            "task_count": 1,
            "is_write": True,
            "coordinator": ["SELECT MERGE", "ROW DISTRIBUTION"],
            "subplan": {"strategy": "coordinator", "destination": self.stmt.table},
        }
