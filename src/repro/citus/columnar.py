"""Columnar storage access method (cstore / citus columnar).

Data warehousing workloads (§2.4, Table 2) want fast scans; Citus ships a
stripe-based, compressed, append-only columnar access method. This module
reproduces its *organization and cost behaviour*:

- rows appended to a columnar table are packed into fixed-size stripes,
  stored column-major with per-column min/max metadata (zone maps) and a
  modeled compression ratio per type;
- scans that project a subset of columns read only those columns' bytes,
  and stripes whose min/max excludes a predicate are skipped entirely;
- UPDATE/DELETE raise, matching the access method's append-only contract.

For execution correctness the engine's heap remains the source of truth
(every row also lives there); the columnar sidecar drives the *scan cost
accounting* consumed by the performance model and exposes stripe/zone-map
introspection for tests. DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.datum import sort_key
from ..errors import MetadataError, SQLError

STRIPE_ROWS = 10_000

# Modeled compression ratios by column type (zstd-ish, from the columnar
# docs' ballpark numbers).
_COMPRESSION = {
    "int": 4.0, "bigint": 4.0, "float": 2.0, "numeric": 3.0,
    "text": 3.0, "bool": 8.0, "date": 4.0, "timestamp": 4.0, "jsonb": 2.5,
}


@dataclass
class Stripe:
    columns: list  # list[list[values]] column-major
    row_count: int
    min_max: list  # per column: (min_key, max_key) or None


@dataclass
class ColumnarStore:
    table_name: str
    column_names: list
    column_types: list
    stripes: list = field(default_factory=list)
    _open_rows: list = field(default_factory=list)

    def append_rows(self, rows) -> None:
        for row in rows:
            self._open_rows.append(list(row))
            if len(self._open_rows) >= STRIPE_ROWS:
                self._flush()

    def _flush(self) -> None:
        if not self._open_rows:
            return
        n_cols = len(self.column_names)
        columns = [[row[i] for row in self._open_rows] for i in range(n_cols)]
        min_max = []
        for values in columns:
            present = [v for v in values if v is not None]
            if present:
                keys = [sort_key(v) for v in present]
                min_max.append((min(keys), max(keys)))
            else:
                min_max.append(None)
        self.stripes.append(Stripe(columns, len(self._open_rows), min_max))
        self._open_rows = []

    def finalize(self) -> None:
        self._flush()

    # ------------------------------------------------------------- costs

    def column_bytes(self, column: str) -> int:
        """Compressed on-disk bytes of one column."""
        self.finalize()
        index = self.column_names.index(column)
        ratio = _COMPRESSION.get(self.column_types[index], 2.0)
        raw = 0
        for stripe in self.stripes:
            for value in stripe.columns[index]:
                raw += _raw_width(value)
        return int(raw / ratio)

    def total_bytes(self) -> int:
        return sum(self.column_bytes(c) for c in self.column_names)

    def scan_bytes(self, columns: list, predicate_column: str | None = None,
                   low=None, high=None) -> int:
        """Bytes read by a scan projecting ``columns``, with optional
        zone-map pruning on a predicate column range."""
        self.finalize()
        wanted = columns or self.column_names
        pred_index = (
            self.column_names.index(predicate_column) if predicate_column else None
        )
        total = 0
        for stripe in self.stripes:
            if pred_index is not None and stripe.min_max[pred_index] is not None:
                smin, smax = stripe.min_max[pred_index]
                if low is not None and smax < sort_key(low):
                    continue
                if high is not None and smin > sort_key(high):
                    continue
            for column in wanted:
                index = self.column_names.index(column)
                ratio = _COMPRESSION.get(self.column_types[index], 2.0)
                raw = sum(_raw_width(v) for v in stripe.columns[index])
                total += int(raw / ratio)
        return total

    @property
    def stripe_count(self) -> int:
        self.finalize()
        return len(self.stripes)


def _raw_width(value) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value) + 4
    return 16


def set_access_method(ext, session, table_name: str, method: str) -> None:
    """alter_table_set_access_method('t', 'columnar'): converts a Citus or
    local table to columnar organization."""
    if method not in ("columnar", "heap"):
        raise MetadataError(f"unknown access method {method!r}")
    catalog = ext.instance.catalog
    shell = catalog.get_table(table_name)
    shell.access_method = method
    cache = ext.metadata.cache
    if cache.is_citus_table(table_name):
        dist = cache.get_table(table_name)
        for shard in dist.shards:
            for node in ext.metadata.all_placements(shard.shardid):
                instance = ext.cluster.node(node)
                if instance.catalog.has_table(shard.shard_name):
                    shard_table = instance.catalog.get_table(shard.shard_name)
                    shard_table.access_method = method
                    if method == "columnar":
                        _attach_store(instance, shard_table)
    elif method == "columnar":
        _attach_store(ext.instance, shell)


def _attach_store(instance, table) -> ColumnarStore:
    store = ColumnarStore(
        table.name,
        table.column_names(),
        [c.type_name for c in table.columns],
    )
    # Load the existing heap contents into stripes.
    snapshot = instance.xids.take_snapshot()
    store.append_rows(
        tup.values for tup in table.heap.scan(snapshot, instance.xids.clog)
    )
    store.finalize()
    table.columnar_store = store
    return store


def get_store(table) -> ColumnarStore | None:
    return getattr(table, "columnar_store", None)


def columnar_scan_cost_pages(table, projected_columns: list | None) -> int:
    """Pages a scan reads: only the projected columns' compressed bytes."""
    store = get_store(table)
    if store is None:
        return table.heap.page_count
    from ..engine.heap import PAGE_SIZE

    wanted = projected_columns or store.column_names
    total = sum(store.column_bytes(c) for c in wanted if c in store.column_names)
    return max(1, total // PAGE_SIZE)
