"""Prometheus text-format snapshot of the cluster's observable state.

``citus_metrics_snapshot()`` renders, in one deterministic scrape:

- every cluster-wide counter and gauge from the shared StatsRegistry
  (``citus_<name>_total{node="..."}`` / ``citus_<name>{node="..."}``),
- wait-event accounting, re-shaped from the ``wait_count:Class.Event`` /
  ``wait_time_us:Class.Event`` counters into
  ``citus_wait_events_total{class=...,event=...,node=...}`` and
  ``citus_wait_time_seconds_total{...}``,
- latency/size histograms as Prometheus summaries (`_count`, `_sum`,
  quantile gauges),
- per-node health: up/down, open connections, parked-statement queue
  depth, and pgbouncer pool lease occupancy.

Output is sorted so two snapshots of identical state are byte-identical —
tests and diffing tools rely on that.
"""

from __future__ import annotations

import re

from ..engine.stats import stats_for
from ..engine.waitevents import COUNT_PREFIX, TIME_PREFIX

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(raw: str) -> str:
    return "citus_" + _NAME_RE.sub("_", raw)


def _escape(value) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(**kwargs) -> str:
    items = [(k, v) for k, v in kwargs.items() if v not in (None, "")]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _parse_wait_key(name: str) -> tuple[str, str]:
    wclass, _, event = name.partition(".")
    return wclass, event


def metrics_snapshot(ext) -> str:
    registry = stats_for(ext.cluster if ext.cluster is not None else ext)
    snap = registry.snapshot()
    lines: list[str] = []

    # --- wait events (pulled out of the counter namespace first) ---
    wait_counts: list[tuple] = []
    wait_times: list[tuple] = []
    plain_counters: list[tuple] = []
    for name in sorted(snap.counters):
        for node in sorted(snap.counters[name]):
            value = snap.counters[name][node]
            if name.startswith(COUNT_PREFIX):
                wclass, event = _parse_wait_key(name[len(COUNT_PREFIX):])
                wait_counts.append((wclass, event, node, value))
            elif name.startswith(TIME_PREFIX):
                wclass, event = _parse_wait_key(name[len(TIME_PREFIX):])
                wait_times.append((wclass, event, node, value / 1e6))
            else:
                plain_counters.append((name, node, value))

    lines.append("# TYPE citus_wait_events_total counter")
    for wclass, event, node, value in wait_counts:
        lines.append(
            "citus_wait_events_total"
            + _labels(**{"class": wclass, "event": event, "node": node})
            + f" {_format_value(value)}"
        )
    lines.append("# TYPE citus_wait_time_seconds_total counter")
    for wclass, event, node, seconds in wait_times:
        lines.append(
            "citus_wait_time_seconds_total"
            + _labels(**{"class": wclass, "event": event, "node": node})
            + f" {_format_value(seconds)}"
        )

    # --- plain counters ---
    previous = None
    for name, node, value in plain_counters:
        metric = _metric_name(name) + "_total"
        if metric != previous:
            lines.append(f"# TYPE {metric} counter")
            previous = metric
        lines.append(metric + _labels(node=node) + f" {_format_value(value)}")

    # --- gauges ---
    previous = None
    for name in sorted(snap.gauges):
        metric = _metric_name(name)
        for node in sorted(snap.gauges[name]):
            if metric != previous:
                lines.append(f"# TYPE {metric} gauge")
                previous = metric
            lines.append(
                metric + _labels(node=node)
                + f" {_format_value(snap.gauges[name][node])}"
            )

    # --- histograms, as summaries ---
    for name, hist in sorted(registry.histograms().items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q, p in (("0.5", 50), ("0.95", 95), ("0.99", 99)):
            lines.append(
                metric + _labels(quantile=q)
                + f" {_format_value(hist.percentile(p))}"
            )
        lines.append(f"{metric}_sum {_format_value(hist.sum)}")
        lines.append(f"{metric}_count {hist.count}")

    # --- transaction co-access graph + window ring ---
    graph = getattr(ext, "txn_graph", None)
    if graph is not None:
        lines.extend(graph.prometheus_lines(_format_value, _labels))

    # --- active session history ring ---
    sampler = getattr(ext, "ash", None)
    if sampler is not None:
        lines.extend(sampler.prometheus_lines(_format_value, _labels))

    # --- per-node health ---
    nodes = ({ext.instance.name: ext.instance} if ext.cluster is None
             else ext.cluster.nodes)
    up_lines, conn_lines, queue_lines, pool_lines = [], [], [], []
    for name in sorted(nodes):
        instance = nodes[name]
        up_lines.append(
            "citus_node_up" + _labels(node=name)
            + f" {1 if instance.is_up else 0}"
        )
        conn_lines.append(
            "citus_node_connections" + _labels(node=name)
            + f" {len(instance.sessions)}"
        )
        queue_lines.append(
            "citus_node_parked_statements" + _labels(node=name)
            + f" {len(instance._parked)}"
        )
        local = getattr(instance, "_stats_registry", None)
        if local is not None:
            leases = local.snapshot().gauges.get("pool_leases")
            if leases:
                pool_lines.append(
                    "citus_node_pool_leases" + _labels(node=name)
                    + f" {sum(leases.values())}"
                )
    lines.append("# TYPE citus_node_up gauge")
    lines.extend(up_lines)
    lines.append("# TYPE citus_node_connections gauge")
    lines.extend(conn_lines)
    lines.append("# TYPE citus_node_parked_statements gauge")
    lines.extend(queue_lines)
    if pool_lines:
        lines.append("# TYPE citus_node_pool_leases gauge")
        lines.extend(pool_lines)

    return "\n".join(lines) + "\n"
