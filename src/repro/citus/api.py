"""High-level convenience API: build Citus clusters in one call.

>>> from repro.citus import make_cluster
>>> citus = make_cluster(workers=4)
>>> session = citus.coordinator_session()
>>> session.execute("CREATE TABLE t (key int PRIMARY KEY, value text)")
>>> session.execute("SELECT create_distributed_table('t', 'key')")

``make_cluster(0)`` builds the paper's "Citus 0+1" configuration (a single
server sharding locally); ``workers=n`` adds ``n`` worker nodes.
"""

from __future__ import annotations

from ..engine import InstanceSpec
from ..net import Cluster, NetworkSpec
from .extension import CitusConfig, CitusExtension, install_citus


class CitusCluster:
    """A cluster with the Citus extension installed on every node."""

    def __init__(self, cluster: Cluster, coordinator_name: str = "coordinator",
                 config: CitusConfig | None = None):
        self.cluster = cluster
        self.coordinator_name = coordinator_name
        self.config = config or CitusConfig()
        self.extensions: dict[str, CitusExtension] = {}

    @property
    def coordinator(self):
        return self.cluster.node(self.coordinator_name)

    @property
    def coordinator_ext(self) -> CitusExtension:
        return self.extensions[self.coordinator_name]

    def coordinator_session(self, application_name: str = "app"):
        return self.coordinator.connect(application_name)

    def worker_names(self) -> list[str]:
        return [n for n in self.cluster.node_names() if n != self.coordinator_name]

    def session_on(self, node_name: str, application_name: str = "app"):
        return self.cluster.node(node_name).connect(application_name)

    # --------------------------------------------------------- lifecycle

    def add_worker(self, name: str, spec: InstanceSpec | None = None):
        instance = self.cluster.add_node(name, spec)
        self.extensions[name] = install_citus(
            instance, self.cluster, self.config, is_coordinator=False
        )
        session = self.coordinator_session("admin")
        try:
            session.execute("SELECT citus_add_node($1)", [name])
        finally:
            session.close()
        return instance

    def enable_metadata_sync(self) -> None:
        """Every worker becomes able to coordinate (§3.2.1)."""
        session = self.coordinator_session("admin")
        try:
            for name in self.worker_names():
                session.execute("SELECT start_metadata_sync_to_node($1)", [name])
        finally:
            session.close()

    def run_maintenance(self) -> dict:
        return self.coordinator_ext.run_maintenance()

    def pump(self, rounds: int = 10) -> int:
        """Drive parked (lock-waiting) statements on every node until no
        further progress. Returns how many statements progressed."""
        total = 0
        for _ in range(rounds):
            progressed = 0
            for name in self.cluster.node_names():
                instance = self.cluster.node(name)
                if instance.is_up:
                    progressed += instance.pump()
            total += progressed
            if not progressed:
                break
        return total

    def restore_to_point(self, name: str) -> None:
        """Restore every node to the named distributed restore point, then
        complete in-doubt 2PCs through recovery (§3.9)."""
        for node_name in self.cluster.node_names():
            self.cluster.node(node_name).restore_to_point(name)
        # Metadata caches must be rebuilt from the restored tables.
        for node_name, ext in self.extensions.items():
            instance = self.cluster.node(node_name)
            ext.instance = instance
            session = instance.connect("restore")
            try:
                ext.metadata.create_tables(session)
                ext.metadata.reload(session)
            finally:
                session.close()
        self.run_maintenance()


def make_cluster(workers: int = 4, shard_count: int = 32,
                 spec: InstanceSpec | None = None,
                 network_spec: NetworkSpec | None = None,
                 coordinator_in_metadata: bool | None = None,
                 max_connections: int = 1000,
                 config: CitusConfig | None = None) -> CitusCluster:
    """Create a coordinator + ``workers`` worker nodes, install Citus
    everywhere, and register the workers.

    ``workers=0`` registers the coordinator itself as the (only) worker —
    the paper's "Citus 0+1" single-server configuration.
    """
    cluster = Cluster(spec=spec, network_spec=network_spec,
                      max_connections=max_connections)
    config = config or CitusConfig(shard_count=shard_count)
    config.shard_count = shard_count
    citus = CitusCluster(cluster, config=config)
    coordinator = cluster.add_node(citus.coordinator_name)
    citus.extensions[citus.coordinator_name] = install_citus(
        coordinator, cluster, config, is_coordinator=True
    )
    if workers == 0:
        session = coordinator.connect("admin")
        try:
            session.execute("SELECT citus_add_node($1)", [citus.coordinator_name])
        finally:
            session.close()
    else:
        for i in range(workers):
            citus.add_worker(f"worker{i + 1}")
    return citus
