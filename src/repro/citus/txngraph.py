"""Distributed-transaction co-access graph + time-windowed statistics.

The multi-tenant story (§2, §3.8) hinges on keeping transactions
single-node; the substrate a co-location policy needs is an *observed*
record of which shards transactions actually touch together. This module
records, at distributed-transaction end (the 1PC and 2PC commit paths and
the adaptive executor's autocommit statement end), the transaction's
**access set** — (node, shard group, tenant distribution key, read/write
role, bytes) — and folds it into a weighted co-access graph:

- **vertex** = one co-located shard group, with lifetime txn/write/byte
  totals and a per-tenant touch count;
- **edge** = a pair of shard groups touched by the same transaction,
  weighted by count and bytes and tagged by how the transaction committed
  (``single_node`` / ``cross_node`` / ``twopc``).

Layered over the graph and the shared counter registry are
**time-bucketed windows**: a pg_stat_monitor-style ring of N fixed-width
buckets stamped from the simulated clock. Each bucket carries the counter
deltas accrued while it was current (diffed from a registry snapshot taken
at bucket open), a latency histogram of executor statements that *ended*
in it, and the co-access edges folded in it — so recent behavior is
queryable separately from lifetime aggregates, and edge recency (the
"recent" weight Lion-style policies want) falls out of the ring for free.

Everything is driven by virtual time and deterministic insertion order, so
two same-seed runs serialize byte-for-byte identical graph and window
dumps.

Cost model: the graph is attached to the extension as a plain attribute
(``ext.txn_graph``), ``None`` when ``citus.enable_txn_graph`` is off, so
the executor's hot path pays exactly one attribute load + ``is None`` test
per capture point when disabled.
"""

from __future__ import annotations

import json
from collections import Counter, deque

from ..engine.stats import LogHistogram, StatsRegistry

#: Transactions touching more shard groups than this skip pairwise edge
#: folding (the vertex totals still update) — a 32-shard analytical scan
#: would otherwise fold ~500 edges per statement.
MAX_EDGE_FANOUT = 16

#: Access-set attribute caps on trace spans (2PC commit paths).
_SPAN_ATTR_CAP = 8


def group_label(group) -> str:
    """Render a shard group tuple ``(colocation_id, shard_index)`` as the
    stable vertex name used in rows, JSON, DOT, and Prometheus labels."""
    if group is None:
        return "?"
    return f"c{group[0]}.s{group[1]}"


class TxnAccessSet:
    """Per-session collector: the access set of the transaction in flight.

    ``pending`` holds the statement currently executing (discarded
    wholesale if the statement fails or parks); ``txn`` accumulates the
    committed statements of an explicit transaction block. Keys are
    ``(node, shard_group, tenant)``; values are ``[reads, writes, bytes]``.
    """

    __slots__ = ("pending", "txn", "explicit", "twopc", "onepc")

    def __init__(self):
        self.pending: dict = {}
        self.txn: dict = {}
        self.explicit = False
        self.twopc = False
        self.onepc = False

    def commit_statement(self) -> None:
        """The statement succeeded: move its accesses into the txn set."""
        if not self.pending:
            return
        txn = self.txn
        for key, entry in self.pending.items():
            kept = txn.get(key)
            if kept is None:
                txn[key] = entry
            else:
                kept[0] += entry[0]
                kept[1] += entry[1]
                kept[2] += entry[2]
        self.pending = {}

    def discard_statement(self) -> None:
        self.pending = {}

    def reset(self) -> None:
        self.pending = {}
        self.txn = {}
        self.explicit = False
        self.twopc = False
        self.onepc = False

    # ------------------------------------------------------------ summary

    def summary(self) -> dict:
        """Access-set attributes for 2PC/1PC trace spans: distinct nodes,
        shard groups, and tenants (sorted, capped)."""
        nodes: set = set()
        groups: set = set()
        tenants: set = set()
        for source in (self.txn, self.pending):
            for node, group, tenant in source:
                nodes.add(node)
                if group is not None:
                    groups.add(group)
                if tenant is not None:
                    tenants.add(str(tenant))
        return {
            "access_nodes": sorted(nodes)[:_SPAN_ATTR_CAP],
            "access_groups": sorted(group_label(g) for g in groups)[:_SPAN_ATTR_CAP],
            "access_tenants": sorted(tenants)[:_SPAN_ATTR_CAP],
        }


class _Bucket:
    """One fixed-width window bucket.

    While current, it holds a registry snapshot from its open; on close
    the snapshot is diffed into ``counters`` and dropped. ``hist`` takes
    one observation per executor statement that ended inside the bucket;
    ``edges`` counts co-access edges folded inside it.
    """

    __slots__ = ("index", "statements", "hist", "edges", "txns",
                 "multi_group", "cross_node", "twopc",
                 "baseline", "counters", "closed")

    def __init__(self, index: int, baseline=None):
        self.index = index
        self.statements = 0
        self.hist = LogHistogram()
        self.edges: Counter = Counter()
        self.txns = 0
        self.multi_group = 0
        self.cross_node = 0
        self.twopc = 0
        self.baseline = baseline
        self.counters: dict | None = None
        self.closed = False


class WindowRing:
    """Ring of N fixed-duration buckets over the simulated clock.

    Rollover is lazy: every recording or read calls :meth:`roll` with the
    current virtual time, which closes the current bucket (materializing
    its counter delta), back-fills empty buckets for idle gaps (bounded by
    the ring size), and opens the bucket containing ``now``. A timestamp
    exactly on a boundary belongs to the *later* bucket (``int(t / width)``).
    Retention: only the newest N buckets (closed ring + current) survive.
    """

    def __init__(self, registry: StatsRegistry):
        self.registry = registry
        self.width = 0.0
        self.nbuckets = 0
        self.ring: deque = deque()
        self.current: _Bucket | None = None

    def configure(self, width: float, nbuckets: int) -> None:
        width = float(width)
        nbuckets = max(1, int(nbuckets))
        if width == self.width and nbuckets == self.nbuckets:
            return
        self.width = width
        self.nbuckets = nbuckets
        self.reset()

    def reset(self) -> None:
        """Drop all buckets; the current bucket reopens on the next roll
        with a fresh counter baseline (reset-mid-bucket semantics)."""
        self.ring = deque(maxlen=max(0, self.nbuckets - 1))
        self.current = None

    # ------------------------------------------------------------ rolling

    def _close(self, bucket: _Bucket) -> None:
        bucket.counters = self.registry.snapshot().diff(bucket.baseline).as_dict()
        bucket.baseline = None
        bucket.closed = True

    def roll(self, now: float) -> _Bucket | None:
        if self.width <= 0:
            return None
        index = int(now / self.width)
        current = self.current
        if current is not None and index <= current.index:
            return current
        if current is not None:
            self._close(current)
            self.ring.append(current)
            # Idle gaps materialize as empty closed buckets so windows read
            # as "nothing happened", not "time never passed". Bounded: only
            # gaps that would still be inside the ring are created.
            for i in range(max(current.index + 1, index - self.nbuckets + 1),
                           index):
                gap = _Bucket(i)
                gap.counters = {}
                gap.closed = True
                self.ring.append(gap)
        self.current = _Bucket(index, baseline=self.registry.snapshot())
        return self.current

    # ------------------------------------------------------------ reading

    def buckets(self, now: float) -> list[_Bucket]:
        """All retained buckets oldest-first, after rolling to ``now``."""
        self.roll(now)
        out = list(self.ring)
        if self.current is not None:
            out.append(self.current)
        return out

    def bucket_counters(self, bucket: _Bucket) -> dict:
        if bucket.closed:
            return bucket.counters or {}
        return self.registry.snapshot().diff(bucket.baseline).as_dict()

    def recent_edge_weights(self) -> Counter:
        total: Counter = Counter()
        for bucket in self.ring:
            total.update(bucket.edges)
        if self.current is not None:
            total.update(self.current.edges)
        return total

    def recent_txn_totals(self) -> tuple[int, int, int]:
        """(txns, multi_group, cross_node) summed over retained buckets."""
        txns = multi = cross = 0
        buckets = list(self.ring)
        if self.current is not None:
            buckets.append(self.current)
        for b in buckets:
            txns += b.txns
            multi += b.multi_group
            cross += b.cross_node
        return txns, multi, cross


class _EdgeStats:
    __slots__ = ("txns", "writes", "bytes", "single_node", "cross_node",
                 "twopc", "tenant_pairs")

    def __init__(self):
        self.txns = 0
        self.writes = 0
        self.bytes = 0
        self.single_node = 0
        self.cross_node = 0
        self.twopc = 0
        self.tenant_pairs: Counter = Counter()


class _VertexStats:
    __slots__ = ("txns", "writes", "bytes", "tenants")

    def __init__(self):
        self.txns = 0
        self.writes = 0
        self.bytes = 0
        self.tenants: Counter = Counter()


class TxnGraph:
    """The cluster-shared co-access graph + window ring.

    One instance per cluster (attached via :func:`txngraph_for`, like the
    stats registry and tracer), reached from the executor and the 2PC
    callbacks through ``ext.txn_graph`` — ``None`` when the GUC is off.
    """

    #: Session attribute holding the per-transaction access collector.
    ATTR = "_citus_txn_access"

    def __init__(self, clock, registry: StatsRegistry):
        self.clock = clock
        self.registry = registry
        self.windows = WindowRing(registry)
        self.edges: dict[tuple, _EdgeStats] = {}
        self.vertices: dict[tuple, _VertexStats] = {}
        self.wide_txns = 0

    def configure(self, window_seconds: float, window_buckets: int) -> None:
        self.windows.configure(window_seconds, window_buckets)

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    # ------------------------------------------------------------ capture

    def access_of(self, session) -> TxnAccessSet | None:
        return getattr(session, self.ATTR, None)

    def note_access(self, session, node: str, group, is_write: bool,
                    nbytes: int) -> None:
        """Record one task/stream/flush touching a shard group. Called from
        the executor's capture points only while the graph is enabled."""
        acc = getattr(session, self.ATTR, None)
        if acc is None:
            acc = TxnAccessSet()
            setattr(session, self.ATTR, acc)
        if session.in_transaction:
            acc.explicit = True
        key = (node, group, getattr(session, "_citus_tenant", None))
        entry = acc.pending.get(key)
        if entry is None:
            acc.pending[key] = [0 if is_write else 1, 1 if is_write else 0,
                                nbytes]
        else:
            entry[1 if is_write else 0] += 1
            entry[2] += nbytes

    def statement_begin(self) -> None:
        """Roll the window ring at statement start, so the statement's
        counter increments accrue to the bucket containing its start."""
        self.windows.roll(self._now())

    def statement_done(self, session, elapsed: float) -> None:
        """Executor statement end: observe its latency into the bucket
        containing its end time, commit its accesses into the transaction
        set, and — for autocommit statements that will never reach the
        commit callbacks (no local xid, no registered worker transactions)
        — fold the access set immediately."""
        bucket = self.windows.roll(self._now())
        if bucket is not None:
            bucket.statements += 1
            bucket.hist.observe(elapsed)
        acc = getattr(session, self.ATTR, None)
        if acc is None:
            return
        acc.commit_statement()
        if (not session.in_transaction and not session.remote_txns
                and session.xid is None):
            self.fold(session)

    def discard_statement(self, session) -> None:
        acc = getattr(session, self.ATTR, None)
        if acc is not None:
            acc.discard_statement()

    def abort_txn(self, session) -> None:
        acc = getattr(session, self.ATTR, None)
        if acc is None:
            return
        if acc.txn or acc.pending:
            self.registry.incr("txngraph_txns_aborted")
        acc.reset()

    # --------------------------------------------------------------- fold

    def fold(self, session) -> None:
        """Transaction end: classify the collected access set, update the
        lifetime graph and the current window bucket, bump the shared
        counters, and clear the collector."""
        acc = getattr(session, self.ATTR, None)
        if acc is None:
            return
        acc.commit_statement()
        entries = acc.txn
        if not entries:
            acc.reset()
            return
        nodes: set = set()
        groups: dict[tuple, list] = {}  # group -> [writes, bytes, tenants set]
        for (node, group, tenant), (reads, writes, nbytes) in entries.items():
            nodes.add(node)
            if group is None:
                continue
            info = groups.get(group)
            if info is None:
                info = groups[group] = [0, 0, set()]
            info[0] += writes
            info[1] += nbytes
            if tenant is not None:
                info[2].add(str(tenant))

        twopc = acc.twopc
        cross_node = len(nodes) > 1
        multi_group = len(groups) > 1
        explicit = acc.explicit
        kind = "twopc" if twopc else ("cross_node" if cross_node
                                      else "single_node")
        registry = self.registry
        registry.incr("txngraph_txns")
        if multi_group:
            registry.incr("txngraph_txns_multi_group")
        if cross_node:
            registry.incr("txngraph_txns_cross_node")
        if twopc:
            registry.incr("txngraph_txns_2pc")
        if explicit:
            registry.incr("txngraph_txns_block")
            if multi_group:
                registry.incr("txngraph_txns_block_multi_group")

        bucket = self.windows.roll(self._now())
        if bucket is not None:
            bucket.txns += 1
            if multi_group:
                bucket.multi_group += 1
            if cross_node:
                bucket.cross_node += 1
            if twopc:
                bucket.twopc += 1

        for group, (writes, nbytes, tenants) in groups.items():
            vertex = self.vertices.get(group)
            if vertex is None:
                vertex = self.vertices[group] = _VertexStats()
            vertex.txns += 1
            if writes:
                vertex.writes += 1
            vertex.bytes += nbytes
            for tenant in tenants:
                vertex.tenants[tenant] += 1

        if multi_group:
            if len(groups) > MAX_EDGE_FANOUT:
                # A very wide transaction (analytical fan-out) would fold
                # O(groups²) edges; count it instead of quadratic folding.
                self.wide_txns += 1
                registry.incr("txngraph_wide_txns")
            else:
                ordered = sorted(groups)
                for a_idx in range(len(ordered)):
                    for b_idx in range(a_idx + 1, len(ordered)):
                        a, b = ordered[a_idx], ordered[b_idx]
                        key = (a, b)
                        edge = self.edges.get(key)
                        if edge is None:
                            edge = self.edges[key] = _EdgeStats()
                        edge.txns += 1
                        info_a, info_b = groups[a], groups[b]
                        if info_a[0] or info_b[0]:
                            edge.writes += 1
                        edge.bytes += info_a[1] + info_b[1]
                        setattr(edge, kind, getattr(edge, kind) + 1)
                        pair = (",".join(sorted(info_a[2])) or None,
                                ",".join(sorted(info_b[2])) or None)
                        if pair != (None, None):
                            edge.tenant_pairs[pair] += 1
                        if bucket is not None:
                            bucket.edges[key] += 1
        acc.reset()

    # ------------------------------------------------------------ resets

    def reset_graph(self) -> None:
        """citus_stat_reset('graph'): clear the lifetime edge/vertex
        aggregates. Window buckets and shared counters have their own
        scopes ('windows' / 'counters')."""
        self.edges.clear()
        self.vertices.clear()
        self.wide_txns = 0

    def reset_windows(self) -> None:
        """citus_stat_reset('windows'): drop every bucket; the current
        bucket restarts at the next event with a fresh counter baseline."""
        self.windows.reset()

    # ------------------------------------------------------------ reading

    def edge_records(self) -> list[dict]:
        recent = self.windows.recent_edge_weights()
        records = []
        for (a, b) in sorted(self.edges):
            edge = self.edges[(a, b)]
            records.append({
                "src": group_label(a),
                "dst": group_label(b),
                "txns": edge.txns,
                "writes": edge.writes,
                "bytes": edge.bytes,
                "single_node": edge.single_node,
                "cross_node": edge.cross_node,
                "twopc": edge.twopc,
                "recent_txns": recent.get((a, b), 0),
            })
        return records

    def vertex_records(self) -> list[dict]:
        records = []
        for group in sorted(self.vertices):
            vertex = self.vertices[group]
            top = sorted(vertex.tenants.items(),
                         key=lambda kv: (-kv[1], kv[0]))[:5]
            records.append({
                "shard": group_label(group),
                "txns": vertex.txns,
                "writes": vertex.writes,
                "bytes": vertex.bytes,
                "tenants": len(vertex.tenants),
                "top_tenants": [t for t, _ in top],
            })
        return records

    def as_json(self) -> str:
        payload = {
            "vertices": self.vertex_records(),
            "edges": [
                dict(record, tenant_pairs=[
                    ["|".join(p or "" for p in pair), count]
                    for pair, count in sorted(
                        self.edges[key].tenant_pairs.items(),
                        key=lambda kv: (-kv[1], kv[0]))[:5]
                ])
                for key, record in zip(sorted(self.edges),
                                       self.edge_records())
            ],
            "wide_txns": self.wide_txns,
        }
        return json.dumps(payload, sort_keys=True)

    def as_dot(self) -> str:
        """GraphViz dump: cross-node/2PC edges render dashed/bold so the
        distributed-transaction hot pairs jump out."""
        lines = ["graph citus_txn_graph {"]
        for record in self.vertex_records():
            lines.append(
                f'  "{record["shard"]}" [label="{record["shard"]}'
                f'\\ntxns={record["txns"]}"];'
            )
        for record in self.edge_records():
            style = "solid"
            if record["twopc"]:
                style = "bold"
            elif record["cross_node"]:
                style = "dashed"
            lines.append(
                f'  "{record["src"]}" -- "{record["dst"]}"'
                f' [label="{record["txns"]}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def window_records(self) -> list[dict]:
        width = self.windows.width
        records = []
        buckets = self.windows.buckets(self._now())
        for bucket in buckets:
            counters = self.windows.bucket_counters(bucket)
            hist = bucket.hist
            records.append({
                "bucket": bucket.index,
                "start_s": bucket.index * width,
                "end_s": (bucket.index + 1) * width,
                "current": not bucket.closed,
                "statements": bucket.statements,
                "p50_ms": hist.percentile(50) * 1000.0,
                "p95_ms": hist.percentile(95) * 1000.0,
                "p99_ms": hist.percentile(99) * 1000.0,
                "txns": bucket.txns,
                "txns_multi_group": bucket.multi_group,
                "txns_cross_node": bucket.cross_node,
                "txns_2pc": bucket.twopc,
                "edge_txns": sum(bucket.edges.values()),
                "counters": json.dumps(counters, sort_keys=True),
            })
        return records

    def cross_shard_summary(self) -> dict:
        """Recent cross-shard behavior for EXPLAIN ANALYZE annotation."""
        txns, multi, cross = self.windows.recent_txn_totals()
        return {
            "recent_txns": txns,
            "recent_multi_group_fraction": round(multi / txns, 6) if txns else 0.0,
            "recent_cross_node_fraction": round(cross / txns, 6) if txns else 0.0,
        }

    # --------------------------------------------------------- prometheus

    def prometheus_lines(self, format_value, labels) -> list[str]:
        """Graph/window metric families for ``citus_metrics_snapshot``.
        Emitted in sorted-key order; ``format_value`` / ``labels`` are the
        snapshot module's canonical formatters so escaping and float
        rendering stay byte-identical with the rest of the scrape."""
        lines = [
            "# TYPE citus_txn_graph_edges gauge",
            f"citus_txn_graph_edges {len(self.edges)}",
            "# TYPE citus_txn_graph_vertices gauge",
            f"citus_txn_graph_vertices {len(self.vertices)}",
        ]
        edge_txns, edge_bytes = [], []
        for (a, b) in sorted(self.edges):
            edge = self.edges[(a, b)]
            lbl = labels(src=group_label(a), dst=group_label(b))
            edge_txns.append(f"citus_txn_graph_edge_txns_total{lbl} {edge.txns}")
            edge_bytes.append(
                f"citus_txn_graph_edge_bytes_total{lbl} {edge.bytes}")
        if edge_txns:
            lines.append("# TYPE citus_txn_graph_edge_txns_total counter")
            lines.extend(edge_txns)
            lines.append("# TYPE citus_txn_graph_edge_bytes_total counter")
            lines.extend(edge_bytes)
        vertex_lines = []
        for group in sorted(self.vertices):
            lbl = labels(shard=group_label(group))
            vertex_lines.append(
                f"citus_txn_graph_vertex_txns_total{lbl}"
                f" {self.vertices[group].txns}")
        if vertex_lines:
            lines.append("# TYPE citus_txn_graph_vertex_txns_total counter")
            lines.extend(vertex_lines)
        window_stmt, window_txns, window_p99 = [], [], []
        for bucket in self.windows.buckets(self._now()):
            lbl = labels(bucket=str(bucket.index))
            window_stmt.append(
                f"citus_txn_window_statements{lbl} {bucket.statements}")
            window_txns.append(f"citus_txn_window_txns{lbl} {bucket.txns}")
            window_p99.append(
                f"citus_txn_window_statement_p99_seconds{lbl}"
                f" {format_value(bucket.hist.percentile(99))}")
        if window_stmt:
            lines.append("# TYPE citus_txn_window_statements gauge")
            lines.extend(window_stmt)
            lines.append("# TYPE citus_txn_window_txns gauge")
            lines.extend(window_txns)
            lines.append("# TYPE citus_txn_window_statement_p99_seconds gauge")
            lines.extend(window_p99)
        return lines


_HOLDER_ATTR = "_citus_txn_graph"


def txngraph_for(holder, clock, registry: StatsRegistry) -> TxnGraph:
    """The co-access graph attached to ``holder`` (the cluster), creating
    it on first use — the same holder-attribute pattern as ``stats_for``
    and ``trace_for``, so every node's extension folds into one graph."""
    graph = getattr(holder, _HOLDER_ATTR, None)
    if graph is None:
        graph = TxnGraph(clock, registry)
        setattr(holder, _HOLDER_ATTR, graph)
    return graph
