"""Distributed DDL: table distribution and schema propagation (§3.3, §3.8).

``create_distributed_table`` converts a regular table into a hash-
distributed table: shards are created on the workers (round-robin), the
``pg_dist_*`` metadata is written, existing rows are moved into the shards,
and the local table becomes an empty shell intercepted by the planner
hooks. ``create_reference_table`` replicates a single shard to every node
including the coordinator.

Schema changes (CREATE INDEX / ALTER TABLE / DROP / TRUNCATE) on Citus
tables are intercepted by the utility hook and propagated to every shard
with table names rewritten, preserving PostgreSQL's transactional-DDL feel
at the statement level.
"""

from __future__ import annotations

from ..engine.catalog import Table
from ..engine.datum import hash_value, is_hash_distributable
from ..errors import MetadataError
from ..sql import ast as A
from ..sql.deparse import deparse
from .metadata import (
    HASH,
    REFERENCE,
    ShardInterval,
    split_hash_ranges,
)


class DistributedDDL:
    def __init__(self, ext):
        self.ext = ext

    # ----------------------------------------------------------- creation

    def create_distributed_table(self, session, table_name: str, dist_column: str,
                                 colocate_with: str | None = None,
                                 shard_count: int | None = None) -> None:
        cache = self.ext.metadata.cache
        if cache.is_citus_table(table_name):
            raise MetadataError(f"table {table_name!r} is already distributed")
        table = self.ext.instance.catalog.get_table(table_name)
        column = table.column(dist_column)
        if not is_hash_distributable(column.type_name):
            raise MetadataError(
                f"column {dist_column!r} of type {column.type_name!r} cannot be"
                " hash-distributed"
            )
        self._validate_unique_constraints(table, dist_column)

        colocation_id, shard_count = self._resolve_colocation(
            session, colocate_with, column.type_name, shard_count
        )
        shard_ids = self.ext.allocate_shard_ids(shard_count)
        ranges = split_hash_ranges(shard_count)
        shards = [
            ShardInterval(sid, table_name, lo, hi)
            for sid, (lo, hi) in zip(shard_ids, ranges)
        ]
        placements = self._place_shards(shards, colocation_id, colocate_with)

        # Create the physical shard tables before metadata so that a failure
        # leaves no metadata pointing at missing shards.
        for i, shard in enumerate(shards):
            self._create_shard_on_node(table, shard.shard_name, placements[shard.shardid],
                                       shard_index=i)
        self.ext.metadata.record_distributed_table(
            session, table_name, HASH, dist_column, colocation_id, shards, placements
        )
        self._move_existing_rows(session, table, table_name)
        self.ext.sync_metadata_if_enabled(session)

    def create_range_distributed_table(self, session, table_name: str,
                                       dist_column: str, ranges: list) -> None:
        """Range partitioning (§3.3.1: "available for some advanced use
        cases"). ``ranges`` is a sorted list of [min, max] pairs of integer
        distribution column values; they must not overlap."""
        from .metadata import RANGE

        cache = self.ext.metadata.cache
        if cache.is_citus_table(table_name):
            raise MetadataError(f"table {table_name!r} is already distributed")
        table = self.ext.instance.catalog.get_table(table_name)
        column = table.column(dist_column)
        if column.type_name not in ("int", "bigint"):
            raise MetadataError(
                "range distribution requires an integer distribution column"
                " in this reproduction"
            )
        self._validate_unique_constraints(table, dist_column)
        parsed = [(int(lo), int(hi)) for lo, hi in ranges]
        if not parsed:
            raise MetadataError("range distribution requires at least one range")
        for lo, hi in parsed:
            if lo > hi:
                raise MetadataError(f"invalid shard range [{lo}, {hi}]")
        for (_, hi1), (lo2, _) in zip(parsed, parsed[1:]):
            if lo2 <= hi1:
                raise MetadataError("shard ranges must be sorted and disjoint")
        shard_ids = self.ext.allocate_shard_ids(len(parsed))
        shards = [
            ShardInterval(sid, table_name, lo, hi)
            for sid, (lo, hi) in zip(shard_ids, parsed)
        ]
        colocation_id = self.ext.metadata.record_colocation_group(
            session, len(parsed), f"range:{column.type_name}"
        )
        nodes = self._worker_nodes()
        placements = {
            shard.shardid: nodes[i % len(nodes)] for i, shard in enumerate(shards)
        }
        for i, shard in enumerate(shards):
            self._create_shard_on_node(table, shard.shard_name,
                                       placements[shard.shardid], shard_index=i)
        self.ext.metadata.record_distributed_table(
            session, table_name, RANGE, dist_column, colocation_id, shards, placements
        )
        self._move_existing_rows(session, table, table_name)
        self.ext.sync_metadata_if_enabled(session)

    def create_reference_table(self, session, table_name: str) -> None:
        cache = self.ext.metadata.cache
        if cache.is_citus_table(table_name):
            raise MetadataError(f"table {table_name!r} is already distributed")
        table = self.ext.instance.catalog.get_table(table_name)
        shard_id = self.ext.allocate_shard_ids(1)[0]
        shard = ShardInterval(shard_id, table_name, None, None)
        nodes = self._reference_nodes()
        for node in nodes:
            self._create_shard_on_node(table, shard.shard_name, node, shard_index=None)
        colocation_id = self.ext.metadata.record_colocation_group(session, 1, None)
        self.ext.metadata.record_distributed_table(
            session, table_name, REFERENCE, None, colocation_id, [shard],
            {shard_id: nodes},
        )
        self._move_existing_rows(session, table, table_name)
        self.ext.sync_metadata_if_enabled(session)

    # ------------------------------------------------------------ helpers

    def _validate_unique_constraints(self, table: Table, dist_column: str) -> None:
        constraint_sets = []
        if table.primary_key:
            constraint_sets.append(table.primary_key)
        constraint_sets.extend(table.unique_constraints)
        for cols in constraint_sets:
            if dist_column not in cols:
                raise MetadataError(
                    "cannot create constraint without the distribution column:"
                    f" unique constraint on {cols} must include {dist_column!r}"
                )

    def _resolve_colocation(self, session, colocate_with, column_type, shard_count):
        cache = self.ext.metadata.cache
        if colocate_with and colocate_with not in ("default", "none"):
            target = cache.get_table(colocate_with)
            if target.is_reference:
                raise MetadataError("cannot co-locate with a reference table")
            if target.dist_column_type != column_type:
                raise MetadataError(
                    "cannot colocate tables with different distribution column types"
                    f" ({target.dist_column_type} vs {column_type})"
                )
            return target.colocation_id, target.shard_count
        shard_count = shard_count or self.ext.config.shard_count
        if colocate_with != "none":
            # Implicit co-location by distribution column type (§3.3.2).
            for cid, (count, ctype) in cache.colocation_groups.items():
                if ctype == column_type and count == shard_count:
                    return cid, count
        cid = self.ext.metadata.record_colocation_group(session, shard_count, column_type)
        return cid, shard_count

    def _place_shards(self, shards, colocation_id, colocate_with) -> dict:
        """Round-robin placement; co-located tables copy the placement of an
        existing table in the group so their shard ranges stay aligned."""
        cache = self.ext.metadata.cache
        nodes = self._worker_nodes()
        existing = [
            t for t in cache.colocated_tables(colocation_id) if t.shards
        ]
        placements = {}
        if existing:
            template = existing[0]
            for i, shard in enumerate(shards):
                placements[shard.shardid] = cache.placement_node(
                    template.shards[i].shardid
                )
        else:
            for i, shard in enumerate(shards):
                placements[shard.shardid] = nodes[i % len(nodes)]
        return placements

    def _worker_nodes(self) -> list[str]:
        nodes = list(self.ext.metadata.cache.nodes)
        if not nodes:
            # Single-node Citus ("Citus 0+1"): the coordinator is the worker.
            nodes = [self.ext.instance.name]
        return nodes

    def _reference_nodes(self) -> list[str]:
        nodes = self._worker_nodes()
        if self.ext.instance.name not in nodes:
            nodes = [self.ext.instance.name] + nodes
        return nodes

    def _create_shard_on_node(self, table: Table, shard_name: str, node: str,
                              shard_index: int | None) -> None:
        stmts = shard_ddl_statements(self.ext, table, shard_name, shard_index)
        conn = self.ext.worker_connection(node)
        for stmt_sql in stmts:
            conn.execute(stmt_sql)

    def _move_existing_rows(self, session, table: Table, table_name: str) -> None:
        """Existing rows move from the shell table into the shards."""
        snapshot = session.snapshot()
        clog = self.ext.instance.xids.clog
        rows = [list(t.values) for t in table.heap.scan(snapshot, clog)]
        if rows:
            from .copy_dist import distribute_rows

            distribute_rows(self.ext, session, table_name, rows, table.column_names())
        # Reset the shell's storage: data now lives in shards.
        table.heap.__init__(table_name)
        for index in table.indexes.values():
            from ..engine.instance import _fresh_index_structure

            index.data = _fresh_index_structure(index)

    # ----------------------------------------------------- DDL propagation

    def propagate_create_index(self, session, stmt: A.CreateIndex) -> None:
        dist = self.ext.metadata.cache.get_table(stmt.table)
        for shard in dist.shards:
            for node in self.ext.metadata.all_placements(shard.shardid):
                shard_stmt = stmt.copy()
                shard_stmt.name = f"{stmt.name}_{shard.shardid}"
                shard_stmt.table = shard.shard_name
                self.ext.worker_connection(node).execute(deparse(shard_stmt))

    def propagate_alter_table(self, session, stmt: A.AlterTable) -> None:
        dist = self.ext.metadata.cache.get_table(stmt.table)
        cache = self.ext.metadata.cache
        for i, shard in enumerate(dist.shards):
            for node in self.ext.metadata.all_placements(shard.shardid):
                shard_stmt = stmt.copy()
                shard_stmt.table = shard.shard_name
                if stmt.action == "add_foreign_key" and stmt.foreign_key is not None:
                    shard_stmt.foreign_key.ref_table = self._rewrite_fk_target(
                        stmt.foreign_key.ref_table, cache, dist, i
                    )
                self.ext.worker_connection(node).execute(deparse(shard_stmt))

    def propagate_drop_table(self, session, name: str) -> None:
        dist = self.ext.metadata.cache.get_table(name)
        for shard in dist.shards:
            for node in self.ext.metadata.all_placements(shard.shardid):
                self.ext.worker_connection(node).execute(
                    f"DROP TABLE IF EXISTS {shard.shard_name}"
                )
        self.ext.metadata.drop_table_metadata(session, name)

    def propagate_truncate(self, session, name: str) -> None:
        dist = self.ext.metadata.cache.get_table(name)
        for shard in dist.shards:
            for node in self.ext.metadata.all_placements(shard.shardid):
                self.ext.worker_connection(node).execute(
                    f"TRUNCATE TABLE {shard.shard_name}"
                )

    def _rewrite_fk_target(self, ref_table: str, cache, dist, shard_index: int) -> str:
        ref_dist = cache.tables.get(ref_table)
        if ref_dist is None:
            raise MetadataError(
                f"foreign key from distributed table to local table {ref_table!r}"
                " is not supported"
            )
        if ref_dist.is_reference:
            return ref_dist.shards[0].shard_name
        if ref_dist.colocation_id != dist.colocation_id:
            raise MetadataError(
                "foreign keys between distributed tables require co-location"
            )
        return ref_dist.shards[shard_index].shard_name


def table_to_create_stmt(table: Table) -> A.CreateTable:
    """Rebuild a CREATE TABLE AST from a catalog Table."""
    columns = []
    for col in table.columns:
        columns.append(
            A.ColumnDef(
                name=col.name,
                # Serial columns must stay serial on the shards so their
                # sequences fire there (shard-local sequences, like Citus).
                type_name="serial" if col.is_serial else col.type_name,
                not_null=col.not_null,
                default=col.default,
            )
        )
    fks = [
        A.ForeignKeyDef(list(fk.columns), fk.ref_table, list(fk.ref_columns), fk.name)
        for fk in table.foreign_keys
    ]
    return A.CreateTable(
        name=table.name,
        columns=columns,
        primary_key=list(table.primary_key),
        unique_constraints=[list(u) for u in table.unique_constraints],
        foreign_keys=fks,
        using=None if table.access_method == "heap" else table.access_method,
    )


def shard_ddl_statements(ext, table: Table, shard_name: str,
                         shard_index: int | None) -> list[str]:
    """The SQL that creates one shard: CREATE TABLE with foreign keys
    rewritten to co-located shard / reference replica names, plus the
    table's secondary indexes. ``shard_index`` is the position of this
    shard within its table's shard list (None for reference tables)."""
    cache = ext.metadata.cache
    stmt = table_to_create_stmt(table)
    stmt.name = shard_name
    shard_suffix = shard_name.rsplit("_", 1)[1]
    kept_fks = []
    for fk in stmt.foreign_keys:
        ref_dist = cache.tables.get(fk.ref_table)
        if ref_dist is None:
            # FK to a local table: only legal before distribution; shards
            # cannot enforce it, mirroring Citus's restriction.
            continue
        if ref_dist.is_reference:
            fk.ref_table = ref_dist.shards[0].shard_name
        else:
            # Co-located FK: same shard index.
            if shard_index is not None and shard_index < len(ref_dist.shards):
                fk.ref_table = ref_dist.shards[shard_index].shard_name
            else:
                continue
        kept_fks.append(fk)
    stmt.foreign_keys = kept_fks
    statements = [deparse(stmt)]
    for index in table.indexes.values():
        if index.name.endswith("_pkey") or "_ukey_" in index.name or index.name.endswith("_fk_idx"):
            continue  # recreated implicitly from constraints
        idx_stmt = A.CreateIndex(
            name=f"{index.name}_{shard_suffix}",
            table=shard_name,
            exprs=[e.copy() for e in index.exprs],
            unique=index.unique,
            using=index.method,
        )
        statements.append(deparse(idx_stmt))
    return statements


def shard_id_for_value(dist, value) -> int:
    """The shardid that owns a distribution column value."""
    index = dist.shard_index_for_value(value)
    return dist.shards[index].shardid
