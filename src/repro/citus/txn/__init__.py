"""Distributed transactions: 2PC, recovery, deadlock detection."""
