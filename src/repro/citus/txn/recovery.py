"""2PC recovery (§3.7.2).

Run by the maintenance daemon: compare each worker's pending prepared
transactions (those with this coordinator's gid prefix) against the local
``pg_dist_transaction`` commit records.

- Commit record present (visible) → the coordinator committed, so the
  prepared transaction must COMMIT PREPARED.
- No record for a gid whose coordinator transaction has ended → the
  coordinator aborted before writing records, so ROLLBACK PREPARED.

Resolved commit records are garbage-collected afterwards.
"""

from __future__ import annotations

from ...errors import ReproError


def _timed_recovery(tracer, conn, name: str, gid: str, fn) -> None:
    """Run one recovery resolution, recording it as a 2pc span sized by
    the connection's elapsed delta when a trace is being collected."""
    if tracer is None:
        fn()
        return
    before = conn.elapsed
    start = tracer.clock.now()
    try:
        fn()
    finally:
        tracer.add_span(name, "2pc", start, start + (conn.elapsed - before),
                        node=conn.node_name, gid=gid)


def _in_flight_gids(ext) -> set:
    """Gids of 2PCs currently between phase one and phase two on a live
    backend (their outcome is not yet decided by the local commit)."""
    gids = set()
    for session in ext.instance.sessions:
        for _conn, gid in getattr(session, "_citus_prepared", None) or ():
            gids.add(gid)
    return gids


def recover_prepared_transactions(ext) -> dict:
    """Returns {"committed": n, "aborted": n} for observability."""
    stats = {"committed": 0, "aborted": 0}
    counters = ext.stat_counters
    counters.incr("recovery_rounds")
    session = ext.instance.connect("citus_recovery")
    try:
        prefix = f"citus_{ext.instance.name}_"
        known_gids = set()
        all_reachable = True
        for node in ext.all_node_names():
            try:
                worker = ext.cluster.node(node)
            except ReproError:
                all_reachable = False
                continue
            if not worker.is_up:
                all_reachable = False
                continue
            in_flight = _in_flight_gids(ext)
            for gid in list(worker.prepared_txns):
                if not gid.startswith(prefix):
                    continue  # another coordinator owns this one
                if gid in in_flight:
                    continue  # the coordinator transaction has not ended yet
                known_gids.add(gid)
                conn = ext.worker_connection(node)
                tracer = ext.tracer
                if tracer is None or not tracer.active:
                    tracer = None
                if ext.metadata.commit_record_exists(session, gid):
                    _timed_recovery(tracer, conn, "2pc.recover_commit", gid,
                                    lambda: conn.execute(f"COMMIT PREPARED '{gid}'"))
                    stats["committed"] += 1
                    counters.incr("recovery_committed", node=node)
                else:
                    _timed_recovery(tracer, conn, "2pc.recover_abort", gid,
                                    lambda: conn.execute(f"ROLLBACK PREPARED '{gid}'"))
                    stats["aborted"] += 1
                    counters.incr("recovery_aborted", node=node)
        # Garbage-collect commit records whose prepared transactions are
        # gone — but only when every node could be checked this round: a
        # down node may still hold a prepared transaction whose record we
        # must keep until it resolves.
        if all_reachable:
            for (gid,) in session.execute(
                "SELECT gid FROM pg_dist_transaction"
            ).rows:
                if gid.startswith(prefix) and gid not in known_gids:
                    ext.metadata.delete_commit_record(session, gid)
                    counters.incr("recovery_records_gced")
        return stats
    finally:
        session.close()
