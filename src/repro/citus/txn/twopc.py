"""Distributed transactions: 1PC delegation and two-phase commit (§3.7).

Wired into the engine's transaction callbacks:

- **pre-commit** — if the coordinator transaction touched exactly one
  worker transaction, send a plain COMMIT (single-node delegation, §3.7.1:
  the worker "provides the same transactional guarantees as a single
  PostgreSQL server"). If it touched several, run phase one: PREPARE
  TRANSACTION on every participant, then write a commit record per
  prepared transaction into ``pg_dist_transaction`` — the records become
  durable atomically with the local commit.
- **post-commit** — phase two: COMMIT PREPARED on a best-effort basis;
  failures are left for the recovery daemon.
- **abort** — ROLLBACK (or ROLLBACK PREPARED) everywhere, best-effort.
"""

from __future__ import annotations

import itertools

from ...errors import ReproError
from ..executor.placement import SessionPools

_gid_counter = itertools.count(1)


def make_gid(coordinator_name: str, backend_pid: int) -> str:
    return f"citus_{coordinator_name}_{backend_pid}_{next(_gid_counter)}"


class TransactionCallbacks:
    """The pre-commit / post-commit / abort hooks Citus installs."""

    def __init__(self, ext):
        self.ext = ext

    def _tracer(self):
        """The active tracer, or None when nothing is collecting. 2PC
        spans get their extent from per-connection elapsed deltas — the
        commit path never advances the cluster clock, so span times are
        reconstructed the same way the executor's timeline is."""
        tracer = self.ext.tracer
        if tracer is not None and tracer.active:
            return tracer
        return None

    @staticmethod
    def _timed(session, tracer, conn, name: str, wait_event: str, fn, **attrs):
        """Run ``fn()``, record it as a TwoPC wait event on the coordinator
        session (sized by the connection's elapsed delta), and — while a
        trace is being collected — as a 2pc-phase span."""
        before = conn.elapsed
        start = tracer.clock.now() if tracer is not None else 0.0
        try:
            return fn()
        finally:
            delta = conn.elapsed - before
            session.wait_events.record("TwoPC", wait_event, delta,
                                       node=conn.node_name)
            if tracer is not None:
                tracer.add_span(name, "2pc", start, start + delta,
                                node=conn.node_name, **attrs)

    # ----------------------------------------------------------- pre-commit

    def pre_commit(self, session) -> None:
        pools = getattr(session, SessionPools.ATTR, None)
        if pools is None:
            return
        participants = pools.txn_connections()
        if not participants:
            return
        # Read-only participants commit with a plain COMMIT; only writers
        # need atomic commitment.
        writers = [c for c in participants if getattr(c, "did_write", False)]
        readers = [c for c in participants if c not in writers]
        for conn in readers:
            conn.execute("COMMIT")
            conn.in_txn_block = False
        if not writers:
            pools.end_transaction()
            return
        counters = self.ext.stat_counters
        tracer = self._tracer()
        graph = self.ext.txn_graph
        access = graph.access_of(session) if graph is not None else None
        access_attrs = (access.summary()
                        if access is not None and tracer is not None else {})
        if len(writers) == 1:
            # Single worker transaction: delegate, no 2PC needed (§3.7.1).
            conn = writers[0]
            if access is not None:
                access.onepc = True
            self._timed(session, tracer, conn, "commit.1pc", "Commit1PC",
                        lambda: conn.execute("COMMIT"), **access_attrs)
            conn.in_txn_block = False
            session.stats["citus_1pc_commits"] += 1
            counters.incr("onepc_commits", node=conn.node_name)
            pools.end_transaction()
            return
        # Phase one: prepare every writer.
        prepared: list[tuple] = []  # (conn, gid)
        self.ext.stats["2pc_count"] += 1
        session.stats["citus_2pc_commits"] += 1
        counters.incr("twopc_transactions")
        if access is not None:
            access.twopc = True
        participants = writers
        for conn in participants:
            gid = make_gid(self.ext.instance.name, session.backend_pid)
            try:
                self._timed(
                    session, tracer, conn, "2pc.prepare", "Prepare",
                    lambda c=conn, g=gid: c.execute(f"PREPARE TRANSACTION '{g}'"),
                    gid=gid,
                )
            except Exception:
                # Prepare failed: abort the already-prepared participants
                # and the local transaction.
                counters.incr("twopc_prepare_failures", node=conn.node_name)
                for other_conn, other_gid in prepared:
                    _best_effort(other_conn, f"ROLLBACK PREPARED '{other_gid}'")
                    counters.incr("twopc_rollback_prepared", node=other_conn.node_name)
                for other in participants:
                    if other is not conn and all(other is not c for c, _ in prepared):
                        _best_effort(other, "ROLLBACK")
                conn.in_txn_block = False
                pools.end_transaction()
                raise
            conn.in_txn_block = False
            counters.incr("twopc_prepares", node=conn.node_name)
            prepared.append((conn, gid))
        # Commit records: become durable together with the local commit.
        for _conn, gid in prepared:
            self.ext.metadata.write_commit_record(session, gid)
        if tracer is not None:
            tracer.event("2pc.commit_records", "2pc", records=len(prepared),
                         **access_attrs)
        session._citus_prepared = prepared  # handed to post-commit

    # ---------------------------------------------------------- post-commit

    def post_commit(self, session) -> None:
        prepared = getattr(session, "_citus_prepared", None)
        if prepared:
            tracer = self._tracer()
            for conn, gid in prepared:
                if self.ext.failpoints.get("skip_commit_prepared"):
                    # Failure injection: leave the prepared transaction for
                    # the recovery daemon.
                    continue
                self._timed(
                    session, tracer, conn, "2pc.commit_prepared",
                    "CommitPrepared",
                    lambda c=conn, g=gid: _best_effort(c, f"COMMIT PREPARED '{g}'"),
                    gid=gid,
                )
                self.ext.stat_counters.incr(
                    "twopc_commit_prepared", node=conn.node_name
                )
            session._citus_prepared = None
        pools = getattr(session, SessionPools.ATTR, None)
        if pools is not None:
            pools.end_transaction()
        graph = self.ext.txn_graph
        if graph is not None:
            # The transaction is durably committed everywhere: fold its
            # access set (collected across every statement and tagged
            # 1PC/2PC by pre-commit) into the co-access graph.
            graph.fold(session)

    # --------------------------------------------------------------- abort

    def abort(self, session) -> None:
        tracer = self._tracer()
        prepared = getattr(session, "_citus_prepared", None)
        if prepared:
            # The local commit failed after phase one: without visible
            # commit records, recovery must abort these; do it eagerly.
            for conn, gid in prepared:
                self._timed(
                    session, tracer, conn, "2pc.rollback_prepared",
                    "RollbackPrepared",
                    lambda c=conn, g=gid: _best_effort(c, f"ROLLBACK PREPARED '{g}'"),
                    gid=gid,
                )
                self.ext.stat_counters.incr(
                    "twopc_rollback_prepared", node=conn.node_name
                )
            session._citus_prepared = None
        pools = getattr(session, SessionPools.ATTR, None)
        if pools is None:
            return
        for conn in pools.txn_connections():
            self._timed(session, tracer, conn, "rollback", "Rollback",
                        lambda c=conn: _best_effort(c, "ROLLBACK"))
            conn.in_txn_block = False
        pools.end_transaction()
        graph = self.ext.txn_graph
        if graph is not None:
            graph.abort_txn(session)


def _best_effort(conn, sql: str) -> None:
    try:
        conn.execute(sql)
    except ReproError:
        pass
