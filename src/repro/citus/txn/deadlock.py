"""Distributed deadlock detection (§3.7.3).

A background daemon on the coordinator polls every worker for the edges of
its local lock wait-for graph, maps each backend to its distributed
transaction (assigned by the adaptive executor when a worker transaction
opens), merges nodes belonging to the same distributed transaction, and —
if the merged graph has a cycle — cancels the backend of the *youngest*
distributed transaction in the cycle.

Citus uses detection rather than wound-wait because PostgreSQL's
interactive protocol may have already returned results to the client, so
transactions cannot be silently restarted.
"""

from __future__ import annotations

from ...errors import ReproError
from ..executor.placement import SessionPools


def assign_distributed_txn_ids(ext, session) -> int:
    """Tag the coordinator transaction and all of its worker transactions
    with one distributed transaction id (lazily, on first multi-node use)."""
    dist_id = getattr(session, "_citus_dist_txn_id", None)
    if dist_id is None:
        dist_id = ext.next_distributed_txn_id()
        session._citus_dist_txn_id = dist_id
        if session.xid is not None:
            ext.instance.dist_txn_ids[session.xid] = (ext.instance.name, dist_id)
    pools = getattr(session, SessionPools.ATTR, None)
    if pools is not None:
        for conn in pools.all_connections():
            worker_xid = conn.session.xid
            if worker_xid is not None:
                worker_instance = conn.session.instance
                worker_instance.dist_txn_ids[worker_xid] = (ext.instance.name, dist_id)
    return dist_id


def detect_distributed_deadlocks(ext) -> list[int]:
    """One detection round. Returns the distributed txn ids cancelled."""
    # Gather (waiter, holder) edges from every node, including the
    # coordinator itself, expressed in distributed txn ids where known.
    edges: dict[tuple, set[tuple]] = {}
    backend_location: dict[tuple, list[tuple]] = {}  # dist id -> [(node, xid)]
    ext.stat_counters.incr("deadlock_checks")
    nodes = set(ext.all_node_names()) | {ext.instance.name}
    for name in nodes:
        try:
            instance = ext.cluster.node(name) if ext.cluster else ext.instance
        except ReproError:
            continue
        if name == ext.instance.name:
            instance = ext.instance
        if not instance.is_up:
            continue
        for waiter_xid, holder_xid in instance.locks.wait_graph_edges():
            waiter = _dist_key(instance, waiter_xid)
            holder = _dist_key(instance, holder_xid)
            if waiter == holder:
                continue  # same distributed transaction: not a deadlock edge
            edges.setdefault(waiter, set()).add(holder)
            # Only waiting backends are candidates for cancellation.
            backend_location.setdefault(waiter, []).append((name, waiter_xid))

    from ...engine.locks import find_cycle

    cancelled = []
    cycle = find_cycle(edges)
    while cycle:
        victim = _youngest(cycle)
        for node_name, xid in backend_location.get(victim, []):
            instance = ext.cluster.node(node_name) if ext.cluster else ext.instance
            instance.cancel_backend(xid)
        cancelled.append(victim)
        ext.stats["distributed_deadlocks"] += 1
        ext.stat_counters.incr("deadlock_victims")
        # Remove the victim and look for further cycles.
        edges.pop(victim, None)
        for holders in edges.values():
            holders.discard(victim)
        cycle = find_cycle(edges)
    return cancelled


def _dist_key(instance, xid: int):
    """Distributed txn id when assigned, else a node-local key."""
    mapped = instance.dist_txn_ids.get(xid)
    if mapped is not None:
        return ("dist",) + mapped
    return ("local", instance.name, xid)


def _youngest(cycle):
    """The youngest transaction: highest distributed id (assigned in start
    order); local-only transactions compare by xid."""

    def sort_key(key):
        if key[0] == "dist":
            return (1, key[2])
        return (0, key[2])

    return max(cycle, key=sort_key)
