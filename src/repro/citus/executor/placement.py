"""Per-session worker connection pools.

Citus caches connections per backend for reuse across statements; within a
transaction, connections carry shard-group affinity state. The pools hang
off the coordinator session object and are torn down when the Citus
transaction callbacks fire (commit/abort close the txn blocks but keep the
connections cached, matching "Citus caches connections for higher
performance" in §3.2.1).
"""

from __future__ import annotations

from ...net.network import RemoteConnection


class SessionPools:
    ATTR = "_citus_pools"

    def __init__(self, ext, session):
        self.ext = ext
        self.session = session
        self.by_node: dict[str, list[RemoteConnection]] = {}

    @classmethod
    def for_session(cls, session, ext) -> "SessionPools":
        pools = getattr(session, cls.ATTR, None)
        if pools is None:
            pools = cls(ext, session)
            setattr(session, cls.ATTR, pools)
        return pools

    # ------------------------------------------------------------- access

    def _usable(self, node: str, conn: RemoteConnection) -> bool:
        """A cached connection is dead once its node crashed or was
        replaced by a promoted standby."""
        if conn.closed or not conn.session.instance.is_up:
            return False
        current = self.ext.cluster.nodes.get(node) if self.ext.cluster else None
        return current is None or current is conn.session.instance

    def idle_connections(self, node: str) -> list[RemoteConnection]:
        alive = []
        for conn in self.by_node.get(node, []):
            if self._usable(node, conn):
                alive.append(conn)
            elif not conn.closed:
                conn.closed = True  # drop zombies from the pool
                # The zombie still holds a shared-pool slot and an entry in
                # the active-connection gauge; release both, or a crashed
                # node permanently shrinks max_shared_pool_size.
                self.ext.release_shared_slot(node)
                self.ext.stat_counters.gauge_decr("connections_active", node=node)
                self.ext.stat_counters.incr("connections_dropped", node=node)
        return alive

    def connection_for_group(self, node: str, shard_group) -> RemoteConnection | None:
        """The connection that already accessed this co-located shard group
        inside the current transaction, if any."""
        if shard_group is None:
            return None
        for conn in self.by_node.get(node, []):
            if self._usable(node, conn) and shard_group in conn.accessed_groups:
                return conn
        return None

    def open_connection(self, node: str) -> RemoteConnection:
        conn = self.ext.cluster.connect(node, application_name="citus")
        self.by_node.setdefault(node, []).append(conn)
        self.ext.stat_counters.gauge_incr("connections_active", node=node)
        return conn

    def all_connections(self) -> list[RemoteConnection]:
        return [c for conns in self.by_node.values() for c in conns if not c.closed]

    def txn_connections(self) -> list[RemoteConnection]:
        return [c for c in self.all_connections() if c.in_txn_block]

    # ----------------------------------------------------------- lifecycle

    def end_transaction(self) -> None:
        """Reset per-transaction state, keep connections cached."""
        for conn in self.all_connections():
            conn.in_txn_block = False
            conn.did_write = False
            conn.accessed_groups.clear()
        self.session.remote_txns.clear()

    def close_all(self) -> None:
        for conns in self.by_node.values():
            for conn in conns:
                if not conn.closed:
                    conn.close()
                    self.ext.release_shared_slot(conn.node_name)
                    self.ext.stat_counters.gauge_decr(
                        "connections_active", node=conn.node_name
                    )
        self.by_node.clear()
