"""Adaptive executor and connection placement."""
