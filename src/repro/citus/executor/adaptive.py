"""Adaptive executor (§3.6.1).

Runs a distributed plan's tasks over per-worker connection pools with:

- **slow start** — a statement begins with one connection per worker; every
  10 ms (simulated) the number of connections it may open grows by one, so
  sub-millisecond index lookups never pay for extra connections while long
  analytical tasks fan out to full parallelism;
- **shared connection limit** — a per-worker cap shared by all sessions on
  this node (``citus.max_shared_pool_size``), tracked in "shared memory"
  (the extension object);
- **connection affinity** — within a transaction, the connection that first
  touched a co-located shard group handles every later task on that group,
  preserving the visibility of uncommitted writes and locks.

Execution is functionally sequential (single-threaded simulation) but the
timeline is reconstructed as if parallel: each task's measured cost is
charged to its connection, and the statement's elapsed time is the maximum
over connections, which is what the simulated clock advances by.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...engine.locks import WouldBlock
from ...errors import NodeUnavailable
from .placement import SessionPools


@dataclass
class ExecutionReport:
    """Telemetry for one distributed statement (consumed by tests and the
    performance model)."""

    task_count: int = 0
    connections_used: int = 0
    connections_opened: int = 0
    connections_reused: int = 0
    elapsed: float = 0.0
    per_node_connections: dict = field(default_factory=dict)


class AdaptiveExecutor:
    def __init__(self, ext):
        self.ext = ext
        self.slow_start_interval = ext.config.executor_slow_start_interval_ms / 1000.0
        self.last_report: ExecutionReport | None = None

    # ------------------------------------------------------------ public

    def execute_tasks(self, session, tasks, is_write: bool = False):
        """Run tasks, return a list of QueryResults aligned with tasks."""
        pools = SessionPools.for_session(session, self.ext)
        report = ExecutionReport(task_count=len(tasks))
        counters = self.ext.stat_counters
        counters.incr("executor_statements")
        need_txn_block = is_write and (session.in_transaction or _multi_group(tasks))
        if session.in_transaction:
            need_txn_block = True

        results: list = [None] * len(tasks)
        by_node: dict[str, list[int]] = {}
        for i, task in enumerate(tasks):
            by_node.setdefault(task.node, []).append(i)

        node_elapsed = []
        with counters.track("executor_statements_in_flight"):
            for node, indexes in by_node.items():
                elapsed = self._run_node_tasks(
                    session, pools, node, [(i, tasks[i]) for i in indexes], results,
                    need_txn_block, report, is_write,
                )
                node_elapsed.append(elapsed)
        report.elapsed = max(node_elapsed, default=0.0)
        if self.ext.cluster is not None:
            self.ext.cluster.clock.advance(report.elapsed)
        report.connections_used = sum(report.per_node_connections.values())
        session.stats["citus_tasks"] += len(tasks)
        session.stats["citus_connections"] += report.connections_opened
        self.last_report = report
        if not session.in_transaction and not need_txn_block:
            # Shard-group affinity only matters within a transaction; drop
            # it so cached connections don't accumulate stale pins.
            for conn in pools.all_connections():
                if not conn.in_txn_block:
                    conn.accessed_groups.clear()
        return results

    # ------------------------------------------------------- per node run

    def _run_node_tasks(self, session, pools: SessionPools, node, indexed_tasks,
                        results, need_txn_block, report, is_write=False) -> float:
        # Phase 1: tasks with transaction affinity MUST run on the
        # connection that already touched their shard group.
        general: list = []
        assigned: dict[int, list] = {}  # id(conn) -> [(i, task)]
        for i, task in indexed_tasks:
            conn = pools.connection_for_group(node, task.shard_group)
            if conn is not None:
                assigned.setdefault(id(conn), []).append((conn, i, task))
            else:
                general.append((i, task))

        # Phase 2: timeline simulation with slow start for the general pool.
        counters = self.ext.stat_counters
        existing = pools.idle_connections(node)
        conns = list(existing)
        preexisting = {id(c) for c in conns} | set(assigned)
        used_conn_ids: set[int] = set()
        opened_this_statement = 0
        busy: dict[int, float] = {id(c): 0.0 for c in conns}

        def open_connection(now: float):
            nonlocal opened_this_statement
            # The shared pool limit never starves a statement of its first
            # connection; beyond that, respect the limit strictly.
            if not self.ext.try_reserve_shared_slot(node, force=not conns):
                return None
            try:
                conn = pools.open_connection(node)
            except NodeUnavailable:
                self.ext.release_shared_slot(node)
                raise
            conns.append(conn)
            busy[id(conn)] = now + self.ext.cluster.network.connection_setup_cost()
            opened_this_statement += 1
            report.connections_opened += 1
            counters.incr("connections_opened", node=node)
            return conn

        # Lock waits may only suspend single-task statements (router / fast
        # path); multi-task statements surface waits as lock timeouts.
        allow_block = report.task_count == 1

        # Run affinity-assigned tasks first on their own connections.
        for bundle in assigned.values():
            for conn, i, task in bundle:
                start = busy.get(id(conn), 0.0)
                cost = self._execute_on(session, conn, task, results, i,
                                        need_txn_block, allow_block, is_write)
                busy[id(conn)] = start + cost
                used_conn_ids.add(id(conn))
                if id(conn) not in [id(c) for c in conns]:
                    conns.append(conn)

        # General pool with slow start: connections may be opened as
        # simulated time passes (n grows by 1 every interval).
        if general and not conns:
            open_connection(0.0)
        pending = list(general)
        while pending:
            if not conns:
                raise NodeUnavailable(f"no connection available to {node}")
            # earliest-free connection
            conn = min(conns, key=lambda c: busy[id(c)])
            now = busy[id(conn)]
            # Slow start: the connection-pool target grows by one every
            # interval; the pool is increased by min(n, pending) (§3.6.1).
            allowance = 1 + int(now / self.slow_start_interval)
            target = min(allowance, len(pending) + sum(1 for c in conns if busy[id(c)] > now))
            if len(conns) < target:
                new_conn = open_connection(now)
                if new_conn is not None:
                    conn = new_conn
                    now = busy[id(conn)]
            i, task = pending.pop(0)
            cost = self._execute_on(session, conn, task, results, i,
                                    need_txn_block, allow_block, is_write)
            busy[id(conn)] = now + cost
            used_conn_ids.add(id(conn))
        report.per_node_connections[node] = len(conns)
        reused = len(used_conn_ids & preexisting)
        if reused:
            report.connections_reused += reused
            counters.incr("connections_reused", reused, node=node)
        return max(busy.values(), default=0.0)

    def _execute_on(self, session, conn, task, results, i, need_txn_block,
                    allow_block=False, is_write=False) -> float:
        # The in-flight gauge is held via track() so that a failing task
        # (node crash, lock timeout, SQL error) can never leave it stuck.
        counters = self.ext.stat_counters
        with counters.track("tasks_in_flight", node=conn.node_name):
            try:
                cost = self._execute_task(session, conn, task, results, i,
                                          need_txn_block, allow_block, is_write)
            except WouldBlock:
                # Lock wait: the statement parks and retries wholesale —
                # an executor suspension, not a task failure.
                counters.incr("tasks_blocked", node=conn.node_name)
                raise
            except Exception:
                counters.incr("tasks_failed", node=conn.node_name)
                raise
        counters.incr("tasks_executed", node=conn.node_name)
        return cost

    def _execute_task(self, session, conn, task, results, i, need_txn_block,
                      allow_block=False, is_write=False) -> float:
        if need_txn_block:
            conn.begin_if_needed()
            session.remote_txns[id(conn)] = conn
            if is_write:
                conn.did_write = True
            # Tag the worker transaction with the distributed txn id up
            # front so deadlock detection can merge the lock graphs even
            # while this statement is still waiting.
            conn.session.ensure_xid()
            from ..txn.deadlock import assign_distributed_txn_ids

            assign_distributed_txn_ids(self.ext, session)
        if task.shard_group is not None:
            conn.accessed_groups.add(task.shard_group)
        before = conn.elapsed
        if task.copy_rows is not None:
            count = conn.copy_rows(task.copy_table, task.copy_rows, task.copy_columns)
            from ...engine.executor import QueryResult

            result = QueryResult([], [], command="COPY")
            result.rowcount = count
        elif task.stmt is not None:
            result = conn.execute_parsed(task.stmt, task.params,
                                         allow_block=allow_block)
        else:
            result = conn.execute(task.sql, task.params, allow_block=allow_block)
        results[i] = result
        # Per-task simulated cost: network latency accrued plus a CPU term
        # proportional to rows produced/affected.
        rows = result.rowcount if result.rowcount else len(result.rows)
        cpu_cost = rows * self.ext.config.per_row_cpu_cost
        return (conn.elapsed - before) + cpu_cost


def _multi_group(tasks) -> bool:
    groups = {t.shard_group for t in tasks}
    nodes = {t.node for t in tasks}
    return len(groups) > 1 or len(nodes) > 1
