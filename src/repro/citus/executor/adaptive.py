"""Adaptive executor (§3.6.1).

Runs a distributed plan's tasks over per-worker connection pools with:

- **slow start** — a statement begins with one connection per worker; every
  10 ms (simulated) the number of connections it may open grows by one, so
  sub-millisecond index lookups never pay for extra connections while long
  analytical tasks fan out to full parallelism;
- **shared connection limit** — a per-worker cap shared by all sessions on
  this node (``citus.max_shared_pool_size``), tracked in "shared memory"
  (the extension object);
- **connection affinity** — within a transaction, the connection that first
  touched a co-located shard group handles every later task on that group,
  preserving the visibility of uncommitted writes and locks.

Execution is functionally sequential (single-threaded simulation) but the
timeline is reconstructed as if parallel: each task's measured cost is
charged to its connection, and the statement's elapsed time is the maximum
over connections, which is what the simulated clock advances by.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...engine.locks import WouldBlock
from ...errors import NodeUnavailable
from .placement import SessionPools


@dataclass
class ExecutionReport:
    """Telemetry for one distributed statement (consumed by tests and the
    performance model)."""

    task_count: int = 0
    connections_used: int = 0
    connections_opened: int = 0
    connections_reused: int = 0
    elapsed: float = 0.0
    per_node_connections: dict = field(default_factory=dict)
    # Streaming pipeline telemetry (zero on the materializing path).
    bytes_streamed: int = 0
    batches_fetched: int = 0
    rows_buffered_peak: int = 0
    early_terminations: int = 0
    tasks_skipped: int = 0
    # Streaming write plane telemetry (zero on the materializing path).
    copy_flushes: int = 0
    copy_rows_routed: int = 0
    copy_bytes_streamed: int = 0
    copy_channel_peak_rows: int = 0


class AdaptiveExecutor:
    def __init__(self, ext):
        self.ext = ext
        self.slow_start_interval = ext.config.executor_slow_start_interval_ms / 1000.0
        self.last_report: ExecutionReport | None = None

    # ------------------------------------------------------------ public

    def execute_tasks(self, session, tasks, is_write: bool = False):
        """Run tasks, return a list of QueryResults aligned with tasks."""
        pools = SessionPools.for_session(session, self.ext)
        report = ExecutionReport(task_count=len(tasks))
        counters = self.ext.stat_counters
        counters.incr("executor_statements")
        need_txn_block = is_write and (session.in_transaction or _multi_group(tasks))
        if session.in_transaction:
            need_txn_block = True

        results: list = [None] * len(tasks)
        by_node: dict[str, list[int]] = {}
        for i, task in enumerate(tasks):
            by_node.setdefault(task.node, []).append(i)

        # Tracing: collect per-task/per-connect timeline events (offsets
        # into this statement's reconstructed-parallel timeline) and emit
        # them as spans anchored at the statement's start time.
        tracer = self.ext.tracer
        if tracer is None or not tracer.active or self.ext.cluster is None:
            tracer = None
        events: list | None = [] if tracer is not None else None
        base = self.ext.cluster.clock.now() if tracer is not None else 0.0

        graph = self.ext.txn_graph
        if graph is not None:
            graph.statement_begin()

        node_elapsed = []
        try:
            with counters.track("executor_statements_in_flight"):
                for node, indexes in by_node.items():
                    elapsed = self._run_node_tasks(
                        session, pools, node, [(i, tasks[i]) for i in indexes],
                        results, need_txn_block, report, is_write, events,
                    )
                    node_elapsed.append(elapsed)
        except BaseException:
            # Failed (or parked-and-retried) statement: its accesses must
            # not count toward the transaction's co-access set.
            if graph is not None:
                graph.discard_statement(session)
            raise
        finally:
            if tracer is not None:
                self._emit_task_spans(tracer, base, events, results)
        report.elapsed = max(node_elapsed, default=0.0)
        if self.ext.cluster is not None:
            self.ext.cluster.clock.advance(report.elapsed)
        report.connections_used = sum(report.per_node_connections.values())
        session.stats["citus_tasks"] += len(tasks)
        session.stats["citus_connections"] += report.connections_opened
        self.last_report = report
        if graph is not None:
            graph.statement_done(session, report.elapsed)
        if not session.in_transaction and not need_txn_block:
            # Shard-group affinity only matters within a transaction; drop
            # it so cached connections don't accumulate stale pins.
            for conn in pools.all_connections():
                if not conn.in_txn_block:
                    conn.accessed_groups.clear()
        return results

    # ------------------------------------------------------- per node run

    def _emit_task_spans(self, tracer, base: float, events: list, results) -> None:
        """Turn recorded timeline events into spans. Offsets are relative
        to the statement start (``base``), matching the executor's
        reconstructed-parallel timeline."""
        for event in events:
            kind = event[0]
            if kind == "connect":
                _, node, start, end = event
                tracer.add_span("connect", "network", base + start, base + end,
                                node=node)
            else:
                _, i, node, start, cost, queued, nbytes, group = event
                result = results[i]
                rows = 0
                if result is not None:
                    rows = result.rowcount or len(result.rows)
                tracer.add_span(
                    "task", "executor", base + start, base + start + cost,
                    node=node, index=i, rows=rows, bytes=nbytes,
                    queued_ms=queued * 1000.0,
                    shard_group=group, retries=0,
                )

    def _run_node_tasks(self, session, pools: SessionPools, node, indexed_tasks,
                        results, need_txn_block, report, is_write=False,
                        events: list | None = None) -> float:
        # Phase 1: tasks with transaction affinity MUST run on the
        # connection that already touched their shard group.
        general: list = []
        assigned: dict[int, list] = {}  # id(conn) -> [(i, task)]
        for i, task in indexed_tasks:
            conn = pools.connection_for_group(node, task.shard_group)
            if conn is not None:
                assigned.setdefault(id(conn), []).append((conn, i, task))
            else:
                general.append((i, task))

        # Phase 2: timeline simulation with slow start for the general pool.
        counters = self.ext.stat_counters
        existing = pools.idle_connections(node)
        conns = list(existing)
        preexisting = {id(c) for c in conns} | set(assigned)
        used_conn_ids: set[int] = set()
        opened_this_statement = 0
        busy: dict[int, float] = {id(c): 0.0 for c in conns}

        def open_connection(now: float):
            nonlocal opened_this_statement
            # The shared pool limit never starves a statement of its first
            # connection; beyond that, respect the limit strictly.
            if not self.ext.try_reserve_shared_slot(node, force=not conns):
                return None
            try:
                conn = pools.open_connection(node)
            except NodeUnavailable:
                self.ext.release_shared_slot(node)
                raise
            setup = self.ext.cluster.network.connection_setup_cost()
            conns.append(conn)
            busy[id(conn)] = now + setup
            opened_this_statement += 1
            report.connections_opened += 1
            counters.incr("connections_opened", node=node)
            session.wait_events.record("Net", "RemoteConnect", setup, node=node)
            if events is not None:
                events.append(("connect", node, now, busy[id(conn)]))
            return conn

        # Lock waits may only suspend single-task statements (router / fast
        # path); multi-task statements surface waits as lock timeouts.
        allow_block = report.task_count == 1

        # Run affinity-assigned tasks first on their own connections.
        conn_ids = {id(c) for c in conns}
        for bundle in assigned.values():
            for conn, i, task in bundle:
                start = busy.get(id(conn), 0.0)
                bytes_before = conn.bytes_transferred
                cost = self._execute_on(session, conn, task, results, i,
                                        need_txn_block, allow_block, is_write)
                if events is not None:
                    events.append(("task", i, conn.node_name, start, cost, start,
                                   conn.bytes_transferred - bytes_before,
                                   task.shard_group))
                busy[id(conn)] = start + cost
                used_conn_ids.add(id(conn))
                if id(conn) not in conn_ids:
                    conns.append(conn)
                    conn_ids.add(id(conn))

        # General pool with slow start: connections may be opened as
        # simulated time passes (n grows by 1 every interval).
        if general and not conns:
            open_connection(0.0)
        pending = list(general)
        while pending:
            if not conns:
                raise NodeUnavailable(f"no connection available to {node}")
            # earliest-free connection
            conn = min(conns, key=lambda c: busy[id(c)])
            now = busy[id(conn)]
            # Slow start: the connection-pool target grows by one every
            # interval; the pool is increased by min(n, pending) (§3.6.1).
            allowance = 1 + int(now / self.slow_start_interval)
            target = min(allowance, len(pending) + sum(1 for c in conns if busy[id(c)] > now))
            if len(conns) < target:
                new_conn = open_connection(now)
                if new_conn is not None:
                    conn = new_conn
                    now = busy[id(conn)]
            i, task = pending.pop(0)
            bytes_before = conn.bytes_transferred
            cost = self._execute_on(session, conn, task, results, i,
                                    need_txn_block, allow_block, is_write)
            if events is not None:
                events.append(("task", i, conn.node_name, now, cost, now,
                               conn.bytes_transferred - bytes_before,
                               task.shard_group))
            busy[id(conn)] = now + cost
            used_conn_ids.add(id(conn))
        report.per_node_connections[node] = len(conns)
        reused = len(used_conn_ids & preexisting)
        if reused:
            report.connections_reused += reused
            counters.incr("connections_reused", reused, node=node)
        return max(busy.values(), default=0.0)

    def _execute_on(self, session, conn, task, results, i, need_txn_block,
                    allow_block=False, is_write=False) -> float:
        # The in-flight gauge is held via track() so that a failing task
        # (node crash, lock timeout, SQL error) can never leave it stuck.
        counters = self.ext.stat_counters
        with counters.track("tasks_in_flight", node=conn.node_name):
            try:
                cost = self._execute_task(session, conn, task, results, i,
                                          need_txn_block, allow_block, is_write)
            except WouldBlock:
                # Lock wait: the statement parks and retries wholesale —
                # an executor suspension, not a task failure.
                counters.incr("tasks_blocked", node=conn.node_name)
                raise
            except Exception:
                counters.incr("tasks_failed", node=conn.node_name)
                raise
        counters.incr("tasks_executed", node=conn.node_name)
        return cost

    def _execute_task(self, session, conn, task, results, i, need_txn_block,
                      allow_block=False, is_write=False) -> float:
        if need_txn_block:
            conn.begin_if_needed()
            session.remote_txns[id(conn)] = conn
            if is_write:
                conn.did_write = True
            # Tag the worker transaction with the distributed txn id up
            # front so deadlock detection can merge the lock graphs even
            # while this statement is still waiting.
            conn.session.ensure_xid()
            from ..txn.deadlock import assign_distributed_txn_ids

            assign_distributed_txn_ids(self.ext, session)
        if task.shard_group is not None:
            conn.accessed_groups.add(task.shard_group)
        graph = self.ext.txn_graph
        bytes_before = conn.bytes_transferred if graph is not None else 0
        before = conn.elapsed
        if task.copy_rows is not None:
            count = conn.copy_rows(task.copy_table, task.copy_rows, task.copy_columns)
            from ...engine.executor import QueryResult

            result = QueryResult([], [], command="COPY")
            result.rowcount = count
        elif task.stmt is not None:
            result = conn.execute_parsed(task.stmt, task.params,
                                         allow_block=allow_block)
        else:
            result = conn.execute(task.sql, task.params, allow_block=allow_block)
        results[i] = result
        # Per-task simulated cost: network latency accrued plus a CPU term
        # proportional to rows produced/affected.
        rows = result.rowcount if result.rowcount else len(result.rows)
        cpu_cost = rows * self.ext.config.per_row_cpu_cost
        cost = (conn.elapsed - before) + cpu_cost
        session.wait_events.record(
            "Net", "RemoteCopy" if task.copy_rows is not None else "RemoteExecute",
            cost, node=conn.node_name,
        )
        if graph is not None:
            graph.note_access(session, conn.node_name, task.shard_group,
                              is_write, conn.bytes_transferred - bytes_before)
        return cost


    # -------------------------------------------------------- streaming

    def open_task_streams(self, session, tasks):
        """Streaming entry point for multi-shard SELECTs: returns a
        :class:`StreamingExecution` whose per-task :class:`TaskStream`
        handles pull row batches on demand, or None when streaming does
        not apply (disabled by GUC, no tasks, or non-SELECT tasks) and the
        caller must fall back to :meth:`execute_tasks`."""
        config = self.ext.config
        if not getattr(config, "enable_streaming_pipeline", True):
            return None
        if not tasks or self.ext.cluster is None:
            return None
        if any(t.copy_rows is not None or not t.returns_rows for t in tasks):
            return None
        return StreamingExecution(self, session, tasks,
                                  batch_size=config.stream_batch_size)

    def open_copy_channels(self, session, expected_by_node=None):
        """Write-side streaming entry point: a :class:`CopyChannelExecution`
        that accepts incremental per-shard COPY flushes. The caller (the
        ShardCopyRouter) decides *whether* streaming writes apply; this
        only builds the execution."""
        return CopyChannelExecution(self, session,
                                    expected_by_node=expected_by_node)


class TaskStream:
    """Pull handle for one task's rows. The remote cursor opens lazily on
    first fetch, so a coordinator merge that is satisfied early never
    dispatches the remaining tasks at all."""

    __slots__ = ("execution", "index", "task", "cursor", "conn", "opened",
                 "done", "failed")

    def __init__(self, execution: "StreamingExecution", index: int, task):
        self.execution = execution
        self.index = index
        self.task = task
        self.cursor = None
        self.conn = None
        self.opened = False
        self.done = False
        self.failed = False

    @property
    def columns(self):
        self.ensure_open()
        return self.cursor.columns

    def ensure_open(self) -> None:
        if not self.opened:
            self.execution._open_stream(self)

    def fetch(self):
        """Next row batch, or None once this shard stream is drained."""
        if self.done:
            return None
        self.ensure_open()
        return self.execution._fetch(self)

    def close(self) -> None:
        self.execution._close_stream(self)


class StreamingExecution:
    """One multi-shard SELECT executed as per-task remote cursors.

    Execution stays functionally sequential (single-threaded simulation),
    but the timeline is reconstructed as if the shard streams drained in
    parallel: every dispatch/fetch charges simulated busy time to the
    connection it ran on — slow start and connection affinity apply
    exactly as on the blocking path — and :meth:`finish` advances the
    clock by the maximum busy time over connections.
    """

    def __init__(self, executor: AdaptiveExecutor, session, tasks, batch_size: int):
        self.executor = executor
        self.ext = executor.ext
        self.session = session
        self.tasks = tasks
        self.batch_size = batch_size
        self.pools = SessionPools.for_session(session, self.ext)
        self.counters = self.ext.stat_counters
        self.report = ExecutionReport(task_count=len(tasks))
        self.streams = [TaskStream(self, i, t) for i, t in enumerate(tasks)]
        self.need_txn_block = session.in_transaction
        self._node_state: dict[str, dict] = {}
        self._unopened: dict[str, int] = {}
        for task in tasks:
            self._unopened[task.node] = self._unopened.get(task.node, 0) + 1
        self._early_noted = False
        self._finished = False
        # Tracing: per-stream timeline events (dispatch, cursor batches,
        # connects), emitted as spans in finish(). Only collected when a
        # trace/capture is active at statement start.
        tracer = self.ext.tracer
        self.tracer = tracer if (tracer is not None and tracer.active) else None
        self.trace_base = (self.ext.cluster.clock.now()
                           if self.tracer is not None else 0.0)
        self._trace_events: dict[int, dict] = {}
        self._trace_connects: list[tuple] = []
        self.graph = self.ext.txn_graph
        if self.graph is not None:
            self.graph.statement_begin()
        self.counters.incr("executor_statements")
        self.counters.gauge_incr("executor_statements_in_flight")

    # -------------------------------------------------- merge-side hooks

    def note_buffered(self, n: int) -> None:
        """Record the coordinator merge's current buffered row count."""
        if n > self.report.rows_buffered_peak:
            self.report.rows_buffered_peak = n

    def note_early_termination(self) -> None:
        """The merge is satisfied with shard streams still undrained."""
        if not self._early_noted:
            self._early_noted = True
            self.report.early_terminations += 1
            self.counters.incr("early_terminations")

    # ------------------------------------------------- per-node timeline

    def _node(self, node: str) -> dict:
        state = self._node_state.get(node)
        if state is None:
            conns = list(self.pools.idle_connections(node))
            state = {
                "conns": conns,
                "busy": {id(c): 0.0 for c in conns},
                "preexisting": {id(c) for c in conns},
                "used": set(),
            }
            self._node_state[node] = state
        return state

    def _open_connection(self, node: str, state: dict, now: float):
        if not self.ext.try_reserve_shared_slot(node, force=not state["conns"]):
            return None
        try:
            conn = self.pools.open_connection(node)
        except NodeUnavailable:
            self.ext.release_shared_slot(node)
            raise
        setup = self.ext.cluster.network.connection_setup_cost()
        state["conns"].append(conn)
        state["busy"][id(conn)] = now + setup
        self.report.connections_opened += 1
        self.counters.incr("connections_opened", node=node)
        self.session.wait_events.record("Net", "RemoteConnect", setup, node=node)
        if self.tracer is not None:
            self._trace_connects.append((node, now, state["busy"][id(conn)]))
        return conn

    def _pick_connection(self, node: str, state: dict):
        conns = state["conns"]
        busy = state["busy"]
        if not conns:
            conn = self._open_connection(node, state, 0.0)
            if conn is None:
                raise NodeUnavailable(f"no connection available to {node}")
            return conn
        conn = min(conns, key=lambda c: busy[id(c)])
        now = busy[id(conn)]
        # Slow start, as on the blocking path: the pool target grows by
        # one per interval of simulated time (§3.6.1).
        allowance = 1 + int(now / self.executor.slow_start_interval)
        in_use = sum(1 for c in conns if busy[id(c)] > now)
        target = min(allowance, self._unopened.get(node, 0) + 1 + in_use)
        if len(conns) < target:
            new_conn = self._open_connection(node, state, now)
            if new_conn is not None:
                conn = new_conn
        return conn

    # ------------------------------------------------------ stream plumbing

    def _open_stream(self, stream: TaskStream) -> None:
        task = stream.task
        node = task.node
        state = self._node(node)
        self._unopened[node] = max(0, self._unopened.get(node, 1) - 1)
        conn = None
        if task.shard_group is not None:
            # Transaction affinity: the connection that already touched
            # this co-located shard group must run the task.
            conn = self.pools.connection_for_group(node, task.shard_group)
            if conn is not None and id(conn) not in state["busy"]:
                state["conns"].append(conn)
                state["busy"][id(conn)] = 0.0
                state["preexisting"].add(id(conn))
        if conn is None:
            conn = self._pick_connection(node, state)
        stream.conn = conn
        stream.opened = True
        state["used"].add(id(conn))
        if self.need_txn_block:
            conn.begin_if_needed()
            self.session.remote_txns[id(conn)] = conn
            conn.session.ensure_xid()
            from ..txn.deadlock import assign_distributed_txn_ids

            assign_distributed_txn_ids(self.ext, self.session)
        if task.shard_group is not None:
            conn.accessed_groups.add(task.shard_group)
        self.counters.gauge_incr("tasks_in_flight", node=node)
        before = conn.elapsed
        try:
            stream.cursor = conn.execute_cursor(
                task.stmt, task.params, batch_size=self.batch_size, sql=task.sql,
            )
        except WouldBlock as block:
            self._stream_finished(stream, failed=True, blocked=True)
            from ...errors import LockTimeout

            raise LockTimeout(f"could not obtain lock: {block}") from None
        except Exception:
            self._stream_finished(stream, failed=True)
            raise
        busy = state["busy"]
        start = busy.get(id(conn), 0.0)
        busy[id(conn)] = start + (conn.elapsed - before)
        self.session.wait_events.record("Net", "RemoteDispatch",
                                        conn.elapsed - before,
                                        node=conn.node_name)
        if self.graph is not None:
            # Read access recorded at dispatch (bytes accrue per fetch), so
            # even a zero-row shard stream appears in the access set.
            self.graph.note_access(self.session, conn.node_name,
                                   task.shard_group, False, 0)
        if self.tracer is not None:
            self._trace_events[stream.index] = {
                "node": conn.node_name,
                "group": task.shard_group,
                "open": (start, busy[id(conn)]),
                "batches": [],
            }

    def _fetch(self, stream: TaskStream):
        conn = stream.conn
        before = conn.elapsed
        try:
            batch = stream.cursor.fetch_batch()
        except WouldBlock as block:
            # Multi-task statements never park; a remote lock wait during
            # a fetch surfaces as a lock timeout, like the blocking path.
            self._stream_finished(stream, failed=True, blocked=True)
            from ...errors import LockTimeout

            raise LockTimeout(f"could not obtain lock: {block}") from None
        except Exception:
            self._stream_finished(stream, failed=True)
            raise
        state = self._node(conn.node_name)
        cost = conn.elapsed - before
        if batch:
            cost += len(batch) * self.ext.config.per_row_cpu_cost
        busy = state["busy"]
        start = busy.get(id(conn), 0.0)
        busy[id(conn)] = start + cost
        self.session.wait_events.record("Net", "RemoteFetch", cost,
                                        node=conn.node_name)
        if self.tracer is not None and stream.index in self._trace_events:
            self._trace_events[stream.index]["batches"].append(
                (start, start + cost,
                 len(batch) if batch else 0,
                 stream.cursor.last_payload if batch else 0)
            )
        if batch is None:
            self._stream_finished(stream)
            return None
        self.report.batches_fetched += 1
        self.report.bytes_streamed += stream.cursor.last_payload
        self.counters.incr("batches_fetched", node=conn.node_name)
        self.counters.incr("bytes_streamed", stream.cursor.last_payload,
                           node=conn.node_name)
        if self.graph is not None:
            self.graph.note_access(self.session, conn.node_name,
                                   stream.task.shard_group, False,
                                   stream.cursor.last_payload)
        return batch

    def _close_stream(self, stream: TaskStream) -> None:
        if stream.done:
            return
        if not stream.opened:
            # Never dispatched: the early-terminated merge skipped this
            # task outright — no connection, no round trips, no worker CPU.
            stream.done = True
            self.report.tasks_skipped += 1
            self.counters.incr("tasks_skipped", node=stream.task.node)
            return
        conn = stream.conn
        before = conn.elapsed
        stream.cursor.close()
        state = self._node(conn.node_name)
        busy = state["busy"]
        start = busy.get(id(conn), 0.0)
        busy[id(conn)] = start + (conn.elapsed - before)
        if self.tracer is not None and stream.index in self._trace_events:
            self._trace_events[stream.index]["close"] = (start, busy[id(conn)])
        self._stream_finished(stream)

    def _stream_finished(self, stream: TaskStream, failed: bool = False,
                         blocked: bool = False) -> None:
        if stream.done:
            return
        stream.done = True
        stream.failed = failed
        node = stream.conn.node_name if stream.conn is not None else stream.task.node
        self.counters.gauge_decr("tasks_in_flight", node=node)
        if blocked:
            self.counters.incr("tasks_blocked", node=node)
        elif failed:
            self.counters.incr("tasks_failed", node=node)
        else:
            self.counters.incr("tasks_executed", node=node)

    def _emit_stream_spans(self) -> None:
        """Emit the collected streaming timeline as spans: one ``task``
        span per dispatched stream with nested ``dispatch``/``batch``
        children, plus ``connect`` spans and zero-duration markers for
        tasks the early-terminated merge never dispatched."""
        tracer = self.tracer
        base = self.trace_base
        for node, start, end in self._trace_connects:
            tracer.add_span("connect", "network", base + start, base + end,
                            node=node)
        for stream in self.streams:
            events = self._trace_events.get(stream.index)
            if events is None:
                # Never dispatched (early-terminated merge skipped it).
                tracer.add_span(
                    "task", "executor", base, base, node=stream.task.node,
                    index=stream.index, rows=0, bytes=0, batches=0,
                    skipped=True, retries=0,
                )
                continue
            open_start, open_end = events["open"]
            end = open_end
            cursor = stream.cursor
            task_span = tracer.add_span(
                "task", "executor", base + open_start, base + open_end,
                node=events["node"], index=stream.index,
                rows=cursor.rows_fetched if cursor is not None else 0,
                bytes=(256 + cursor.bytes_fetched) if cursor is not None else 0,
                batches=cursor.batches_fetched if cursor is not None else 0,
                shard_group=events["group"], retries=0,
            )
            if task_span is None:
                continue
            from ..tracing import Span

            task_span.add(Span("dispatch", "network", base + open_start,
                               base + open_end, node=events["node"]))
            for b_start, b_end, rows, nbytes in events["batches"]:
                task_span.add(Span("batch", "network", base + b_start,
                                   base + b_end, node=events["node"],
                                   attrs={"rows": rows, "bytes": nbytes}))
                end = max(end, b_end)
            close = events.get("close")
            if close is not None:
                task_span.add(Span("close", "network", base + close[0],
                                   base + close[1], node=events["node"]))
                end = max(end, close[1])
            task_span.end = base + end

    # ------------------------------------------------------------ finish

    def finish(self) -> ExecutionReport:
        """Close remaining streams, reconstruct the parallel timeline, and
        settle counters/gauges. Idempotent; always called (``finally``)."""
        if self._finished:
            return self.report
        self._finished = True
        for stream in self.streams:
            if not stream.done:
                try:
                    self._close_stream(stream)
                except Exception:
                    # Teardown must settle gauges even over broken conns.
                    self._stream_finished(stream, failed=True)
        report = self.report
        node_elapsed = [max(state["busy"].values(), default=0.0)
                       for state in self._node_state.values()]
        report.elapsed = max(node_elapsed, default=0.0)
        for node, state in self._node_state.items():
            report.per_node_connections[node] = len(state["conns"])
            reused = len(state["used"] & state["preexisting"])
            if reused:
                report.connections_reused += reused
                self.counters.incr("connections_reused", reused, node=node)
        report.connections_used = sum(report.per_node_connections.values())
        if self.tracer is not None:
            self._emit_stream_spans()
        if self.ext.cluster is not None:
            self.ext.cluster.clock.advance(report.elapsed)
        self.session.stats["citus_tasks"] += len(self.tasks)
        self.session.stats["citus_connections"] += report.connections_opened
        self.counters.gauge_decr("executor_statements_in_flight")
        if report.rows_buffered_peak:
            self.counters.gauge_max("rows_buffered_peak",
                                    report.rows_buffered_peak)
        self.executor.last_report = report
        if self.graph is not None:
            if any(stream.failed for stream in self.streams):
                self.graph.discard_statement(self.session)
            else:
                self.graph.statement_done(self.session, report.elapsed)
        if not self.session.in_transaction and not self.need_txn_block:
            # Shard-group affinity only matters within a transaction; drop
            # it so cached connections don't accumulate stale pins.
            for conn in self.pools.all_connections():
                if not conn.in_txn_block:
                    conn.accessed_groups.clear()
        return report


class CopyChannelExecution:
    """One distributed write statement executed as per-shard COPY channels.

    The write-side counterpart of :class:`StreamingExecution`: the
    ShardCopyRouter hands over bounded row batches ("flushes") as its
    channels fill, instead of one materialized batch per shard at the end.
    Every flush runs inside a worker transaction block registered in
    ``session.remote_txns`` — a mid-stream error aborts through the normal
    statement-failure path and rolls back every shard, and the statement's
    commit settles through the 1PC/2PC callbacks exactly as before.

    Connection affinity pins each shard group to the connection that took
    its first flush, so rows arrive at a shard in routing order and later
    statements in the same transaction see the uncommitted COPY. The
    timeline is reconstructed as if channels flushed in parallel: each
    flush charges simulated busy time to its connection. Because the
    flushes overlap the statement's read side (the distributed SELECT or
    client COPY stream that feeds the router), :meth:`finish` advances the
    clock only by the write timeline's *non-overlapped* remainder — the
    statement's end-to-end time is max(read, write), not read + write,
    which is exactly the pipelining win of §3.8.
    """

    def __init__(self, executor: AdaptiveExecutor, session,
                 expected_by_node=None):
        self.executor = executor
        self.ext = executor.ext
        self.session = session
        self.pools = SessionPools.for_session(session, self.ext)
        self.counters = self.ext.stat_counters
        self.report = ExecutionReport()
        self._node_state: dict[str, dict] = {}
        # Slow-start sizing hint: how many channels may still open per node
        # (the count of destination shards placed there).
        self._unopened: dict[str, int] = dict(expected_by_node or {})
        self._channels: dict = {}  # channel key -> per-channel state
        self._finished = False
        # Clock position when routing began: everything the read side
        # advances between now and finish() overlaps the write timeline.
        self._start_clock = (self.ext.cluster.clock.now()
                             if self.ext.cluster is not None else 0.0)
        tracer = self.ext.tracer
        self.tracer = tracer if (tracer is not None and tracer.active) else None
        self.trace_base = (self.ext.cluster.clock.now()
                           if self.tracer is not None else 0.0)
        self._trace_connects: list[tuple] = []
        self.graph = self.ext.txn_graph
        if self.graph is not None:
            self.graph.statement_begin()
        self.counters.incr("executor_statements")
        self.counters.gauge_incr("executor_statements_in_flight")

    # --------------------------------------------------- router-side hooks

    def note_buffered(self, n: int) -> None:
        """Record a buffered-row high-water mark from the router (its
        total across all channels) — the write-side bounded-buffer
        acceptance metric."""
        if n > self.report.copy_channel_peak_rows:
            self.report.copy_channel_peak_rows = n

    # ------------------------------------------------- per-node timeline

    def _node(self, node: str) -> dict:
        state = self._node_state.get(node)
        if state is None:
            conns = list(self.pools.idle_connections(node))
            state = {
                "conns": conns,
                "busy": {id(c): 0.0 for c in conns},
                "preexisting": {id(c) for c in conns},
                "used": set(),
            }
            self._node_state[node] = state
        return state

    def _open_connection(self, node: str, state: dict, now: float):
        if not self.ext.try_reserve_shared_slot(node, force=not state["conns"]):
            return None
        try:
            conn = self.pools.open_connection(node)
        except NodeUnavailable:
            self.ext.release_shared_slot(node)
            raise
        setup = self.ext.cluster.network.connection_setup_cost()
        state["conns"].append(conn)
        state["busy"][id(conn)] = now + setup
        self.report.connections_opened += 1
        self.counters.incr("connections_opened", node=node)
        self.session.wait_events.record("Net", "RemoteConnect", setup, node=node)
        if self.tracer is not None:
            self._trace_connects.append((node, now, state["busy"][id(conn)]))
        return conn

    def _pick_connection(self, node: str, state: dict):
        conns = state["conns"]
        busy = state["busy"]
        if not conns:
            conn = self._open_connection(node, state, 0.0)
            if conn is None:
                raise NodeUnavailable(f"no connection available to {node}")
            return conn
        conn = min(conns, key=lambda c: busy[id(c)])
        now = busy[id(conn)]
        # Slow start, as on the read side: the pool target grows by one per
        # interval of simulated time (§3.6.1).
        allowance = 1 + int(now / self.executor.slow_start_interval)
        in_use = sum(1 for c in conns if busy[id(c)] > now)
        target = min(allowance, self._unopened.get(node, 0) + 1 + in_use)
        if len(conns) < target:
            new_conn = self._open_connection(node, state, now)
            if new_conn is not None:
                conn = new_conn
        return conn

    # ------------------------------------------------------------ channels

    def _channel(self, key, index, node, shard_group) -> dict:
        channel = self._channels.get(key)
        if channel is None:
            state = self._node(node)
            self._unopened[node] = max(0, self._unopened.get(node, 1) - 1)
            conn = None
            if shard_group is not None:
                # Transaction affinity: the connection that already touched
                # this co-located shard group must take every flush.
                conn = self.pools.connection_for_group(node, shard_group)
                if conn is not None and id(conn) not in state["busy"]:
                    state["conns"].append(conn)
                    state["busy"][id(conn)] = 0.0
                    state["preexisting"].add(id(conn))
            if conn is None:
                conn = self._pick_connection(node, state)
            if shard_group is not None:
                conn.accessed_groups.add(shard_group)
            channel = {
                "index": index, "node": node, "group": shard_group,
                "conn": conn, "rows": 0, "bytes": 0, "flushes": 0,
                "events": [] if self.tracer is not None else None,
                "done": False,
            }
            self._channels[key] = channel
            state["used"].add(id(conn))
            self.counters.gauge_incr("tasks_in_flight", node=node)
        return channel

    def flush(self, key, index, node, shard_group, shard_name, columns,
              rows) -> None:
        """Ship one bounded row batch to its destination shard, inside the
        write transaction."""
        channel = self._channel(key, index, node, shard_group)
        conn = channel["conn"]
        # Every flush is transactional: a later error must be able to roll
        # back rows that already crossed the wire.
        conn.begin_if_needed()
        self.session.remote_txns[id(conn)] = conn
        conn.did_write = True
        conn.session.ensure_xid()
        from ..txn.deadlock import assign_distributed_txn_ids

        assign_distributed_txn_ids(self.ext, self.session)
        state = self._node(node)
        busy = state["busy"]
        start = busy.get(id(conn), 0.0)
        before = conn.elapsed
        bytes_before = conn.bytes_transferred
        try:
            # The first flush opens the shard's COPY stream (a round trip);
            # later flushes ride it asynchronously at bandwidth cost only.
            conn.copy_rows(shard_name, rows, columns,
                           pipelined=channel["flushes"] > 0)
        except Exception:
            self._channel_finished(channel, failed=True)
            raise
        nbytes = conn.bytes_transferred - bytes_before
        cost = (conn.elapsed - before) + len(rows) * self.ext.config.per_row_cpu_cost
        busy[id(conn)] = start + cost
        self.session.wait_events.record("Net", "RemoteCopy", cost, node=node)
        channel["rows"] += len(rows)
        channel["bytes"] += nbytes
        channel["flushes"] += 1
        if channel["events"] is not None:
            channel["events"].append((start, start + cost, len(rows), nbytes))
        report = self.report
        report.copy_flushes += 1
        report.copy_rows_routed += len(rows)
        report.copy_bytes_streamed += nbytes
        self.counters.incr("copy_flushes", node=node)
        self.counters.incr("copy_rows_routed", len(rows), node=node)
        self.counters.incr("copy_bytes_streamed", nbytes, node=node)
        if self.graph is not None:
            self.graph.note_access(self.session, node, shard_group, True,
                                   nbytes)

    def _channel_finished(self, channel: dict, failed: bool = False) -> None:
        if channel["done"]:
            return
        channel["done"] = True
        channel["failed"] = failed
        node = channel["node"]
        self.counters.gauge_decr("tasks_in_flight", node=node)
        if failed:
            self.counters.incr("tasks_failed", node=node)
        else:
            self.counters.incr("tasks_executed", node=node)

    def _emit_channel_spans(self) -> None:
        """One ``task`` span per destination channel (matched back to the
        plan's per-shard task list by ``index``) with nested per-flush
        children, plus ``connect`` spans."""
        tracer = self.tracer
        base = self.trace_base
        for node, start, end in self._trace_connects:
            tracer.add_span("connect", "network", base + start, base + end,
                            node=node)
        from ..tracing import Span

        for channel in self._channels.values():
            events = channel["events"] or []
            first = events[0][0] if events else 0.0
            last = events[-1][1] if events else 0.0
            task_span = tracer.add_span(
                "task", "executor", base + first, base + last,
                node=channel["node"], index=channel["index"],
                rows=channel["rows"], bytes=channel["bytes"],
                batches=channel["flushes"], shard_group=channel["group"],
                retries=0,
            )
            if task_span is None:
                continue
            for f_start, f_end, rows, nbytes in events:
                task_span.add(Span("flush", "network", base + f_start,
                                   base + f_end, node=channel["node"],
                                   attrs={"rows": rows, "bytes": nbytes}))

    # ------------------------------------------------------------ finish

    def finish(self) -> ExecutionReport:
        """Settle counters/gauges and reconstruct the parallel timeline.
        Idempotent; always called (``finally``), including on failure."""
        if self._finished:
            return self.report
        self._finished = True
        for channel in self._channels.values():
            self._channel_finished(channel)
        report = self.report
        report.task_count = len(self._channels)
        node_elapsed = [max(state["busy"].values(), default=0.0)
                        for state in self._node_state.values()]
        report.elapsed = max(node_elapsed, default=0.0)
        for node, state in self._node_state.items():
            report.per_node_connections[node] = len(state["conns"])
            reused = len(state["used"] & state["preexisting"])
            if reused:
                report.connections_reused += reused
                self.counters.incr("connections_reused", reused, node=node)
        report.connections_used = sum(report.per_node_connections.values())
        if self.tracer is not None:
            self._emit_channel_spans()
            # Aggregate routing span: EXPLAIN ANALYZE lifts these actuals
            # onto the "Repartition:" line of the plan tree.
            self.tracer.add_span(
                "route", "repartition", self.trace_base,
                self.trace_base + report.elapsed,
                flushes=report.copy_flushes, rows=report.copy_rows_routed,
                bytes=report.copy_bytes_streamed,
                channel_peak_rows=report.copy_channel_peak_rows,
                channels=len(self._channels),
            )
        if self.ext.cluster is not None:
            # Pipelining: the read side already advanced the clock while
            # rows were being routed; only the write timeline's remainder
            # beyond that overlap extends the statement.
            overlapped = self.ext.cluster.clock.now() - self._start_clock
            self.ext.cluster.clock.advance(max(0.0, report.elapsed - overlapped))
        self.session.stats["citus_tasks"] += len(self._channels)
        self.session.stats["citus_connections"] += report.connections_opened
        self.counters.gauge_decr("executor_statements_in_flight")
        if report.copy_channel_peak_rows:
            self.counters.gauge_max("copy_channel_peak_rows",
                                    report.copy_channel_peak_rows)
        self.executor.last_report = report
        if self.graph is not None:
            # A failed flush aborts the whole write through the session's
            # statement-failure path (abort_txn clears the collector); only
            # a clean finish commits the statement's accesses.
            if any(c.get("failed") for c in self._channels.values()):
                self.graph.discard_statement(self.session)
            else:
                self.graph.statement_done(self.session, report.elapsed)
        return report


def _multi_group(tasks) -> bool:
    groups = {t.shard_group for t in tasks}
    nodes = {t.node for t in tasks}
    return len(groups) > 1 or len(nodes) > 1
