"""Citus metadata: the pg_dist_* catalogs and their in-memory cache.

Exactly like the real extension, metadata lives in ordinary tables on the
coordinator (so it is transactional, WAL-logged, and survives restarts) and
is mirrored into an in-memory cache used by the planners. ``sync_to_node``
copies the tables to a worker, which is what lets any node act as a
coordinator (§3.2.1).

Tables (column layout follows the real catalogs, trimmed):

- ``pg_dist_node(nodeid, nodename, groupid, noderole, hasmetadata)``
- ``pg_dist_partition(logicalrelid, partmethod, partkey, colocationid)``
  with partmethod 'h' (hash), 'n' (reference), or 'r' (range)
- ``pg_dist_shard(shardid, logicalrelid, shardminvalue, shardmaxvalue)``
- ``pg_dist_placement(placementid, shardid, nodename, shardstate)``
- ``pg_dist_colocation(colocationid, shardcount, distributioncolumntype)``
- ``pg_dist_transaction(gid, coordinator)`` — the 2PC commit records
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import MetadataError

HASH = "h"
REFERENCE = "n"
RANGE = "r"

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1

FIRST_SHARD_ID = 102008  # same first shardid as a fresh real Citus install

METADATA_DDL = """
CREATE TABLE IF NOT EXISTS pg_dist_node (
    nodeid serial PRIMARY KEY,
    nodename text NOT NULL UNIQUE,
    groupid int,
    noderole text DEFAULT 'primary',
    hasmetadata bool DEFAULT false
);
CREATE TABLE IF NOT EXISTS pg_dist_partition (
    logicalrelid text PRIMARY KEY,
    partmethod text NOT NULL,
    partkey text,
    colocationid int
);
CREATE TABLE IF NOT EXISTS pg_dist_shard (
    shardid bigint PRIMARY KEY,
    logicalrelid text NOT NULL,
    shardminvalue bigint,
    shardmaxvalue bigint
);
CREATE TABLE IF NOT EXISTS pg_dist_placement (
    placementid serial PRIMARY KEY,
    shardid bigint NOT NULL,
    nodename text NOT NULL,
    shardstate int DEFAULT 1
);
CREATE TABLE IF NOT EXISTS pg_dist_colocation (
    colocationid serial PRIMARY KEY,
    shardcount int,
    distributioncolumntype text
);
CREATE TABLE IF NOT EXISTS pg_dist_transaction (
    gid text PRIMARY KEY,
    coordinator text
);
"""


@dataclass
class ShardInterval:
    shardid: int
    table_name: str
    min_value: int
    max_value: int

    @property
    def shard_name(self) -> str:
        return f"{self.table_name}_{self.shardid}"


@dataclass
class DistributedTable:
    name: str
    method: str  # HASH | REFERENCE | RANGE
    dist_column: str | None
    dist_column_type: str | None
    colocation_id: int
    shards: list[ShardInterval] = field(default_factory=list)  # ordered by min_value

    @property
    def is_reference(self) -> bool:
        return self.method == REFERENCE

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_index_for_hash(self, hash_value: int) -> int:
        """Index of the shard whose [min,max] range covers the hash."""
        mins = [s.min_value for s in self.shards]
        index = bisect.bisect_right(mins, hash_value) - 1
        if index < 0 or hash_value > self.shards[index].max_value:
            raise MetadataError(f"hash {hash_value} outside shard ranges of {self.name!r}")
        return index

    def shard_index_for_value(self, value) -> int:
        """Index of the shard owning a distribution column value,
        dispatching on the partition method (hash vs range)."""
        from ..engine.datum import hash_value as _hash

        if self.method == RANGE:
            mins = [s.min_value for s in self.shards]
            index = bisect.bisect_right(mins, value) - 1
            if index < 0 or value > self.shards[index].max_value:
                raise MetadataError(
                    f"value {value!r} outside the shard ranges of {self.name!r}"
                )
            return index
        return self.shard_index_for_hash(_hash(value))


class MetadataCache:
    """In-memory view of the pg_dist_* tables, rebuilt after any change.

    The planners only ever read the cache; all writes go through
    :class:`MetadataStore` (and therefore through SQL on real tables).
    """

    def __init__(self):
        self.nodes: list[str] = []  # worker node names, insertion order
        self.node_roles: dict[str, str] = {}
        self.tables: dict[str, DistributedTable] = {}
        self.placements: dict[int, str] = {}  # shardid -> nodename
        self.colocation_groups: dict[int, tuple] = {}  # id -> (shardcount, type)
        self.nodes_with_metadata: set[str] = set()

    def is_citus_table(self, name: str) -> bool:
        return name in self.tables

    def get_table(self, name: str) -> DistributedTable:
        table = self.tables.get(name)
        if table is None:
            raise MetadataError(f"{name!r} is not a distributed table")
        return table

    def colocated_tables(self, colocation_id: int) -> list[DistributedTable]:
        return [t for t in self.tables.values() if t.colocation_id == colocation_id]

    def placement_node(self, shardid: int) -> str:
        node = self.placements.get(shardid)
        if node is None:
            raise MetadataError(f"shard {shardid} has no placement")
        return node

    def shards_on_node(self, nodename: str) -> list[ShardInterval]:
        out = []
        for table in self.tables.values():
            for shard in table.shards:
                if self.placements.get(shard.shardid) == nodename:
                    out.append(shard)
        return out


class MetadataStore:
    """Read/write access to the metadata tables of one node, plus cache
    maintenance. One per CitusExtension instance."""

    def __init__(self, instance):
        self.instance = instance
        self.cache = MetadataCache()
        self._all_placements: dict[int, list[str]] = {}
        # Monotonic metadata generation: every cache rebuild (DDL, shard
        # moves, metadata sync) bumps it, invalidating cached distributed
        # plans stamped with an older generation.
        self.generation = 0

    def bump_generation(self) -> None:
        self.generation += 1

    # -------------------------------------------------------------- setup

    def create_tables(self, session) -> None:
        session.execute(METADATA_DDL)

    # ------------------------------------------------------------- writes

    def add_node(self, session, nodename: str, role: str = "primary",
                 hasmetadata: bool = False) -> None:
        existing = session.execute(
            "SELECT count(*) FROM pg_dist_node WHERE nodename = $1", [nodename]
        ).scalar()
        if existing:
            return
        session.execute(
            "INSERT INTO pg_dist_node (nodename, groupid, noderole, hasmetadata)"
            " VALUES ($1, $2, $3, $4)",
            [nodename, len(self.cache.nodes) + 1, role, hasmetadata],
        )
        self.reload(session)

    def record_distributed_table(self, session, name: str, method: str,
                                 dist_column: str | None, colocation_id: int,
                                 shards: list[ShardInterval],
                                 placements: dict[int, str]) -> None:
        session.execute(
            "INSERT INTO pg_dist_partition (logicalrelid, partmethod, partkey, colocationid)"
            " VALUES ($1, $2, $3, $4)",
            [name, method, dist_column, colocation_id],
        )
        for shard in shards:
            session.execute(
                "INSERT INTO pg_dist_shard (shardid, logicalrelid, shardminvalue,"
                " shardmaxvalue) VALUES ($1, $2, $3, $4)",
                [shard.shardid, name, shard.min_value, shard.max_value],
            )
            for node in _placement_nodes(placements, shard.shardid):
                session.execute(
                    "INSERT INTO pg_dist_placement (shardid, nodename) VALUES ($1, $2)",
                    [shard.shardid, node],
                )
        self.reload(session)

    def record_colocation_group(self, session, shardcount: int, column_type: str | None) -> int:
        session.execute(
            "INSERT INTO pg_dist_colocation (shardcount, distributioncolumntype)"
            " VALUES ($1, $2)",
            [shardcount, column_type],
        )
        colocation_id = session.execute(
            "SELECT max(colocationid) FROM pg_dist_colocation"
        ).scalar()
        self.reload(session)
        return colocation_id

    def update_placement(self, session, shardid: int, new_node: str) -> None:
        session.execute(
            "UPDATE pg_dist_placement SET nodename = $1 WHERE shardid = $2",
            [new_node, shardid],
        )
        self.reload(session)

    def drop_table_metadata(self, session, name: str) -> None:
        shard_ids = [
            row[0]
            for row in session.execute(
                "SELECT shardid FROM pg_dist_shard WHERE logicalrelid = $1", [name]
            )
        ]
        session.execute("DELETE FROM pg_dist_partition WHERE logicalrelid = $1", [name])
        session.execute("DELETE FROM pg_dist_shard WHERE logicalrelid = $1", [name])
        for shardid in shard_ids:
            session.execute("DELETE FROM pg_dist_placement WHERE shardid = $1", [shardid])
        self.reload(session)

    # ------------------------------------------------- 2PC commit records

    def write_commit_record(self, session, gid: str) -> None:
        session.execute(
            "INSERT INTO pg_dist_transaction (gid, coordinator) VALUES ($1, $2)",
            [gid, self.instance.name],
        )

    def commit_record_exists(self, session, gid: str) -> bool:
        return bool(
            session.execute(
                "SELECT count(*) FROM pg_dist_transaction WHERE gid = $1", [gid]
            ).scalar()
        )

    def delete_commit_record(self, session, gid: str) -> None:
        session.execute("DELETE FROM pg_dist_transaction WHERE gid = $1", [gid])

    # -------------------------------------------------------------- reads

    def reload(self, session) -> None:
        """Rebuild the in-memory cache from the metadata tables."""
        cache = MetadataCache()
        for name, groupid, role, hasmeta in session.execute(
            "SELECT nodename, groupid, noderole, hasmetadata FROM pg_dist_node"
            " ORDER BY nodeid"
        ):
            cache.nodes.append(name)
            cache.node_roles[name] = role
            if hasmeta:
                cache.nodes_with_metadata.add(name)
        for cid, shardcount, ctype in session.execute(
            "SELECT colocationid, shardcount, distributioncolumntype FROM pg_dist_colocation"
        ):
            cache.colocation_groups[cid] = (shardcount, ctype)
        shards_by_table: dict[str, list[ShardInterval]] = {}
        for shardid, rel, minv, maxv in session.execute(
            "SELECT shardid, logicalrelid, shardminvalue, shardmaxvalue FROM pg_dist_shard"
            " ORDER BY shardminvalue, shardid"
        ):
            shards_by_table.setdefault(rel, []).append(
                ShardInterval(shardid, rel, minv if minv is not None else INT32_MIN,
                              maxv if maxv is not None else INT32_MAX)
            )
        for rel, method, partkey, cid in session.execute(
            "SELECT logicalrelid, partmethod, partkey, colocationid FROM pg_dist_partition"
        ):
            ctype = cache.colocation_groups.get(cid, (None, None))[1]
            cache.tables[rel] = DistributedTable(
                rel, method, partkey, ctype, cid, shards_by_table.get(rel, [])
            )
        for shardid, nodename in session.execute(
            "SELECT shardid, nodename FROM pg_dist_placement WHERE shardstate = 1"
        ):
            # Reference tables have one placement per node; keep the first
            # as canonical and track the rest separately.
            if shardid not in cache.placements:
                cache.placements[shardid] = nodename
        self._all_placements = {}
        for shardid, nodename in session.execute(
            "SELECT shardid, nodename FROM pg_dist_placement WHERE shardstate = 1"
        ):
            self._all_placements.setdefault(shardid, []).append(nodename)
        self.cache = cache
        self.bump_generation()

    def all_placements(self, shardid: int) -> list[str]:
        return list(self._all_placements.get(shardid, ()))

    def dump_rows(self, session) -> dict[str, list]:
        """All metadata rows, for syncing to another node."""
        out = {}
        for table in ("pg_dist_node", "pg_dist_partition", "pg_dist_shard",
                      "pg_dist_placement", "pg_dist_colocation"):
            out[table] = session.execute(f"SELECT * FROM {table}").rows
        return out

    def load_rows(self, session, rows: dict[str, list]) -> None:
        for table, table_rows in rows.items():
            session.execute(f"DELETE FROM {table}")
            for row in table_rows:
                placeholders = ", ".join(f"${i + 1}" for i in range(len(row)))
                session.execute(f"INSERT INTO {table} VALUES ({placeholders})", list(row))
        self.reload(session)


def _placement_nodes(placements: dict, shardid: int):
    value = placements[shardid]
    return value if isinstance(value, (list, tuple)) else [value]


def split_hash_ranges(shard_count: int) -> list[tuple[int, int]]:
    """Split the int32 hash space into ``shard_count`` contiguous ranges,
    the way create_distributed_table does."""
    if shard_count <= 0:
        raise MetadataError("shard_count must be positive")
    span = 2**32
    step = span // shard_count
    ranges = []
    start = INT32_MIN
    for i in range(shard_count):
        end = INT32_MIN + step * (i + 1) - 1 if i < shard_count - 1 else INT32_MAX
        ranges.append((start, end))
        start = end + 1
    return ranges
