"""Shard pruning and query analysis shared by the distributed planners.

The central abstraction is the *equivalence analysis* of a query: walking
WHERE clauses and join conditions, we build a union-find over column
references and constants. The router planner then asks "do all distributed
tables have their distribution column in one equivalence class together
with a constant?" and the pushdown planner asks "are all distribution
columns in the same class as each other?" — which is exactly the co-located
join detection of §3.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.datum import hash_value
from ..sql import ast as A
from .metadata import RANGE, DistributedTable, MetadataCache


@dataclass
class TableOccurrence:
    """One reference to a table in the query tree."""

    name: str
    alias: str
    dist: DistributedTable | None  # None for local tables


class QueryAnalysis:
    """Everything the planner cascade needs to know about a statement."""

    def __init__(self):
        self.occurrences: list[TableOccurrence] = []
        self.equivalence = UnionFind()
        # Equivalence-class constants: root -> constant value
        self.constants: dict[object, object] = {}
        self.has_subquery_from = False
        self.inner_cross_shard_agg = False

    @property
    def distributed(self) -> list[TableOccurrence]:
        return [o for o in self.occurrences if o.dist is not None and not o.dist.is_reference]

    @property
    def references(self) -> list[TableOccurrence]:
        return [o for o in self.occurrences if o.dist is not None and o.dist.is_reference]

    @property
    def locals(self) -> list[TableOccurrence]:
        return [o for o in self.occurrences if o.dist is None]

    def dist_column_key(self, occ: TableOccurrence) -> str:
        return f"{occ.alias}.{occ.dist.dist_column}"

    def constant_for(self, occ: TableOccurrence):
        root = self.equivalence.find(self.dist_column_key(occ))
        for const_key, value in self.constants.items():
            if self.equivalence.find(const_key) == root:
                return value
        return None

    def all_dist_columns_equal(self) -> bool:
        """True when every distributed table's distribution column is in the
        same equivalence class (co-located join on the distribution key)."""
        dist = self.distributed
        if len(dist) <= 1:
            return True
        roots = {self.equivalence.find(self.dist_column_key(o)) for o in dist}
        return len(roots) == 1

    def common_constant(self):
        """The constant shared by every distribution column, or a sentinel."""
        dist = self.distributed
        if not dist:
            return None, False
        values = []
        for occ in dist:
            value = self.constant_for(occ)
            if value is None:
                return None, False
            values.append(value)
        first_hash = hash_value(values[0])
        if all(hash_value(v) == first_hash for v in values[1:]):
            return values[0], True
        return None, False


class UnionFind:
    def __init__(self):
        self.parent: dict = {}

    def find(self, key):
        self.parent.setdefault(key, key)
        root = key
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[key] != root:
            self.parent[key], key = root, self.parent[key]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


_CONST_MARK = "\x00const:"


def analyze_statement(stmt, cache: MetadataCache, params=None,
                      catalog=None) -> QueryAnalysis:
    """Build the QueryAnalysis for a DML statement.

    ``catalog`` (the coordinator's shell-table catalog) enables scope-aware
    qualification of bare column references — ``WHERE o_orderkey =
    l_orderkey`` binds each side to the table that owns the column.
    """
    analysis = QueryAnalysis()
    analysis.catalog = catalog
    if isinstance(stmt, A.Select):
        _analyze_select(stmt, cache, analysis, params, depth=0)
    elif isinstance(stmt, A.Insert):
        _add_occurrence(stmt.table, stmt.table, cache, analysis)
        if stmt.select is not None:
            _analyze_select(stmt.select, cache, analysis, params, depth=1)
    elif isinstance(stmt, (A.Update, A.Delete)):
        alias = stmt.alias or stmt.table
        _add_occurrence(stmt.table, alias, cache, analysis)
        scope = _build_scope([A.TableRef(stmt.table, stmt.alias)], cache, analysis)
        if stmt.where is not None:
            _collect_equalities(stmt.where, analysis, params, scope)
            _collect_subquery_tables(stmt.where, cache, analysis, params, scope)
    _finalize_unqualified_refs(analysis)
    return analysis


def _build_scope(from_items, cache, analysis) -> dict:
    """alias -> set of column names visible under that alias."""
    scope: dict[str, set] = {}

    def add(item):
        if isinstance(item, A.TableRef):
            columns = _table_columns(item.name, analysis)
            if columns:
                scope[item.ref_name] = columns
        elif isinstance(item, A.SubqueryRef):
            names = set()
            for entry in item.query.targets:
                if isinstance(entry, A.TargetEntry):
                    if entry.alias:
                        names.add(entry.alias)
                    elif isinstance(entry.expr, A.ColumnRef):
                        names.add(entry.expr.name)
            scope[item.alias] = names
        elif isinstance(item, A.JoinExpr):
            add(item.left)
            add(item.right)

    for item in from_items:
        add(item)
    return scope


def _table_columns(name, analysis) -> set:
    catalog = getattr(analysis, "catalog", None)
    if catalog is not None and catalog.has_table(name):
        return set(catalog.get_table(name).column_names())
    return set()


def _qualify(key: str, scope: dict) -> str:
    """Bind a bare column name to its owning alias when unambiguous."""
    if "." in key or not scope:
        return key
    owners = [alias for alias, columns in scope.items() if key in columns]
    if len(owners) == 1:
        return f"{owners[0]}.{key}"
    return key


def _finalize_unqualified_refs(analysis: QueryAnalysis) -> None:
    """Let unqualified filter columns (``WHERE key = 5``) reach the
    distribution column, but only when the binding is unambiguous: exactly
    one table in the query could own the name. With two distributed tables
    sharing a distribution column name, a bare-name union would falsely
    co-locate a cross join, so it is skipped (the SQL would be ambiguous
    at execution time anyway)."""
    if len(analysis.occurrences) == 1:
        occ = analysis.occurrences[0]
        if occ.dist is not None and occ.dist.dist_column:
            analysis.equivalence.union(
                f"{occ.alias}.{occ.dist.dist_column}", occ.dist.dist_column
            )
        return
    dist_col_owners: dict[str, list] = {}
    for occ in analysis.occurrences:
        if occ.dist is not None and occ.dist.dist_column:
            dist_col_owners.setdefault(occ.dist.dist_column, []).append(occ)
    for column, owners in dist_col_owners.items():
        if len(owners) == 1:
            analysis.equivalence.union(f"{owners[0].alias}.{column}", column)


def _analyze_select(select: A.Select, cache, analysis: QueryAnalysis, params, depth: int):
    for cte in select.ctes:
        _analyze_select(cte.query, cache, analysis, params, depth + 1)
    scope = _build_scope(select.from_items, cache, analysis)
    for item in select.from_items:
        _analyze_from_item(item, cache, analysis, params, depth, scope)
    if select.where is not None:
        _collect_equalities(select.where, analysis, params, scope)
        _collect_subquery_tables(select.where, cache, analysis, params, scope)
    if select.having is not None:
        _collect_subquery_tables(select.having, cache, analysis, params, scope)
    for entry in select.targets:
        expr = entry.expr if isinstance(entry, A.TargetEntry) else None
        if expr is not None:
            _collect_subquery_tables(expr, cache, analysis, params, scope)
    # Does an inner (non-top-level) query aggregate across shards? That
    # blocks pushdown: only the outermost aggregation can be split into
    # partial/merge phases.
    if depth > 0 and _has_cross_shard_aggregate(select, cache):
        analysis.inner_cross_shard_agg = True
    for _op, rhs in select.set_ops:
        _analyze_select(rhs, cache, analysis, params, depth)


def _analyze_from_item(item, cache, analysis, params, depth, scope=None):
    if isinstance(item, A.TableRef):
        _add_occurrence(item.name, item.ref_name, cache, analysis)
    elif isinstance(item, A.SubqueryRef):
        analysis.has_subquery_from = True
        _analyze_select(item.query, cache, analysis, params, depth + 1)
        # Column refs through the subquery alias join the equivalence web via
        # the subquery's target names: alias.colname ~ target expr when the
        # target is a plain column reference.
        inner_scope = _build_scope(item.query.from_items, cache, analysis)
        for entry in item.query.targets:
            if isinstance(entry, A.TargetEntry) and isinstance(entry.expr, A.ColumnRef):
                out_name = entry.alias or entry.expr.name
                analysis.equivalence.union(
                    f"{item.alias}.{out_name}", _qualify(entry.expr.key, inner_scope)
                )
    elif isinstance(item, A.JoinExpr):
        _analyze_from_item(item.left, cache, analysis, params, depth, scope)
        _analyze_from_item(item.right, cache, analysis, params, depth, scope)
        if item.condition is not None:
            _collect_equalities(item.condition, analysis, params, scope)
            _collect_subquery_tables(item.condition, cache, analysis, params, scope)
        for name in item.using:
            left_alias = _leftmost_alias(item.left)
            right_alias = _leftmost_alias(item.right)
            if left_alias and right_alias:
                analysis.equivalence.union(f"{left_alias}.{name}", f"{right_alias}.{name}")


def _leftmost_alias(item):
    if isinstance(item, A.TableRef):
        return item.ref_name
    if isinstance(item, A.SubqueryRef):
        return item.alias
    if isinstance(item, A.JoinExpr):
        return _leftmost_alias(item.left)
    return None


def _add_occurrence(name, alias, cache, analysis):
    dist = cache.tables.get(name)
    analysis.occurrences.append(TableOccurrence(name, alias, dist))


def _collect_equalities(expr, analysis: QueryAnalysis, params, scope=None) -> None:
    """Register col=col and col=const conjuncts (top-level AND only)."""
    scope = scope or {}
    for conjunct in _conjuncts(expr):
        if isinstance(conjunct, A.BinaryOp) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            left_col = _plain_column(left)
            right_col = _plain_column(right)
            if left_col:
                left_col = _qualify(left_col, scope)
            if right_col:
                right_col = _qualify(right_col, scope)
            if left_col and right_col:
                analysis.equivalence.union(left_col, right_col)
            elif left_col and _is_constant(right):
                _bind_constant(analysis, left_col, _constant_value(right, params))
            elif right_col and _is_constant(left):
                _bind_constant(analysis, right_col, _constant_value(left, params))


def _bind_constant(analysis, col_key, value):
    if value is _NO_VALUE:
        return
    const_key = f"{_CONST_MARK}{hash_value(value)}"
    analysis.equivalence.union(col_key, const_key)
    # Stored under the stable const key; constant_for chases the class.
    analysis.constants[const_key] = value


def _conjuncts(expr):
    if isinstance(expr, A.BinaryOp) and expr.op == "and":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _plain_column(expr):
    if isinstance(expr, A.ColumnRef):
        return expr.key
    return None


_NO_VALUE = object()


def _is_constant(expr) -> bool:
    if isinstance(expr, A.Literal):
        return True
    if isinstance(expr, A.Param):
        return True
    if isinstance(expr, A.Cast):
        return _is_constant(expr.operand)
    return False


def _constant_value(expr, params):
    if isinstance(expr, A.Literal):
        return expr.value
    if isinstance(expr, A.Cast):
        from ..engine.datum import cast_value

        inner = _constant_value(expr.operand, params)
        return cast_value(inner, expr.type_name) if inner is not _NO_VALUE else _NO_VALUE
    if isinstance(expr, A.Param):
        from ..engine.expr import BoundParams

        if type(params) is BoundParams:
            positional, named = params.positional, params.named
            if expr.index is not None and positional is not None \
                    and expr.index <= len(positional):
                return positional[expr.index - 1]
            if expr.name is not None and expr.name in named:
                return named[expr.name]
            return _NO_VALUE
        if expr.index is not None and isinstance(params, (list, tuple)):
            if expr.index <= len(params):
                return params[expr.index - 1]
        if expr.name is not None and isinstance(params, dict) and expr.name in params:
            return params[expr.name]
        return _NO_VALUE
    return _NO_VALUE


def _collect_subquery_tables(expr, cache, analysis, params, scope=None) -> None:
    for node in A.walk(expr):
        if isinstance(node, A.SubqueryExpr):
            _analyze_select(node.query, cache, analysis, params, depth=1)
            # `x IN (SELECT col FROM ...)` implies x = col for the matched
            # rows, which keeps pushdown-legal queries like TPC-H Q18
            # (IN over a GROUP BY on the distribution column) routable.
            if (
                node.kind in ("in", "any")
                and isinstance(node.operand, A.ColumnRef)
                and len(node.query.targets) == 1
                and isinstance(node.query.targets[0], A.TargetEntry)
                and isinstance(node.query.targets[0].expr, A.ColumnRef)
                and not node.negated
            ):
                inner_scope = _build_scope(node.query.from_items, cache, analysis)
                analysis.equivalence.union(
                    _qualify(node.operand.key, scope or {}),
                    _qualify(node.query.targets[0].expr.key, inner_scope),
                )


def _has_cross_shard_aggregate(select: A.Select, cache) -> bool:
    """Does this (sub)query aggregate rows without grouping by a
    distribution column of a table it reads?"""
    from ..engine.functions import is_aggregate

    has_agg = False
    for entry in select.targets:
        expr = entry.expr if isinstance(entry, A.TargetEntry) else None
        if expr is None:
            continue
        if any(isinstance(n, A.FuncCall) and is_aggregate(n.name) for n in A.walk(expr)):
            has_agg = True
            break
    if not has_agg and not select.group_by:
        return False
    if not has_agg:
        # plain GROUP BY without aggregates is a distinct-like operation;
        # same rule applies.
        pass
    dist_tables = []
    for item in select.from_items:
        for ref in _flatten_tables(item):
            dist = cache.tables.get(ref.name)
            if dist is not None and not dist.is_reference:
                dist_tables.append((ref, dist))
    if not dist_tables:
        return False
    group_names = set()
    for g in select.group_by:
        if isinstance(g, A.ColumnRef):
            group_names.add(g.name)
    for ref, dist in dist_tables:
        if dist.dist_column in group_names:
            return False
    return True


def _flatten_tables(item):
    if isinstance(item, A.TableRef):
        yield item
    elif isinstance(item, A.JoinExpr):
        yield from _flatten_tables(item.left)
        yield from _flatten_tables(item.right)


def collect_table_names(stmt) -> set[str]:
    """Every table name appearing anywhere in the statement."""
    names = set()
    for node in A.walk(stmt):
        if isinstance(node, A.TableRef):
            names.add(node.name)
        elif isinstance(node, (A.Insert, A.Update, A.Delete)):
            names.add(node.table)
        elif isinstance(node, A.Copy):
            names.add(node.table)
    return names


def prune_shards(table: DistributedTable, where, params=None, alias: str | None = None):
    """Shard indexes that may contain rows matching the filter.

    Handles ``dist_col = const`` (single shard) and ``dist_col IN (...)``.
    Anything else returns all shards.
    """
    if table.is_reference:
        return [0]
    all_indexes = list(range(table.shard_count))
    if where is None:
        return all_indexes
    alias = alias or table.name
    matches: set[int] | None = None
    for conjunct in _conjuncts(where):
        values = _dist_filter_values(conjunct, table, alias, params)
        if values is not None:
            shard_set = set()
            for v in values:
                try:
                    shard_set.add(table.shard_index_for_value(v))
                except Exception:
                    pass  # value outside all ranges: matches no shard
            matches = shard_set if matches is None else (matches & shard_set)
            continue
        if table.method == RANGE:
            # Range tables additionally prune inequality predicates on the
            # distribution column by shard-interval overlap.
            interval = _dist_range_bound(conjunct, table, alias, params)
            if interval is not None:
                low, high = interval
                shard_set = {
                    i for i, shard in enumerate(table.shards)
                    if (low is None or shard.max_value >= low)
                    and (high is None or shard.min_value <= high)
                }
                matches = shard_set if matches is None else (matches & shard_set)
    return sorted(matches) if matches is not None else all_indexes


def _dist_range_bound(conjunct, table, alias, params):
    """(low, high) bound implied by an inequality/BETWEEN on the dist col
    of a range-partitioned table; None when not applicable."""
    if isinstance(conjunct, A.BetweenExpr) and not conjunct.negated:
        if _is_dist_col(conjunct.operand, table, alias):
            low = _constant_value(conjunct.low, params) if _is_constant(conjunct.low) else _NO_VALUE
            high = _constant_value(conjunct.high, params) if _is_constant(conjunct.high) else _NO_VALUE
            if low is not _NO_VALUE and high is not _NO_VALUE:
                return (low, high)
        return None
    if not (isinstance(conjunct, A.BinaryOp) and conjunct.op in ("<", "<=", ">", ">=")):
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    if _is_dist_col(right, table, alias) and _is_constant(left):
        left, right, op = right, left, flipped[op]
    if not (_is_dist_col(left, table, alias) and _is_constant(right)):
        return None
    value = _constant_value(right, params)
    if value is _NO_VALUE:
        return None
    if op in (">", ">="):
        return (value + (1 if op == ">" else 0), None)
    return (None, value - (1 if op == "<" else 0))


def _dist_filter_values(conjunct, table, alias, params):
    if isinstance(conjunct, A.BinaryOp) and conjunct.op == "=":
        left, right = conjunct.left, conjunct.right
        if _is_dist_col(right, table, alias) and _is_constant(left):
            left, right = right, left
        if _is_dist_col(left, table, alias) and _is_constant(right):
            value = _constant_value(right, params)
            return None if value is _NO_VALUE else [value]
    if isinstance(conjunct, A.InList) and not conjunct.negated:
        if _is_dist_col(conjunct.operand, table, alias):
            values = []
            for item in conjunct.items:
                if not _is_constant(item):
                    return None
                value = _constant_value(item, params)
                if value is _NO_VALUE:
                    return None
                values.append(value)
            return values
    return None


def _is_dist_col(expr, table: DistributedTable, alias: str) -> bool:
    return (
        isinstance(expr, A.ColumnRef)
        and expr.name == table.dist_column
        and expr.table in (None, alias, table.name)
    )
