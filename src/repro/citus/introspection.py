"""Live cluster introspection: activity, lock waits, and tenant stats.

Backs the ``citus_dist_stat_activity``, ``citus_lock_waits`` and
``citus_stat_tenants`` UDFs. All three are *views over live state* — they
walk the cluster's sessions, lock managers and wait-event stacks at call
time rather than maintaining their own copies, so a blocked writer shows
up the instant it parks and disappears the instant it resolves.

Global PIDs follow the Citus 11 scheme: ``nodeid * 10_000_000_000 + pid``,
where the node id is the 1-based position in pg_dist_node (the coordinator,
which is usually not in pg_dist_node, gets group 0). The composite is
unique cluster-wide and lets operators correlate a row in
``citus_dist_stat_activity`` with the worker backend doing the waiting.
"""

from __future__ import annotations

from ..sql.deparse import deparse  # noqa: F401  (re-exported for the UDFs)

GPID_STRIDE = 10_000_000_000


def node_group_id(ext, node_name: str) -> int:
    """1-based pg_dist_node position; 0 for the coordinator (not in
    pg_dist_node unless it is the only node)."""
    try:
        return ext.metadata.cache.nodes.index(node_name) + 1
    except ValueError:
        return 0


def global_pid(ext, node_name: str, backend_pid: int) -> int:
    return node_group_id(ext, node_name) * GPID_STRIDE + backend_pid


# ------------------------------------------------------------ tenant stats


class TenantStats:
    """Per-tenant resource accounting (citus_stat_tenants).

    Keyed on the distribution-column value extracted from shard-key
    filters by the planner hook; statements that touch many tenants (or
    none, e.g. DDL) are not attributed. Wait seconds come from the
    session's per-statement wait-event accumulator, so a tenant whose
    queries spend their time blocked on locks shows that directly.
    """

    __slots__ = ("entries",)

    def __init__(self):
        # tenant -> [calls, rows, query_seconds, wait_seconds]
        self.entries: dict = {}

    def record(self, tenant, rows: int, query_seconds: float,
               wait_seconds: float) -> None:
        entry = self.entries.get(tenant)
        if entry is None:
            entry = self.entries[tenant] = [0, 0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += rows
        entry[2] += query_seconds
        entry[3] += wait_seconds

    def records(self) -> list[tuple]:
        """(tenant, calls, rows, query_seconds, wait_seconds), busiest
        first, ties broken by tenant value for determinism."""
        return sorted(
            ((t, e[0], e[1], e[2], e[3]) for t, e in self.entries.items()),
            key=lambda r: (-r[1], str(r[0])),
        )

    def reset(self) -> None:
        self.entries.clear()


_TENANT_ATTR = "_citus_tenant_stats"


def tenant_stats_for(holder) -> TenantStats:
    """The TenantStats attached to ``holder`` (the cluster, so every
    node's sessions account into one shared table), creating it lazily."""
    stats = getattr(holder, _TENANT_ATTR, None)
    if stats is None:
        stats = TenantStats()
        setattr(holder, _TENANT_ATTR, stats)
    return stats


# ------------------------------------------------------------- activity


def _statement_text(stmt) -> str | None:
    if stmt is None:
        return None
    try:
        return deparse(stmt)
    except Exception:
        return f"<{type(stmt).__name__}>"


def _statement_fingerprint(stmt, session=None) -> str | None:
    """Short stable digest of the statement's normalization template
    (pg_stat_statements' queryid, in spirit). When ``session`` is given
    the digest is memoized on it keyed by statement identity — the ASH
    sampler fingerprints the same parked/last statement on every tick,
    and renormalizing per sample would dominate sampling cost."""
    if stmt is None:
        return None
    if session is not None:
        cached = getattr(session, "_citus_fp_cache", None)
        if cached is not None and cached[0] is stmt:
            return cached[1]
    from .planner.plan_cache import _normalize_statement

    try:
        norm = _normalize_statement(stmt)
    except Exception:
        norm = None
    if norm is not None:
        # The raw normalization template is NUL-separated and long; the
        # view shows a short stable digest of it.
        import hashlib

        digest = hashlib.md5(norm[2].encode()).hexdigest()[:16]
    else:
        digest = f"{type(stmt).__name__}:{getattr(stmt, 'table', '')}"
    if session is not None:
        session._citus_fp_cache = (stmt, digest)
    return digest


def _cluster_instances(ext):
    """(name, instance) for every alive node, coordinator first, workers
    in pg_dist_node order, any unregistered nodes after."""
    if ext.cluster is None:
        yield ext.instance.name, ext.instance
        return
    order = {name: i for i, name in enumerate(ext.metadata.cache.nodes)}
    coord = ext.instance.name

    def sort_key(name):
        if name == coord:
            return (0, 0, name)
        return (1, order.get(name, len(order)), name)

    for name in sorted(ext.cluster.nodes, key=sort_key):
        instance = ext.cluster.nodes[name]
        if instance.is_up:
            yield name, instance


def activity_records(ext, with_query: bool = True) -> list[dict]:
    """One record per open session across every alive node — the rows of
    ``citus_dist_stat_activity``. ``with_query=False`` skips the SQL
    deparse (the ``query`` field is None) but keeps the fingerprint: the
    ASH sampler snapshots through this path on every sampling tick and
    only persists the digest."""
    records = []
    for name, instance in _cluster_instances(ext):
        now = instance.now()
        for session in instance.sessions:
            wait = session.wait_events.current
            stmt = session.current_stmt
            if session.state == "active":
                elapsed = now - session.query_start_at
            else:
                elapsed = session.last_query_seconds
            records.append({
                "global_pid": global_pid(ext, name, session.backend_pid),
                "nodename": name,
                "pid": session.backend_pid,
                "distributed_txn_id": getattr(session, "_citus_dist_txn_id", None),
                "application_name": session.application_name,
                "state": session.state,
                "wait_event_type": wait.wclass if wait is not None else None,
                "wait_event": wait.event if wait is not None else None,
                "citus_tier": getattr(session, "_citus_tier", None),
                "query": _statement_text(stmt) if with_query else None,
                "query_fingerprint": _statement_fingerprint(stmt, session),
                "elapsed_ms": elapsed * 1000.0,
                "session": session,
            })
    return records


# ------------------------------------------------------------ lock waits


def _pool_owner_index(ext) -> dict:
    """Map ``id(worker_session)`` -> the coordinator session whose
    SessionPools leased it. Needed because single-statement writes outside
    BEGIN never get distributed transaction ids, yet their worker-side
    lock waits must still be attributed to the originating query."""
    from .executor.placement import SessionPools

    index = {}
    for _name, instance in _cluster_instances(ext):
        for session in instance.sessions:
            pools = getattr(session, SessionPools.ATTR, None)
            if pools is None:
                continue
            for conn in pools.all_connections():
                index[id(conn.session)] = session
    return index


def _owner_session(ext, instance, xid, local_session, pool_owners):
    """Resolve the session whose query caused transaction ``xid`` on
    ``instance`` to exist: the coordinator session when the xid belongs to
    a distributed transaction or a pooled worker connection, else the
    local session itself."""
    mapped = instance.dist_txn_ids.get(xid)
    if mapped is not None:
        coord_name, dist_id = mapped
        try:
            coord = (ext.cluster.node(coord_name) if ext.cluster is not None
                     else ext.instance)
        except Exception:
            coord = None
        if coord is not None:
            for session in coord.sessions:
                if getattr(session, "_citus_dist_txn_id", None) == dist_id:
                    return coord_name, session
    if local_session is not None:
        owner = pool_owners.get(id(local_session))
        if owner is not None:
            return owner.instance.name, owner
    if local_session is not None:
        return instance.name, local_session
    return instance.name, None


def lock_waits_records(ext) -> list[dict]:
    """Rows of ``citus_lock_waits``: one per (waiter, holder) edge in any
    node's wait-for graph, with both sides mapped back to the query that
    is blocked / blocking — across nodes, via distributed transaction ids
    or pool-lease ownership."""
    pool_owners = _pool_owner_index(ext)
    records = []
    for name, instance in _cluster_instances(ext):
        sessions_by_xid = {
            s.xid: s for s in instance.sessions if s.xid is not None
        }
        for waiter_xid, holder_xids in sorted(instance.locks.wait_edges.items()):
            key = instance.locks.wait_keys.get(waiter_xid)
            waiter_node, waiter = _owner_session(
                ext, instance, waiter_xid, sessions_by_xid.get(waiter_xid),
                pool_owners,
            )
            for holder_xid in sorted(holder_xids):
                holder_node, holder = _owner_session(
                    ext, instance, holder_xid, sessions_by_xid.get(holder_xid),
                    pool_owners,
                )
                records.append({
                    "waiting_gpid": (
                        global_pid(ext, waiter_node, waiter.backend_pid)
                        if waiter is not None else None
                    ),
                    "blocking_gpid": (
                        global_pid(ext, holder_node, holder.backend_pid)
                        if holder is not None else None
                    ),
                    "blocked_statement": _statement_text(
                        waiter.current_stmt if waiter is not None else None
                    ),
                    "current_statement_in_blocking_process": _statement_text(
                        holder.current_stmt if holder is not None else None
                    ),
                    "waiting_nodename": waiter_node,
                    "blocking_nodename": holder_node,
                    "lock": key,
                })
    return records
