"""The Citus layer: distributed PostgreSQL as an extension.

Public API:

- :func:`make_cluster` / :class:`CitusCluster` — build simulated clusters.
- :func:`install_citus` / :class:`CitusConfig` — per-instance installation.
- :func:`register_distributed_procedure` — distributed stored procedures.
- :mod:`repro.citus.rebalancer` — shard rebalancing strategies.
"""

from .api import CitusCluster, make_cluster
from .extension import CitusConfig, CitusExtension, install_citus
from .procedures import register_distributed_procedure

__all__ = [
    "CitusCluster",
    "make_cluster",
    "CitusConfig",
    "CitusExtension",
    "install_citus",
    "register_distributed_procedure",
]
