"""Distributed EXPLAIN: structured plan introspection (the observability
half of ``pg_stat_statements`` + ``EXPLAIN`` for the Citus layer).

``explain(session, sql)`` plans a statement through the installed planner
hooks **without executing it** and returns a :class:`DistributedExplain`
recording the optimizer's decisions:

- which planner tier of the §3.5 cascade fired (``fast_path`` / ``router``
  / ``pushdown`` / ``join_order``, plus the DML-specific tiers),
- pruned vs. total shard count,
- every task's target node and rewritten shard SQL,
- which clauses were pushed down to the workers vs. evaluated on the
  coordinator (the merge step),
- for multi-stage plans, the repartition/subplan structure and the
  coordinator-side merge query.

The result renders both as a plain dict (``as_dict()``, for asserting in
tests) and as a pg-style text tree (``as_text()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sql import ast as A
from ..sql import parse

#: Tiers of the paper's §3.5 planner cascade, lowest overhead first.
PLANNER_TIERS = ("fast_path", "router", "pushdown", "join_order")


@dataclass
class TaskTarget:
    """One task of a distributed plan: where it runs and what it runs."""

    node: str
    sql: str | None = None
    shard_group: tuple | None = None
    #: EXPLAIN ANALYZE only: measured execution detail for this task —
    #: rows, bytes, time_ms, batches (streaming), queued_ms (blocking),
    #: skipped (never dispatched because the merge terminated early).
    actual: dict | None = None

    def as_dict(self) -> dict:
        return {
            "node": self.node,
            "sql": self.sql,
            "shard_group": self.shard_group,
            "actual": self.actual,
        }


@dataclass
class DistributedExplain:
    """Structured record of one planning decision."""

    sql: str
    tier: str  # fast_path | router | pushdown | join_order | ...
    planner: str  # display label, e.g. "Fast Path Router"
    task_count: int
    tasks: list[TaskTarget] = field(default_factory=list)
    total_shard_count: int | None = None  # shards of the anchor colocation group
    pruned_shard_count: int | None = None  # total - shards actually targeted
    pushed_down: list[str] = field(default_factory=list)
    coordinator: list[str] = field(default_factory=list)
    merge_query: str | None = None  # coordinator-side query over intermediates
    merge_strategy: str | None = None  # how shard streams combine (streaming)
    repartition: dict | None = None  # write-side row re-routing (COPY channels)
    subplan: dict | None = None  # repartition / insert..select structure
    is_write: bool = False
    local_plan: list[str] = field(default_factory=list)  # tier == "local" only
    cached: bool = False  # replayed from the distributed plan cache
    #: Candidate-plan pipeline (citus.enable_plan_alternatives): one line
    #: per cascade tier tried — rejections with structured reasons, costed
    #: alternatives, and the chosen plan.
    considered: list[str] = field(default_factory=list)
    #: The full PlanSearch record as a dict (None when the GUC is off or
    #: the plan carries no search).
    search: dict | None = None
    #: EXPLAIN ANALYZE only: statement-level actuals — rows, total_ms, and
    #: the coordinator merge span (strategy, time_ms, rows, buffered peak,
    #: early termination). None for plain EXPLAIN.
    analyze: dict | None = None

    # ------------------------------------------------------------ reading

    @property
    def nodes(self) -> list[str]:
        """Distinct target nodes, sorted."""
        return sorted({t.node for t in self.tasks})

    @property
    def distributed(self) -> bool:
        return self.tier != "local"

    def as_dict(self) -> dict:
        return {
            "sql": self.sql,
            "tier": self.tier,
            "planner": self.planner,
            "task_count": self.task_count,
            "total_shard_count": self.total_shard_count,
            "pruned_shard_count": self.pruned_shard_count,
            "nodes": self.nodes,
            "tasks": [t.as_dict() for t in self.tasks],
            "pushed_down": list(self.pushed_down),
            "coordinator": list(self.coordinator),
            "merge_query": self.merge_query,
            "merge_strategy": self.merge_strategy,
            "repartition": self.repartition,
            "subplan": self.subplan,
            "is_write": self.is_write,
            "cached": self.cached,
            "considered": list(self.considered),
            "search": self.search,
            "analyze": self.analyze,
        }

    def as_text(self) -> str:
        """A pg-style EXPLAIN tree."""
        if self.tier == "local":
            return "\n".join(self.local_plan or ["(local plan)"])
        lines = ["Custom Scan (Citus Adaptive)"]
        marker = " (cached)" if self.cached else ""
        lines.append(f"  Planner: {self.planner}{marker}  [tier: {self.tier}]")
        for considered in self.considered:
            lines.append(f"  {considered}")
        if self.total_shard_count is not None and self.pruned_shard_count is not None:
            targeted = self.total_shard_count - self.pruned_shard_count
            lines.append(
                f"  Shards: {targeted} of {self.total_shard_count}"
                f" ({self.pruned_shard_count} pruned)"
            )
        lines.append(f"  Task Count: {self.task_count}")
        if self.nodes:
            lines.append(f"  Nodes: {', '.join(self.nodes)}")
        if self.pushed_down:
            lines.append(f"  Pushed Down: {', '.join(self.pushed_down)}")
        if self.coordinator:
            lines.append(f"  On Coordinator: {', '.join(self.coordinator)}")
        merge_actual = (self.analyze or {}).get("merge")
        if self.merge_strategy or merge_actual:
            strategy = self.merge_strategy or (
                merge_actual.get("strategy") if merge_actual else None
            ) or "concat"
            line = f"  Merge: {strategy}"
            if merge_actual:
                line += _merge_actual_suffix(merge_actual)
            lines.append(line)
        route_actual = (self.analyze or {}).get("repartition")
        if self.repartition or route_actual:
            mode = (self.repartition or {}).get("mode") or "streaming"
            line = f"  Repartition: {mode}"
            detail = []
            threshold = (self.repartition or {}).get("flush_threshold")
            if threshold is not None:
                detail.append(f"flush_threshold={threshold}")
            channels = (self.repartition or {}).get("channels")
            if channels is not None:
                detail.append(f"channels={channels}")
            if detail:
                line += f" ({', '.join(detail)})"
            if route_actual:
                line += _route_actual_suffix(route_actual)
            lines.append(line)
        if self.subplan:
            detail = ", ".join(f"{k}={v}" for k, v in self.subplan.items())
            lines.append(f"  ->  Subplan: {detail}")
        for task in self.tasks:
            lines.append(f"  ->  Task on {task.node}")
            if task.sql:
                lines.append(f"        {task.sql}")
            if task.actual is not None:
                lines.append(f"        {_task_actual_line(task.actual)}")
        if self.merge_query:
            lines.append(f"  ->  Merge Query (coordinator)")
            lines.append(f"        {self.merge_query}")
        cross = (self.analyze or {}).get("cross_shard")
        if cross:
            lines.append(
                f"  Cross-Shard: groups={cross.get('groups', 0)}"
                f" nodes={cross.get('nodes', 0)}"
                f" recent_multi_group_fraction="
                f"{cross.get('recent_multi_group_fraction', 0.0):.4f}"
                f" recent_cross_node_fraction="
                f"{cross.get('recent_cross_node_fraction', 0.0):.4f}"
            )
        if self.analyze is not None:
            total = self.analyze.get("total_ms")
            summary = f"Execution: rows={self.analyze.get('rows', 0)}"
            if total is not None:
                summary += f" time={total:.3f} ms"
            skipped = self.analyze.get("tasks_skipped")
            if skipped:
                summary += f" tasks_skipped={skipped}"
            lines.append(summary)
        return "\n".join(lines)

    def __str__(self):
        return self.as_text()


# ----------------------------------------------------------------- explain


def explain(session, sql: str, params=None) -> DistributedExplain:
    """Plan ``sql`` through the session's planner hooks and describe the
    resulting distributed plan without executing it.

    Purely-local statements yield ``tier == "local"`` with the engine's
    own EXPLAIN lines attached.
    """
    statements = parse(sql)
    if not statements:
        raise ValueError("explain() needs exactly one statement")
    stmt = statements[0]
    if isinstance(stmt, A.Explain):
        stmt = stmt.statement
    plan = session.instance.hooks.call_planner(session, stmt, params)
    if plan is None:
        from ..engine.executor import LocalExecutor

        lines: list[str] = []
        if isinstance(stmt, (A.Select, A.Insert, A.Update, A.Delete)):
            lines = LocalExecutor(session).explain(stmt, params)
        return DistributedExplain(
            sql=sql, tier="local", planner="Local", task_count=0, local_plan=lines,
        )
    return describe_plan(plan, sql)


def describe_plan(plan, sql: str = "") -> DistributedExplain:
    """Normalize a planner-hook plan object into a DistributedExplain."""
    info_fn = getattr(plan, "explain_info", None)
    if info_fn is None:
        return DistributedExplain(
            sql=sql,
            tier="custom",
            planner=type(plan).__name__,
            task_count=0,
            local_plan=list(plan.explain_lines()),
        )
    info = info_fn()
    raw_tasks = info.get("tasks") or []
    tasks = [
        TaskTarget(node=t.node, sql=_task_sql(t),
                   shard_group=getattr(t, "shard_group", None))
        if not isinstance(t, TaskTarget) else t
        for t in raw_tasks
    ]
    task_count = info.get("task_count", len(tasks))
    total = info.get("total_shard_count")
    ext = getattr(plan, "ext", None)
    if total is None and ext is not None and tasks:
        total = _total_shards_for_tasks(ext, tasks)
    pruned = info.get("pruned_shard_count")
    if pruned is None and total is not None:
        targeted = _distinct_shards(tasks)
        if targeted is not None:
            pruned = max(total - targeted, 0)
    from .planner.pipeline import tier_label

    search = getattr(plan, "search", None)
    return DistributedExplain(
        sql=sql,
        tier=info["tier"],
        planner=info.get("detail") or tier_label(info["tier"]),
        task_count=task_count,
        tasks=tasks,
        total_shard_count=total,
        pruned_shard_count=pruned,
        pushed_down=list(info.get("pushed_down", ())),
        coordinator=list(info.get("coordinator", ())),
        merge_query=info.get("merge_query"),
        merge_strategy=info.get("merge_strategy"),
        repartition=info.get("repartition"),
        subplan=info.get("subplan"),
        is_write=bool(info.get("is_write", False)),
        cached=bool(getattr(plan, "cached", False)),
        considered=search.considered_lines() if search is not None else [],
        search=search.as_dict() if search is not None else None,
    )


# --------------------------------------------------------- explain analyze


def _task_actual_line(actual: dict) -> str:
    """Render one task's measured execution, pg-style."""
    if actual.get("skipped"):
        return "(never dispatched)"
    parts = [f"actual rows={actual.get('rows', 0)}"]
    if "batches" in actual:
        parts.append(f"batches={actual['batches']}")
    parts.append(f"bytes={actual.get('bytes', 0)}")
    time_ms = actual.get("time_ms")
    if time_ms is not None:
        parts.append(f"time={time_ms:.3f} ms")
    queued_ms = actual.get("queued_ms")
    if queued_ms:
        parts.append(f"queued={queued_ms:.3f} ms")
    retries = actual.get("retries")
    if retries:
        parts.append(f"retries={retries}")
    return f"({' '.join(parts)})"


def _route_actual_suffix(route: dict) -> str:
    parts = [f"actual rows={route.get('rows', 0)}"]
    flushes = route.get("flushes")
    if flushes is not None:
        parts.append(f"flushes={flushes}")
    parts.append(f"bytes={route.get('bytes', 0)}")
    peak = route.get("channel_peak_rows")
    if peak:
        parts.append(f"channel_peak_rows={peak}")
    time_ms = route.get("time_ms")
    if time_ms is not None:
        parts.append(f"time={time_ms:.3f} ms")
    return f"  ({' '.join(parts)})"


def _merge_actual_suffix(merge: dict) -> str:
    parts = [f"actual rows={merge.get('rows', 0)}"]
    time_ms = merge.get("time_ms")
    if time_ms is not None:
        parts.append(f"time={time_ms:.3f} ms")
    peak = merge.get("rows_buffered_peak")
    if peak:
        parts.append(f"buffered_peak={peak}")
    if merge.get("early_terminated"):
        parts.append("early_terminated")
    return f"  ({' '.join(parts)})"


def _annotate_cross_shard(ext, explained) -> None:
    """Attach the co-access graph's view of a multi-shard DML statement:
    how many shard groups/nodes this plan spans, and what fraction of
    recent transactions (the window ring) went multi-group/cross-node."""
    graph = getattr(ext, "txn_graph", None) if ext is not None else None
    if graph is None or not explained.is_write or explained.task_count <= 1:
        return
    groups = {t.shard_group for t in explained.tasks
              if t.shard_group is not None}
    cross = {"groups": len(groups), "nodes": len(explained.nodes)}
    cross.update(graph.cross_shard_summary())
    explained.analyze["cross_shard"] = cross


def run_explain_analyze(plan, session, stmt, params=None) -> list[str]:
    """Execute a distributed plan under a trace capture and render the
    EXPLAIN tree annotated with per-task and merge actuals.

    The span tree is collected via :meth:`Tracer.capture`, which works
    even while tracing is globally disabled; task spans are matched back
    to the plan's task list by their ``index`` attribute.
    """
    try:
        from ..sql.deparse import deparse

        sql = deparse(stmt)
    except Exception:
        sql = type(stmt).__name__
    explained = describe_plan(plan, sql)
    ext = getattr(plan, "ext", None)
    tracer = getattr(ext, "tracer", None) if ext is not None else None
    if tracer is None:
        # No tracer attached (detached for benchmarking): execute without
        # per-task actuals.
        result = plan.execute(session, params)
        rows = result.rowcount or len(result.rows)
        explained.analyze = {"rows": rows, "total_ms": None}
        _annotate_cross_shard(ext, explained)
        return explained.as_text().splitlines()
    start = tracer.clock.now()
    with tracer.capture("explain_analyze") as root:
        result = plan.execute(session, params)
    total_ms = (tracer.clock.now() - start) * 1000.0
    rows = result.rowcount or len(result.rows)
    analyze: dict = {"rows": rows, "total_ms": total_ms}
    tasks_skipped = 0
    for span in root.find(cat="executor", name="task"):
        index = span.attrs.get("index")
        if index is None or not (0 <= index < len(explained.tasks)):
            continue
        actual = {
            "rows": span.attrs.get("rows", 0),
            "bytes": span.attrs.get("bytes", 0),
            "time_ms": span.duration * 1000.0,
        }
        for key in ("batches", "queued_ms", "retries", "skipped"):
            if span.attrs.get(key):
                actual[key] = span.attrs[key]
        if actual.get("skipped"):
            tasks_skipped += 1
        # Last write wins: for multi-stage plans the final round of tasks
        # (the one explain_info describes) is emitted last.
        explained.tasks[index].actual = actual
    if tasks_skipped:
        analyze["tasks_skipped"] = tasks_skipped
    merge_spans = root.find(cat="merge")
    if merge_spans:
        merge = merge_spans[-1]
        analyze["merge"] = dict(merge.attrs)
        analyze["merge"]["time_ms"] = merge.duration * 1000.0
    route_spans = root.find(cat="repartition")
    if route_spans:
        route = route_spans[-1]
        analyze["repartition"] = dict(route.attrs)
        analyze["repartition"]["time_ms"] = route.duration * 1000.0
    explained.analyze = analyze
    _annotate_cross_shard(ext, explained)
    return explained.as_text().splitlines()


def explain_analyze(session, sql: str, params=None) -> list[str]:
    """Plan and execute ``sql``, returning annotated EXPLAIN ANALYZE lines
    (the implementation behind ``citus_explain_analyze(sql)``)."""
    statements = parse(sql)
    if not statements:
        raise ValueError("explain_analyze() needs exactly one statement")
    stmt = statements[0]
    if isinstance(stmt, A.Explain):
        stmt = stmt.statement
    plan = session.instance.hooks.call_planner(session, stmt, params)
    if plan is not None:
        analyzer = getattr(plan, "explain_analyze_lines", None)
        if analyzer is not None:
            return analyzer(session, stmt, params)
        result = plan.execute(session, params)
        return [f"(actual rows={result.rowcount or len(result.rows)})"]
    from ..engine.executor import LocalExecutor

    lines: list[str] = []
    if isinstance(stmt, (A.Select, A.Insert, A.Update, A.Delete)):
        lines = LocalExecutor(session).explain(stmt, params)
    result = session.execute_parsed(stmt, params)
    lines.append(f"  (actual rows={result.rowcount or len(result.rows)})")
    return lines


def _task_sql(task) -> str | None:
    """A task's shard SQL, deparsed lazily for AST-shipped tasks."""
    sql_text = getattr(task, "sql_text", None)
    if sql_text is not None:
        return sql_text()
    return getattr(task, "sql", None)


def _total_shards_for_tasks(ext, tasks: list[TaskTarget]) -> int | None:
    """Shard count of the colocation group the tasks anchor on."""
    colocation_ids = {
        t.shard_group[0] for t in tasks if t.shard_group is not None
    }
    if len(colocation_ids) != 1:
        return None
    (colocation_id,) = colocation_ids
    for table in ext.metadata.cache.tables.values():
        if table.colocation_id == colocation_id:
            return len(table.shards)
    return None


def _distinct_shards(tasks: list[TaskTarget]) -> int | None:
    indexes = set()
    for t in tasks:
        if t.shard_group is None:
            return None
        indexes.add(t.shard_group[:2])
    return len(indexes)
