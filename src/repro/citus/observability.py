"""Distributed EXPLAIN: structured plan introspection (the observability
half of ``pg_stat_statements`` + ``EXPLAIN`` for the Citus layer).

``explain(session, sql)`` plans a statement through the installed planner
hooks **without executing it** and returns a :class:`DistributedExplain`
recording the optimizer's decisions:

- which planner tier of the §3.5 cascade fired (``fast_path`` / ``router``
  / ``pushdown`` / ``join_order``, plus the DML-specific tiers),
- pruned vs. total shard count,
- every task's target node and rewritten shard SQL,
- which clauses were pushed down to the workers vs. evaluated on the
  coordinator (the merge step),
- for multi-stage plans, the repartition/subplan structure and the
  coordinator-side merge query.

The result renders both as a plain dict (``as_dict()``, for asserting in
tests) and as a pg-style text tree (``as_text()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sql import ast as A
from ..sql import parse

#: Tiers of the paper's §3.5 planner cascade, lowest overhead first.
PLANNER_TIERS = ("fast_path", "router", "pushdown", "join_order")


@dataclass
class TaskTarget:
    """One task of a distributed plan: where it runs and what it runs."""

    node: str
    sql: str | None = None
    shard_group: tuple | None = None

    def as_dict(self) -> dict:
        return {"node": self.node, "sql": self.sql, "shard_group": self.shard_group}


@dataclass
class DistributedExplain:
    """Structured record of one planning decision."""

    sql: str
    tier: str  # fast_path | router | pushdown | join_order | ...
    planner: str  # display label, e.g. "Fast Path Router"
    task_count: int
    tasks: list[TaskTarget] = field(default_factory=list)
    total_shard_count: int | None = None  # shards of the anchor colocation group
    pruned_shard_count: int | None = None  # total - shards actually targeted
    pushed_down: list[str] = field(default_factory=list)
    coordinator: list[str] = field(default_factory=list)
    merge_query: str | None = None  # coordinator-side query over intermediates
    merge_strategy: str | None = None  # how shard streams combine (streaming)
    subplan: dict | None = None  # repartition / insert..select structure
    is_write: bool = False
    local_plan: list[str] = field(default_factory=list)  # tier == "local" only
    cached: bool = False  # replayed from the distributed plan cache

    # ------------------------------------------------------------ reading

    @property
    def nodes(self) -> list[str]:
        """Distinct target nodes, sorted."""
        return sorted({t.node for t in self.tasks})

    @property
    def distributed(self) -> bool:
        return self.tier != "local"

    def as_dict(self) -> dict:
        return {
            "sql": self.sql,
            "tier": self.tier,
            "planner": self.planner,
            "task_count": self.task_count,
            "total_shard_count": self.total_shard_count,
            "pruned_shard_count": self.pruned_shard_count,
            "nodes": self.nodes,
            "tasks": [t.as_dict() for t in self.tasks],
            "pushed_down": list(self.pushed_down),
            "coordinator": list(self.coordinator),
            "merge_query": self.merge_query,
            "merge_strategy": self.merge_strategy,
            "subplan": self.subplan,
            "is_write": self.is_write,
            "cached": self.cached,
        }

    def as_text(self) -> str:
        """A pg-style EXPLAIN tree."""
        if self.tier == "local":
            return "\n".join(self.local_plan or ["(local plan)"])
        lines = ["Custom Scan (Citus Adaptive)"]
        marker = " (cached)" if self.cached else ""
        lines.append(f"  Planner: {self.planner}{marker}  [tier: {self.tier}]")
        if self.total_shard_count is not None and self.pruned_shard_count is not None:
            targeted = self.total_shard_count - self.pruned_shard_count
            lines.append(
                f"  Shards: {targeted} of {self.total_shard_count}"
                f" ({self.pruned_shard_count} pruned)"
            )
        lines.append(f"  Task Count: {self.task_count}")
        if self.nodes:
            lines.append(f"  Nodes: {', '.join(self.nodes)}")
        if self.pushed_down:
            lines.append(f"  Pushed Down: {', '.join(self.pushed_down)}")
        if self.coordinator:
            lines.append(f"  On Coordinator: {', '.join(self.coordinator)}")
        if self.merge_strategy:
            lines.append(f"  Merge: {self.merge_strategy}")
        if self.subplan:
            detail = ", ".join(f"{k}={v}" for k, v in self.subplan.items())
            lines.append(f"  ->  Subplan: {detail}")
        for task in self.tasks:
            lines.append(f"  ->  Task on {task.node}")
            if task.sql:
                lines.append(f"        {task.sql}")
        if self.merge_query:
            lines.append(f"  ->  Merge Query (coordinator)")
            lines.append(f"        {self.merge_query}")
        return "\n".join(lines)

    def __str__(self):
        return self.as_text()


# ----------------------------------------------------------------- explain


def explain(session, sql: str, params=None) -> DistributedExplain:
    """Plan ``sql`` through the session's planner hooks and describe the
    resulting distributed plan without executing it.

    Purely-local statements yield ``tier == "local"`` with the engine's
    own EXPLAIN lines attached.
    """
    statements = parse(sql)
    if not statements:
        raise ValueError("explain() needs exactly one statement")
    stmt = statements[0]
    if isinstance(stmt, A.Explain):
        stmt = stmt.statement
    plan = session.instance.hooks.call_planner(session, stmt, params)
    if plan is None:
        from ..engine.executor import LocalExecutor

        lines: list[str] = []
        if isinstance(stmt, (A.Select, A.Insert, A.Update, A.Delete)):
            lines = LocalExecutor(session).explain(stmt, params)
        return DistributedExplain(
            sql=sql, tier="local", planner="Local", task_count=0, local_plan=lines,
        )
    return describe_plan(plan, sql)


def describe_plan(plan, sql: str = "") -> DistributedExplain:
    """Normalize a planner-hook plan object into a DistributedExplain."""
    info_fn = getattr(plan, "explain_info", None)
    if info_fn is None:
        return DistributedExplain(
            sql=sql,
            tier="custom",
            planner=type(plan).__name__,
            task_count=0,
            local_plan=list(plan.explain_lines()),
        )
    info = info_fn()
    raw_tasks = info.get("tasks") or []
    tasks = [
        TaskTarget(node=t.node, sql=_task_sql(t),
                   shard_group=getattr(t, "shard_group", None))
        if not isinstance(t, TaskTarget) else t
        for t in raw_tasks
    ]
    task_count = info.get("task_count", len(tasks))
    total = info.get("total_shard_count")
    ext = getattr(plan, "ext", None)
    if total is None and ext is not None and tasks:
        total = _total_shards_for_tasks(ext, tasks)
    pruned = info.get("pruned_shard_count")
    if pruned is None and total is not None:
        targeted = _distinct_shards(tasks)
        if targeted is not None:
            pruned = max(total - targeted, 0)
    return DistributedExplain(
        sql=sql,
        tier=info["tier"],
        planner=info.get("planner", info["tier"]),
        task_count=task_count,
        tasks=tasks,
        total_shard_count=total,
        pruned_shard_count=pruned,
        pushed_down=list(info.get("pushed_down", ())),
        coordinator=list(info.get("coordinator", ())),
        merge_query=info.get("merge_query"),
        merge_strategy=info.get("merge_strategy"),
        subplan=info.get("subplan"),
        is_write=bool(info.get("is_write", False)),
        cached=bool(getattr(plan, "cached", False)),
    )


def _task_sql(task) -> str | None:
    """A task's shard SQL, deparsed lazily for AST-shipped tasks."""
    sql_text = getattr(task, "sql_text", None)
    if sql_text is not None:
        return sql_text()
    return getattr(task, "sql", None)


def _total_shards_for_tasks(ext, tasks: list[TaskTarget]) -> int | None:
    """Shard count of the colocation group the tasks anchor on."""
    colocation_ids = {
        t.shard_group[0] for t in tasks if t.shard_group is not None
    }
    if len(colocation_ids) != 1:
        return None
    (colocation_id,) = colocation_ids
    for table in ext.metadata.cache.tables.values():
        if table.colocation_id == colocation_id:
            return len(table.shards)
    return None


def _distinct_shards(tasks: list[TaskTarget]) -> int | None:
    indexes = set()
    for t in tasks:
        if t.shard_group is None:
            return None
        indexes.add(t.shard_group[:2])
    return len(indexes)
