"""Shard rebalancer (§3.4).

``Rebalancer.rebalance`` computes a move plan — by shard count (default),
by data size, or under a custom policy of cost/capacity/constraint
functions — and applies it with :func:`move_shard`, which performs the
logical-replication move protocol:

1. create shard replicas (the shard and all shards co-located with it) on
   the target node and copy the data while writes continue,
2. briefly block writes, replay the remaining changes (simulated as a short
   catch-up window on the cluster clock),
3. update ``pg_dist_placement`` so new queries route to the new node,
4. drop the old placements.

"The last few steps typically only take a few seconds, hence there is
minimal write downtime."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import RebalanceError
from .ddl import shard_ddl_statements

#: Phases every shard move passes through, in order (§3.4's protocol:
#: initial copy under logical replication, write-blocked catch-up,
#: metadata switch). ``get_rebalance_progress`` reports where each
#: in-flight move currently is.
MOVE_PHASES = ("copy", "catchup", "metadata")


@dataclass
class ShardMoveProgress:
    """Live progress of one shard move, exposed by
    ``get_rebalance_progress()``. A move that dies mid-protocol is kept
    with ``status="failed"`` and the phase it reached — a silently
    dropped entry would hide exactly the moves an operator most needs to
    see."""

    move_id: int
    table_name: str
    shardid: int
    source: str
    target: str
    bytes_total: int = 0
    bytes_copied: int = 0
    rows_total: int = 0
    rows_copied: int = 0
    phase: str = "copy"
    status: str = "moving"  # moving | completed | failed
    error: str | None = None
    started_at: float = 0.0
    updated_at: float = 0.0
    # [(phase, simulated time entered)] — monotone along MOVE_PHASES.
    phase_history: list = field(default_factory=list)

    def enter_phase(self, phase: str, at: float) -> None:
        self.phase = phase
        self.updated_at = at
        self.phase_history.append((phase, at))


class RebalanceProgress:
    """The cluster-wide shard-move progress table (bounded history)."""

    MAX_MOVES = 256

    def __init__(self):
        self.moves: list[ShardMoveProgress] = []
        self._seq = itertools.count(1)

    def start_move(self, table_name: str, shardid: int, source: str,
                   target: str, at: float, bytes_total: int = 0) -> ShardMoveProgress:
        move = ShardMoveProgress(
            next(self._seq), table_name, shardid, source, target,
            bytes_total=bytes_total, started_at=at, updated_at=at,
        )
        move.phase_history.append(("copy", at))
        self.moves.append(move)
        if len(self.moves) > self.MAX_MOVES:
            del self.moves[: len(self.moves) - self.MAX_MOVES]
        return move

    def active_moves(self) -> list[ShardMoveProgress]:
        return [m for m in self.moves if m.status == "moving"]


_PROGRESS_ATTR = "_citus_rebalance_progress"


def progress_for(ext) -> RebalanceProgress:
    """The progress table shared by every extension of one cluster."""
    holder = ext.cluster if ext.cluster is not None else ext
    progress = getattr(holder, _PROGRESS_ATTR, None)
    if progress is None:
        progress = RebalanceProgress()
        setattr(holder, _PROGRESS_ATTR, progress)
    return progress


@dataclass
class RebalanceStrategy:
    """A custom rebalance policy (the SQL-defined cost/capacity/constraint
    functions of the real rebalancer, as Python callables)."""

    name: str = "by_shard_count"
    # cost of one shard (default: every shard costs 1 → balance by count)
    shard_cost: Callable = lambda ext, shard: 1.0
    # relative capacity of a node (default: homogeneous)
    node_capacity: Callable = lambda ext, node: 1.0
    # may this shard live on this node?
    shard_allowed_on_node: Callable = lambda ext, shard, node: True


BY_SHARD_COUNT = RebalanceStrategy()
BY_DISK_SIZE = RebalanceStrategy(
    name="by_disk_size",
    shard_cost=lambda ext, shard: max(_shard_bytes(ext, shard), 1),
)


def _shard_bytes(ext, shard) -> int:
    node = ext.metadata.cache.placements.get(shard.shardid)
    if node is None:
        return 0
    instance = ext.cluster.node(node)
    if not instance.catalog.has_table(shard.shard_name):
        return 0
    return instance.catalog.get_table(shard.shard_name).heap.total_bytes


@dataclass
class ShardMove:
    shardid: int
    source: str
    target: str


class Rebalancer:
    def __init__(self, ext, strategy: RebalanceStrategy | None = None):
        self.ext = ext
        self.strategy = strategy or BY_SHARD_COUNT

    # ------------------------------------------------------------ planning

    def plan(self) -> list[ShardMove]:
        """Greedy plan: repeatedly move a leading co-location group from the
        most loaded node to the least loaded node that accepts it, until the
        imbalance cannot be improved."""
        ext = self.ext
        cache = ext.metadata.cache
        nodes = ext.all_node_names()
        if len(nodes) < 2:
            return []
        # Moves operate on colocation groups: the anchor shard plus all
        # shards co-located with it move together.
        groups = self._colocation_groups()
        load: dict[str, float] = {n: 0.0 for n in nodes}
        group_cost: dict[tuple, float] = {}
        group_node: dict[tuple, str] = {}
        for key, shards in groups.items():
            cost = sum(self.strategy.shard_cost(ext, s) for s in shards)
            group_cost[key] = cost
            node = cache.placements.get(shards[0].shardid)
            group_node[key] = node
            if node in load:
                load[node] += cost
        capacity = {n: max(self.strategy.node_capacity(ext, n), 1e-9) for n in nodes}

        moves: list[ShardMove] = []
        for _ in range(len(groups) * 2):
            utilization = {n: load[n] / capacity[n] for n in nodes}
            src = max(nodes, key=lambda n: utilization[n])
            dst = min(nodes, key=lambda n: utilization[n])
            gap_before = utilization[src] - utilization[dst]
            if gap_before < 1e-9:
                break
            candidates = [
                key for key, node in group_node.items()
                if node == src and all(
                    self.strategy.shard_allowed_on_node(ext, s, dst)
                    for s in groups[key]
                )
            ]
            best = None
            for key in candidates:
                delta = group_cost[key]
                new_src = (load[src] - delta) / capacity[src]
                new_dst = (load[dst] + delta) / capacity[dst]
                # The move only helps if it strictly narrows the gap.
                gap_after = abs(new_src - new_dst)
                if gap_after < gap_before - 1e-9:
                    if best is None or gap_after < best[0]:
                        best = (gap_after, key)
            if best is None:
                break
            key = best[1]
            delta = group_cost[key]
            for shard in groups[key]:
                moves.append(ShardMove(shard.shardid, src, dst))
            load[src] -= delta
            load[dst] += delta
            group_node[key] = dst
        return moves

    def rebalance(self, session) -> list[ShardMove]:
        moves = self.plan()
        self.ext.stat_counters.incr("rebalancer_runs")
        for move in moves:
            move_shard(self.ext, session, move.shardid, move.target,
                       move_colocated=False)
        return moves

    def _colocation_groups(self) -> dict:
        """(colocation_id, shard_index) -> [ShardInterval...] that must move
        together."""
        cache = self.ext.metadata.cache
        groups: dict[tuple, list] = {}
        for table in cache.tables.values():
            if table.is_reference:
                continue
            for index, shard in enumerate(table.shards):
                groups.setdefault((table.colocation_id, index), []).append(shard)
        return groups


def move_shard(ext, session, shardid: int, target_node: str,
               move_colocated: bool = True) -> None:
    """Move one shard placement (and, by default, its co-located shards)
    using the logical-replication protocol."""
    cache = ext.metadata.cache
    shard, table = _find_shard(ext, shardid)
    source_node = cache.placement_node(shardid)
    if source_node == target_node:
        return
    to_move = [(shard, table)]
    if move_colocated and not table.is_reference:
        index = [s.shardid for s in table.shards].index(shardid)
        for other in cache.colocated_tables(table.colocation_id):
            if other.name == table.name:
                continue
            other_shard = other.shards[index]
            to_move.append((other_shard, other))

    source = ext.cluster.node(source_node)
    clock = ext.cluster.clock
    progress = progress_for(ext)
    entries = []
    for shard_interval, dist_table in to_move:
        total = 0
        if source.is_up and source.catalog.has_table(shard_interval.shard_name):
            total = source.catalog.get_table(shard_interval.shard_name).heap.total_bytes
        entries.append(progress.start_move(
            dist_table.name, shard_interval.shardid, source_node, target_node,
            clock.now(), bytes_total=total,
        ))
    try:
        for entry, (shard_interval, dist_table) in zip(entries, to_move):
            shell = ext.instance.catalog.get_table(dist_table.name)
            shard_index = None
            if not dist_table.is_reference:
                shard_index = [s.shardid for s in dist_table.shards].index(
                    shard_interval.shardid
                )
            target_conn = ext.worker_connection(target_node)
            # 1. Create the replica structure on the target.
            for ddl in shard_ddl_statements(ext, shell, shard_interval.shard_name,
                                            shard_index):
                target_conn.execute(ddl)
            # 2. Initial copy under logical replication (reads and writes
            # continue on the source while this runs).
            rows = _read_shard_rows(source, shard_interval.shard_name)
            entry.rows_total = len(rows)
            before = target_conn.elapsed
            target_conn.copy_rows(shard_interval.shard_name, rows)
            session.wait_events.record("Net", "RemoteCopy",
                                       target_conn.elapsed - before,
                                       node=target_node)
            entry.rows_copied = len(rows)
            entry.bytes_copied = entry.bytes_total
            ext.stat_counters.incr("rebalancer_rows_copied", len(rows))
            clock.advance(len(rows) * 1e-6 + 0.05)
            entry.updated_at = clock.now()
        # 3. Brief write block + catch-up + metadata switch (seconds, not
        # minutes: "minimal write downtime").
        for entry in entries:
            entry.enter_phase("catchup", clock.now())
        clock.advance(2.0)
        for entry, (shard_interval, _table) in zip(entries, to_move):
            entry.enter_phase("metadata", clock.now())
            ext.metadata.update_placement(session, shard_interval.shardid,
                                          target_node)
        ext.sync_metadata_if_enabled(session)
        # 4. Drop the old placements.
        for shard_interval, _table in to_move:
            try:
                ext.worker_connection(source_node).execute(
                    f"DROP TABLE IF EXISTS {shard_interval.shard_name}"
                )
            except Exception:
                pass
    except Exception as exc:
        # Record the aborted move with the phase it reached instead of
        # silently dropping it from the progress table.
        at = clock.now()
        for entry in entries:
            if entry.status == "moving":
                entry.status = "failed"
                entry.error = f"{type(exc).__name__}: {exc}"
                entry.updated_at = at
        ext.stat_counters.incr("rebalancer_moves_failed", len(entries))
        raise
    at = clock.now()
    for entry in entries:
        entry.status = "completed"
        entry.updated_at = at
    ext.stats["shard_moves"] += len(to_move)
    ext.stat_counters.incr("rebalancer_shard_moves", len(to_move), node=target_node)


def _read_shard_rows(instance, shard_name: str) -> list:
    session = instance.connect("shard_move")
    try:
        return [list(r) for r in session.execute(f"SELECT * FROM {shard_name}").rows]
    finally:
        session.close()


def _find_shard(ext, shardid: int):
    for table in ext.metadata.cache.tables.values():
        for shard in table.shards:
            if shard.shardid == shardid:
                return shard, table
    raise RebalanceError(f"shard {shardid} not found in metadata")


def drain_node(ext, session, node_name: str) -> list[ShardMove]:
    """Move every shard off a node (preparation for removing it), using the
    same logical-replication move protocol. Reference-table replicas stay
    (they exist everywhere by definition)."""
    cache = ext.metadata.cache
    targets = [n for n in ext.all_node_names() if n != node_name]
    if not targets:
        raise RebalanceError("cannot drain the only node in the cluster")
    moves: list[ShardMove] = []
    ext.stat_counters.incr("rebalancer_drains")
    balancer = Rebalancer(ext)
    rotation = 0
    for key, shards in balancer._colocation_groups().items():
        anchor = shards[0]
        if cache.placements.get(anchor.shardid) != node_name:
            continue
        target = targets[rotation % len(targets)]
        rotation += 1
        move_shard(ext, session, anchor.shardid, target, move_colocated=True)
        cache = ext.metadata.cache
        for shard in shards:
            moves.append(ShardMove(shard.shardid, node_name, target))
    return moves


def undistribute_table(ext, session, table_name: str) -> None:
    """Convert a Citus table back to a local table: pull all rows to the
    coordinator shell, drop shards and metadata."""
    dist = ext.metadata.cache.get_table(table_name)
    rows = session.execute(f"SELECT * FROM {table_name}").rows
    ext.ddl.propagate_drop_table(session, table_name)
    shell = ext.instance.catalog.get_table(table_name)
    if rows:
        session.copy_rows(table_name, rows)
