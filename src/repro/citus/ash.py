"""Active Session History: a deterministic cluster-wide wait/state sampler.

``citus_dist_stat_activity`` answers "what is the cluster doing *right
now*" and the counters answer "what happened in total" — this module
answers the question operators actually ask when a tail-latency SLO
breaks: *what was the cluster doing between t1 and t2, and what was it
waiting on?* It is the simulation's equivalent of pg_wait_sampling /
Oracle-style ASH tooling layered over ``pg_stat_activity``.

There are no threads. The sampler registers a **clock observer** on the
shared :class:`~repro.net.clock.SimClock`; whenever any component advances
virtual time across a ``citus.ash_sampling_interval`` boundary, the
observer fires and snapshots every session cluster-wide through the
existing :func:`~repro.citus.introspection.activity_records` path (query
deparse skipped — only the fingerprint digest is kept). One **sample** is
one (boundary, session) pair:

``(virtual timestamp, global PID, node, state, full WaitEventStack frames
— not just the top one —, fingerprint digest, planner tier, tenant
dist-key, distributed txn id)``

Samples land in a bounded ring (``citus.ash_buffer_size``, newest-N
retention). Because virtual time is deterministic, two same-seed runs
produce byte-for-byte identical rings — the ASH dump is part of the
``bench_traffic`` determinism gate.

Report modes (the ``citus_ash()`` UDF):

- ``samples`` — the raw ring, optionally windowed to ``[start, end]``;
- ``top_waits`` / ``top_queries`` / ``top_tenants`` — sample-count
  rollups over a time range (a session with no live wait counts as
  ``CPU.Running`` while active, ``Idle.<state>`` otherwise);
- ``timeline`` — fixed-width buckets with active/idle splits and
  per-wait-class totals via the shared
  :func:`~repro.engine.waitevents.wait_class_totals` helper;
- ``flamegraph`` — collapsed-stack format
  (``node;wclass;event;...;fingerprint count``), one line per distinct
  stack, counts summing to the sample total — feed straight into
  flamegraph.pl or speedscope.

Cost model: with ``citus.enable_ash`` off the observer is detached, so
every clock advance pays exactly one empty-list test inside ``SimClock``
and every capture surface one ``ext.ash is None`` attribute test.
"""

from __future__ import annotations

import json
import math
from collections import deque

from ..engine.waitevents import COUNT_PREFIX, wait_class_totals

#: Sample tuple layout (kept a plain tuple: the ring holds up to
#: ``ash_buffer_size`` of them and dict samples would triple memory).
S_T, S_GPID, S_NODE, S_STATE, S_STACK, S_FP, S_TIER, S_TENANT, S_DTXN = \
    range(9)

#: Default ring capacity, in session-samples (not ticks).
DEFAULT_BUFFER_SIZE = 65536

#: Timeline buckets default to this many sampling intervals.
TIMELINE_BUCKETS_PER_INTERVAL = 10


def top_frame(sample) -> tuple:
    """The (class, event) a sample reports as its wait: the top live
    frame of the captured stack, or the synthetic ``CPU.Running`` /
    ``Idle.<state>`` frames for sessions that were not waiting."""
    stack = sample[S_STACK]
    if stack:
        return stack[-1]
    if sample[S_STATE] == "active":
        return ("CPU", "Running")
    return ("Idle", sample[S_STATE].replace(" ", "_"))


class AshSampler:
    """The cluster-shared Active Session History ring.

    One instance per cluster (attached via :func:`ash_for`, the same
    holder-attribute pattern as the stats registry, tracer, and txn
    graph), reached from the UDFs and the metrics snapshot through
    ``ext.ash`` — ``None`` when ``citus.enable_ash`` is off.
    """

    def __init__(self, clock, registry):
        self.clock = clock
        self.registry = registry
        self.ring: deque = deque(maxlen=DEFAULT_BUFFER_SIZE)
        self.interval = 0.0
        self.enabled = False
        self.ext = None
        self._attached = False
        # Re-entrancy latch: sampling must never recurse, even if a future
        # capture path advances the clock while we walk the sessions.
        self._sampling = False

    # --------------------------------------------------------- lifecycle

    def configure(self, enabled: bool, interval: float, buffer_size: int,
                  ext=None) -> None:
        """(Re)apply the ash GUCs. Attaches or detaches the clock
        observer; resizing the ring keeps the newest samples."""
        if ext is not None and (self.ext is None
                                or getattr(ext, "is_coordinator", False)):
            self.ext = ext
        self.interval = float(interval)
        buffer_size = max(1, int(buffer_size))
        if self.ring.maxlen != buffer_size:
            self.ring = deque(self.ring, maxlen=buffer_size)
        self.enabled = bool(enabled) and self.clock is not None
        if self.enabled and not self._attached:
            self.clock.add_observer(self._on_advance)
            self._attached = True
        elif not self.enabled and self._attached:
            self.clock.remove_observer(self._on_advance)
            self._attached = False

    def reset(self) -> None:
        """citus_stat_reset('ash'): drop every buffered sample. The
        ``ash_samples`` / ``ash_sample_ticks`` counters live in the shared
        registry and belong to the 'counters' scope."""
        self.ring.clear()

    # ---------------------------------------------------------- sampling

    def _on_advance(self, previous: float, now: float) -> None:
        """Clock observer: sample once per interval boundary crossed by
        this advance. A boundary ``b`` is sampled when ``previous < b <=
        now``, so an advance landing exactly on a boundary samples it and
        the next advance starting there does not resample it."""
        interval = self.interval
        if interval <= 0.0 or self._sampling or self.ext is None:
            return
        first = math.floor(previous / interval) + 1
        last = math.floor(now / interval)
        if last < first:
            return
        self._sampling = True
        try:
            rows = self._snapshot_rows()
            ring = self.ring
            for index in range(first, last + 1):
                t = index * interval
                for row in rows:
                    ring.append((t,) + row)
            ticks = last - first + 1
            self.registry.incr("ash_sample_ticks", ticks)
            if rows:
                self.registry.incr("ash_samples", ticks * len(rows))
        finally:
            self._sampling = False

    def _snapshot_rows(self) -> list[tuple]:
        """One timestamp-less sample row per open session cluster-wide,
        via the activity view's record path (deparse skipped)."""
        from .introspection import activity_records

        rows = []
        for rec in activity_records(self.ext, with_query=False):
            session = rec["session"]
            rows.append((
                rec["global_pid"],
                rec["nodename"],
                rec["state"],
                tuple((we.wclass, we.event)
                      for we in session.wait_events.frames()),
                rec["query_fingerprint"],
                rec["citus_tier"],
                getattr(session, "_citus_tenant", None),
                rec["distributed_txn_id"],
            ))
        return rows

    # ----------------------------------------------------------- reading

    def samples(self, start: float | None = None,
                end: float | None = None) -> list[tuple]:
        """Ring samples with ``start <= t <= end``, oldest first."""
        if start is None and end is None:
            return list(self.ring)
        lo = -math.inf if start is None else start
        hi = math.inf if end is None else end
        return [s for s in self.ring if lo <= s[S_T] <= hi]

    def raw_records(self, start=None, end=None) -> list[dict]:
        records = []
        for s in self.samples(start, end):
            stack = s[S_STACK]
            wait = stack[-1] if stack else None
            records.append({
                "sample_time": s[S_T],
                "global_pid": s[S_GPID],
                "nodename": s[S_NODE],
                "state": s[S_STATE],
                "wait_event_type": wait[0] if wait else None,
                "wait_event": wait[1] if wait else None,
                "wait_stack": ">".join(f"{c}.{e}" for c, e in stack),
                "query_fingerprint": s[S_FP],
                "citus_tier": s[S_TIER],
                "tenant": s[S_TENANT],
                "distributed_txn_id": s[S_DTXN],
            })
        return records

    def top_waits(self, start=None, end=None, limit=None) -> list[dict]:
        """Sample counts by reported wait (class, event) over the range,
        busiest first, each with the node contributing most samples."""
        counts: dict[tuple, int] = {}
        nodes: dict[tuple, dict] = {}
        total = 0
        for s in self.samples(start, end):
            total += 1
            key = top_frame(s)
            counts[key] = counts.get(key, 0) + 1
            per_node = nodes.setdefault(key, {})
            per_node[s[S_NODE]] = per_node.get(s[S_NODE], 0) + 1
        records = []
        for key, n in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
            top_node = sorted(nodes[key].items(),
                              key=lambda kv: (-kv[1], kv[0]))[0][0]
            records.append({
                "wait_event_type": key[0],
                "wait_event": key[1],
                "samples": n,
                "pct": round(100.0 * n / total, 2),
                "top_node": top_node,
            })
        return records[:limit] if limit else records

    def top_queries(self, start=None, end=None, limit=None) -> list[dict]:
        """Sample counts by statement fingerprint (sessions with no
        statement are skipped; pct is still of *all* samples in range, so
        the numbers read as time shares of the window)."""
        counts: dict[str, int] = {}
        waits: dict[str, dict] = {}
        total = 0
        for s in self.samples(start, end):
            total += 1
            fp = s[S_FP]
            if fp is None:
                continue
            counts[fp] = counts.get(fp, 0) + 1
            per_wait = waits.setdefault(fp, {})
            frame = "{0}.{1}".format(*top_frame(s))
            per_wait[frame] = per_wait.get(frame, 0) + 1
        records = []
        for fp, n in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
            top_wait = sorted(waits[fp].items(),
                              key=lambda kv: (-kv[1], kv[0]))[0][0]
            records.append({
                "query_fingerprint": fp,
                "samples": n,
                "pct": round(100.0 * n / total, 2) if total else 0.0,
                "top_wait": top_wait,
            })
        return records[:limit] if limit else records

    def top_tenants(self, start=None, end=None, limit=None) -> list[dict]:
        counts: dict = {}
        total = 0
        for s in self.samples(start, end):
            total += 1
            tenant = s[S_TENANT]
            if tenant is None:
                continue
            counts[tenant] = counts.get(tenant, 0) + 1
        records = [
            {
                "tenant": tenant,
                "samples": n,
                "pct": round(100.0 * n / total, 2) if total else 0.0,
            }
            for tenant, n in sorted(counts.items(),
                                    key=lambda kv: (-kv[1], str(kv[0])))
        ]
        return records[:limit] if limit else records

    def timeline(self, start=None, end=None,
                 bucket_seconds: float | None = None) -> list[dict]:
        """Bucketed workload phases: per fixed-width bucket, the sample
        count, active/idle split, and per-wait-class totals (rolled up by
        the shared ``wait_class_totals`` helper, the same rollup the
        traffic harness report uses on the counter delta)."""
        width = bucket_seconds or (self.interval * TIMELINE_BUCKETS_PER_INTERVAL)
        if width <= 0:
            width = 1.0
        buckets: dict[int, list] = {}
        for s in self.samples(start, end):
            index = int(s[S_T] / width)
            info = buckets.get(index)
            if info is None:
                # [samples, active, synthesized wait counters]
                info = buckets[index] = [0, 0, {}]
            info[0] += 1
            if s[S_STATE] == "active":
                info[1] += 1
            stack = s[S_STACK]
            if stack:
                name = COUNT_PREFIX + "{0}.{1}".format(*stack[-1])
                info[2][name] = info[2].get(name, 0) + 1
        records = []
        for index in sorted(buckets):
            samples, active, counters = buckets[index]
            records.append({
                "bucket": index,
                "start_s": index * width,
                "end_s": (index + 1) * width,
                "samples": samples,
                "active": active,
                "idle": samples - active,
                "wait_classes": json.dumps(
                    wait_class_totals(counters), sort_keys=True),
            })
        return records

    def flamegraph(self, start=None, end=None) -> str:
        """Collapsed-stack export: ``node;wclass;event;...;fingerprint
        count`` lines (sorted), counts summing to the number of samples
        in range. Sessions with no live wait collapse under synthetic
        ``CPU;Running`` / ``Idle;<state>`` frames so every sample is
        represented and the totals reconcile with the ring."""
        counts: dict[str, int] = {}
        for s in self.samples(start, end):
            frames = [s[S_NODE]]
            stack = s[S_STACK]
            if stack:
                for wclass, event in stack:
                    frames.append(wclass)
                    frames.append(event)
            elif s[S_STATE] == "active":
                frames += ["CPU", "Running"]
            else:
                frames += ["Idle", s[S_STATE].replace(" ", "_")]
            if s[S_FP]:
                frames.append(s[S_FP])
            key = ";".join(frames)
            counts[key] = counts.get(key, 0) + 1
        return "\n".join(f"{stack} {n}" for stack, n in sorted(counts.items()))

    # ------------------------------------------------------- diagnostics

    def slo_diagnostics(self, start=None, end=None, top_n: int = 5) -> dict:
        """What the traffic harness embeds in its report when an SLO
        fails: the top waits and fingerprints overlapping the failing
        window, plus a one-line headline naming the dominant non-idle
        wait ("62% of samples in TwoPC.CommitPrepared on node w2")."""
        sampled = self.samples(start, end)
        waits = self.top_waits(start, end, limit=top_n)
        queries = self.top_queries(start, end, limit=top_n)
        headline = None
        busy = next((w for w in waits if w["wait_event_type"] != "Idle"), None)
        if busy is not None:
            headline = (
                f"{busy['pct']}% of ASH samples in "
                f"{busy['wait_event_type']}.{busy['wait_event']}"
                f" on node {busy['top_node']}"
            )
        return {
            "window": [start, end],
            "samples": len(sampled),
            "sampling_interval_s": self.interval,
            "top_waits": waits,
            "top_queries": queries,
            "headline": headline,
        }

    # -------------------------------------------------------- prometheus

    def prometheus_lines(self, format_value, labels) -> list[str]:
        """``citus_ash_*`` families for ``citus_metrics_snapshot`` (the
        ``ash_samples`` / ``ash_sample_ticks`` lifetime counters ride the
        plain-counter exporter already). Emitted in sorted order with the
        snapshot module's canonical formatters."""
        lines = [
            "# TYPE citus_ash_ring_samples gauge",
            f"citus_ash_ring_samples {len(self.ring)}",
            "# TYPE citus_ash_ring_capacity gauge",
            f"citus_ash_ring_capacity {self.ring.maxlen}",
            "# TYPE citus_ash_sampling_interval_seconds gauge",
            f"citus_ash_sampling_interval_seconds {format_value(self.interval)}",
        ]
        by_node: dict[str, int] = {}
        by_wait: dict[tuple, int] = {}
        for s in self.ring:
            by_node[s[S_NODE]] = by_node.get(s[S_NODE], 0) + 1
            key = top_frame(s)
            by_wait[key] = by_wait.get(key, 0) + 1
        node_lines = [
            f"citus_ash_node_samples{labels(node=node)} {by_node[node]}"
            for node in sorted(by_node)
        ]
        if node_lines:
            lines.append("# TYPE citus_ash_node_samples gauge")
            lines.extend(node_lines)
        wait_lines = [
            "citus_ash_wait_samples"
            + labels(**{"class": wclass, "event": event})
            + f" {by_wait[(wclass, event)]}"
            for wclass, event in sorted(by_wait)
        ]
        if wait_lines:
            lines.append("# TYPE citus_ash_wait_samples gauge")
            lines.extend(wait_lines)
        return lines


_HOLDER_ATTR = "_citus_ash_sampler"


def holder_has_sampler(holder) -> bool:
    """True when a sampler already exists on ``holder`` — lets the
    extension avoid constructing one at install time when
    ``citus.enable_ash`` starts off (the benchmark's fully-detached
    baseline), while a runtime re-enable finds its ring intact."""
    return getattr(holder, _HOLDER_ATTR, None) is not None


def ash_for(holder, clock, registry) -> AshSampler:
    """The ASH sampler attached to ``holder`` (the cluster), creating it
    on first use — the same holder-attribute pattern as ``stats_for``,
    ``trace_for``, and ``txngraph_for``."""
    sampler = getattr(holder, _HOLDER_ATTR, None)
    if sampler is None:
        sampler = AshSampler(clock, registry)
        setattr(holder, _HOLDER_ATTR, sampler)
    return sampler
