"""Distributed query planners: fast path, router, pushdown, join order."""
