"""Logical pushdown planner (§3.5).

Plans multi-shard queries whose join tree can be fully pushed down: all
distributed tables are co-located and joined on their distribution columns
(checked via the equivalence analysis), and no inner subquery aggregates
across shards. Two merge strategies exist:

- **concat** — the GROUP BY contains the distribution column (or there is
  no aggregation): every group lives on one shard, so workers run the
  complete query and the coordinator only concatenates, re-sorts and
  re-limits. This is the trivially parallel case the paper describes.
- **two-phase aggregation** — otherwise the outermost aggregates are split
  into worker-side partial aggregates and a coordinator-side merge query
  over the combined intermediate result, the VeniceDB pattern of §5
  ("calculating partial aggregates on the worker nodes and merging the
  partial aggregates on the coordinator").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...engine.functions import PARTIAL_REWRITES, is_aggregate
from ...errors import UnsupportedDistributedQuery
from ...sql import ast as A
from ...sql.deparse import deparse
from ..sharding import QueryAnalysis, prune_shards
from .tasks import Task, rewrite_to_shard


@dataclass
class PushdownSelect:
    """The result of planning a multi-shard SELECT."""

    tasks: list
    mode: str  # "concat" | "merge"
    master_query: A.Select | None  # merge mode: query over the intermediate
    intermediate_columns: list  # column names of worker result
    visible_columns: list  # output column names
    hidden_sort_keys: list  # concat mode: (position, ascending, nulls_first)
    distinct: bool = False
    offset: A.Expr | None = None
    limit: A.Expr | None = None
    n_visible: int = 0
    # Observability: anchor table, its shard count before pruning, and the
    # clause-level split between worker and coordinator evaluation.
    anchor_table: str = ""
    total_shards: int = 0
    pushed_down: list = field(default_factory=list)
    coordinator: list = field(default_factory=list)
    # Plan-cache replay: the worker-side query shape and the anchor's alias,
    # so a cached plan can re-prune shards and rebuild tasks from new
    # parameter values without re-running the planner.
    worker_query: A.Select | None = None
    anchor_alias: str | None = None
    # How the coordinator combines the shard streams (shown by EXPLAIN).
    merge_strategy: str = "Concat (streaming)"


def plan_pushdown_select(ext, select: A.Select, params, analysis: QueryAnalysis,
                         search=None):
    """Build a PushdownSelect, or None when pushdown does not apply,
    raising UnsupportedDistributedQuery for recognisably unsupported SQL.
    Misses and raises record their structured reason into ``search``."""

    def unsupported(code, message):
        if search is not None:
            search.reject("pushdown", code, message)
        raise UnsupportedDistributedQuery(message)

    cache = ext.metadata.cache
    dist = analysis.distributed
    if not dist:
        if search is not None:
            search.reject("pushdown", "no_distributed_tables",
                          "statement references no distributed tables")
        return None
    if analysis.locals:
        unsupported(
            "local_tables",
            "joining local tables with distributed tables is not supported",
        )
    if select.for_update:
        unsupported(
            "for_update",
            "SELECT FOR UPDATE on multiple shards is not supported",
        )
    if select.set_ops:
        unsupported(
            "set_ops",
            "set operations on distributed tables require a single shard (router)",
        )
    if select.ctes:
        unsupported(
            "ctes",
            "CTEs over multiple shards are not supported in this reproduction",
        )
    colocation_ids = {o.dist.colocation_id for o in dist}
    if len(colocation_ids) != 1 or not analysis.all_dist_columns_equal():
        if search is not None:
            search.reject("pushdown", "non_colocated_join",
                          "tables are not co-located or not joined on their"
                          " distribution columns")
        return None  # hand over to the join-order planner
    if analysis.inner_cross_shard_agg:
        unsupported(
            "cross_shard_subquery_agg",
            "subqueries that aggregate across shards cannot be pushed down"
            " (only the outermost aggregation is distributed)",
        )

    try:
        _check_window_functions(select, analysis)
    except UnsupportedDistributedQuery as exc:
        if search is not None:
            search.reject("pushdown", "window_functions", str(exc))
        raise
    anchor = dist[0]
    shard_indexes = prune_shards(anchor.dist, select.where, params, anchor.alias)
    pruned = len(anchor.dist.shards) - len(shard_indexes)
    if pruned:
        ext.stat_counters.incr("planner_shards_pruned", pruned)
    mode = _choose_mode(select, analysis)
    if mode == "concat":
        return _plan_concat(ext, select, params, analysis, anchor, shard_indexes)
    return _plan_merge(ext, select, params, analysis, anchor, shard_indexes)


def _check_window_functions(select: A.Select, analysis: QueryAnalysis) -> None:
    """Multi-shard window functions push down only when every window is
    partitioned by the distribution column — each partition then lives on
    one shard (the same restriction Citus applies)."""
    windows = [
        n for t in select.targets if isinstance(t, A.TargetEntry)
        for n in A.walk(t.expr)
        if isinstance(n, A.FuncCall) and n.over is not None
    ]
    if not windows:
        return
    dist_roots = {
        analysis.equivalence.find(analysis.dist_column_key(occ))
        for occ in analysis.distributed
    }
    for window in windows:
        partition_ok = False
        for expr in window.over.partition_by:
            if isinstance(expr, A.ColumnRef):
                if analysis.equivalence.find(expr.key) in dist_roots:
                    partition_ok = True
                for occ in analysis.distributed:
                    if expr.table is None and expr.name == occ.dist.dist_column:
                        partition_ok = True
        if not partition_ok:
            raise UnsupportedDistributedQuery(
                "window functions on distributed tables must be partitioned"
                " by the distribution column"
            )


def _choose_mode(select: A.Select, analysis: QueryAnalysis) -> str:
    has_aggs = _query_has_aggregates(select)
    if not has_aggs and not select.group_by and not select.distinct:
        return "concat"
    if _group_by_contains_dist_column(select, analysis):
        return "concat"
    if not has_aggs and not select.group_by and select.distinct:
        return "concat"  # DISTINCT re-applied on the coordinator
    return "merge"


def _query_has_aggregates(select: A.Select) -> bool:
    nodes = list(select.targets)
    if select.having is not None:
        nodes.append(select.having)
    for entry in nodes:
        expr = entry.expr if isinstance(entry, A.TargetEntry) else entry
        if expr is None:
            continue
        if any(isinstance(n, A.FuncCall) and is_aggregate(n.name) for n in _walk_no_subquery(expr)):
            return True
    return False


def _walk_no_subquery(expr):
    """Walk an expression without descending into subqueries (their
    aggregates belong to the subquery, not this level)."""
    if isinstance(expr, A.SubqueryExpr):
        return
    if isinstance(expr, A.Node):
        yield expr
        import dataclasses

        for f in dataclasses.fields(expr):
            value = getattr(expr, f.name)
            if isinstance(value, A.Node):
                yield from _walk_no_subquery(value)
            elif isinstance(value, (list, tuple)):
                for v in value:
                    if isinstance(v, A.Node):
                        yield from _walk_no_subquery(v)


def _group_by_contains_dist_column(select: A.Select, analysis: QueryAnalysis) -> bool:
    if not select.group_by:
        return False
    dist = analysis.distributed
    if not dist:
        return False
    dist_roots = {
        analysis.equivalence.find(analysis.dist_column_key(occ)) for occ in dist
    }
    targets = [t for t in select.targets if isinstance(t, A.TargetEntry)]
    for g in select.group_by:
        expr = g
        if isinstance(g, A.Literal) and isinstance(g.value, int):
            index = g.value - 1
            if 0 <= index < len(targets):
                expr = targets[index].expr
        if isinstance(expr, A.ColumnRef):
            if analysis.equivalence.find(expr.key) in dist_roots:
                return True
            # Unqualified reference to a distribution column.
            for occ in dist:
                if expr.table is None and expr.name == occ.dist.dist_column:
                    return True
    return False


# ---------------------------------------------------------------- concat


def _plan_concat(ext, select, params, analysis, anchor, shard_indexes):
    cache = ext.metadata.cache
    worker = select.copy()
    # Hidden sort keys are either ("pos", output_index) for positional
    # ORDER BY, or ("appended", j) for sort expressions appended to the
    # worker target list — resolved against the actual result width at
    # execution time, because * targets expand only on the workers.
    hidden_sort = []
    visible = _visible_columns(select)
    n_appended = 0
    if worker.order_by:
        # Append hidden sort columns so the coordinator can re-sort the
        # concatenated rows, then push ORDER BY (+combined LIMIT) down.
        for position, key in enumerate(worker.order_by):
            expr = key.expr
            if isinstance(expr, A.Literal) and isinstance(expr.value, int):
                hidden_sort.append(
                    (("pos", expr.value - 1), key.ascending, key.nulls_first)
                )
            else:
                worker.targets.append(
                    A.TargetEntry(expr.copy(), f"worker_sort_{position}")
                )
                hidden_sort.append(
                    (("appended", n_appended), key.ascending, key.nulls_first)
                )
                n_appended += 1
    limit, offset = select.limit, select.offset
    if worker.limit is not None and worker.offset is not None:
        worker.limit = A.BinaryOp("+", worker.limit, worker.offset)
    worker.offset = None
    tasks = _make_tasks(ext, worker, params, anchor, shard_indexes)
    pushed_down, coordinator = _classify_concat_clauses(select)
    if hidden_sort:
        merge_strategy = "MergeAppend (streaming)"
    elif limit is not None:
        merge_strategy = "Concat + LIMIT (early-stop)"
    else:
        merge_strategy = "Concat (streaming)"
    return PushdownSelect(
        tasks=tasks,
        mode="concat",
        master_query=None,
        intermediate_columns=[],
        visible_columns=visible,
        hidden_sort_keys=hidden_sort,
        distinct=select.distinct,
        offset=offset,
        limit=limit,
        n_visible=n_appended,  # reinterpreted: number of appended columns
        anchor_table=anchor.dist.name,
        total_shards=len(anchor.dist.shards),
        pushed_down=pushed_down,
        coordinator=coordinator,
        worker_query=worker,
        anchor_alias=anchor.alias,
        merge_strategy=merge_strategy,
    )


def _classify_concat_clauses(select: A.Select) -> tuple[list, list]:
    """Worker-evaluated vs. coordinator-re-applied clauses for concat mode:
    every group lives on one shard, so only the global re-sort, DISTINCT,
    and LIMIT/OFFSET need a coordinator pass over the concatenated rows."""
    pushed = ["WHERE"] if select.where is not None else []
    pushed.append("TARGET LIST")
    coordinator = []
    if select.group_by:
        pushed.append("GROUP BY")
    if select.having is not None:
        pushed.append("HAVING")
    if select.order_by:
        pushed.append("ORDER BY")
        coordinator.append("SORT (merge)")
    if select.distinct:
        coordinator.append("DISTINCT")
    if select.limit is not None:
        pushed.append("LIMIT (combined)")
        coordinator.append("LIMIT")
    if select.offset is not None:
        coordinator.append("OFFSET")
    return pushed, coordinator


def _visible_columns(select) -> list[str]:
    names = []
    for entry in select.targets:
        if isinstance(entry, A.TargetEntry):
            if entry.alias:
                names.append(entry.alias)
            elif isinstance(entry.expr, A.ColumnRef):
                names.append(entry.expr.name)
            elif isinstance(entry.expr, A.FuncCall):
                names.append(entry.expr.name.lower())
            else:
                names.append("?column?")
        else:
            names.append("*")
    return names


# ----------------------------------------------------------------- merge


def _plan_merge(ext, select, params, analysis, anchor, shard_indexes):
    worker_targets: list[A.TargetEntry] = []
    worker_exprs_seen: dict[str, str] = {}  # deparse(expr) -> worker column

    def worker_column_for(expr, partial_name=None) -> str:
        key = (partial_name or "") + deparse(expr)
        name = worker_exprs_seen.get(key)
        if name is None:
            name = f"worker_column_{len(worker_targets)}"
            worker_exprs_seen[key] = name
            worker_targets.append(A.TargetEntry(expr.copy(), name))
        return name

    group_worker_cols: list[str] = []
    # DISTINCT aggregate arguments become extra worker grouping columns:
    # workers emit one row per (group keys, distinct value); the
    # coordinator re-applies the DISTINCT aggregate over them.
    distinct_group_cols: list[str] = []
    distinct_group_exprs: list = []

    def split(expr):
        """Rewrite ``expr`` into its master form, pushing aggregate inputs
        and group keys into the worker target list."""
        if isinstance(expr, A.FuncCall) and is_aggregate(expr.name):
            if expr.distinct and len(expr.args) == 1 and not expr.order_by:
                col = worker_column_for(expr.args[0])
                if col not in distinct_group_cols:
                    distinct_group_cols.append(col)
                    distinct_group_exprs.append(expr.args[0])
                return A.FuncCall(expr.name, [A.ColumnRef(col)], distinct=True)
            rewrite = PARTIAL_REWRITES.get(expr.name.lower())
            if rewrite is None or expr.distinct or expr.order_by:
                raise UnsupportedDistributedQuery(
                    f"aggregate {expr.name}({'DISTINCT ' if expr.distinct else ''}...)"
                    " cannot be distributed without grouping by the distribution column"
                )
            worker_name, merge_name = rewrite
            worker_agg = expr.copy()
            worker_agg.name = worker_name
            col = worker_column_for(worker_agg, partial_name=worker_name)
            return A.FuncCall(merge_name, [A.ColumnRef(col)])
        if not _contains_aggregate(expr):
            col = worker_column_for(expr)
            if col not in group_worker_cols:
                group_worker_cols.append(col)
            return A.ColumnRef(col)
        # Mixed expression: recurse structurally.
        import dataclasses

        kwargs = {}
        for f in dataclasses.fields(expr):
            value = getattr(expr, f.name)
            if isinstance(value, A.Node):
                kwargs[f.name] = split(value)
            elif isinstance(value, list):
                kwargs[f.name] = [split(v) if isinstance(v, A.Node) else v for v in value]
            else:
                kwargs[f.name] = value
        return type(expr)(**kwargs)

    master_targets = []
    targets = [t for t in select.targets if isinstance(t, A.TargetEntry)]
    if len(targets) != len(select.targets):
        raise UnsupportedDistributedQuery(
            "SELECT * with cross-shard aggregation is not supported"
        )
    for entry in targets:
        master_targets.append(A.TargetEntry(split(entry.expr), entry.alias))

    # Original GROUP BY keys not already covered become hidden worker
    # columns so the coordinator can re-group identically.
    resolved_groups = []
    for g in select.group_by:
        expr = g
        if isinstance(g, A.Literal) and isinstance(g.value, int):
            index = g.value - 1
            if 0 <= index < len(targets):
                expr = targets[index].expr
        elif isinstance(g, A.ColumnRef) and g.table is None:
            for entry in targets:
                if entry.alias == g.name:
                    expr = entry.expr
                    break
        resolved_groups.append(expr)
        if not _contains_aggregate(expr):
            col = worker_column_for(expr)
            if col not in group_worker_cols:
                group_worker_cols.append(col)

    master_having = split(select.having) if select.having is not None else None
    master_order = []
    for key in select.order_by:
        if isinstance(key.expr, A.Literal) and isinstance(key.expr.value, int):
            master_order.append(A.SortKey(key.expr.copy(), key.ascending, key.nulls_first))
        elif isinstance(key.expr, A.ColumnRef) and key.expr.table is None and any(
            t.alias == key.expr.name for t in targets
        ):
            master_order.append(A.SortKey(key.expr.copy(), key.ascending, key.nulls_first))
        else:
            master_order.append(A.SortKey(split(key.expr), key.ascending, key.nulls_first))

    worker_query = A.Select(
        targets=worker_targets,
        from_items=[f.copy() for f in select.from_items],
        where=select.where.copy() if select.where is not None else None,
        group_by=[g.copy() for g in resolved_groups]
        + [e.copy() for e in distinct_group_exprs],
        distinct=False,
    )
    intermediate = "citus_intermediate"
    master_query = A.Select(
        targets=master_targets,
        from_items=[A.TableRef(intermediate)],
        group_by=[A.ColumnRef(c) for c in group_worker_cols],
        having=master_having,
        order_by=master_order,
        limit=select.limit.copy() if select.limit is not None else None,
        offset=select.offset.copy() if select.offset is not None else None,
        distinct=select.distinct,
    )
    tasks = _make_tasks(ext, worker_query, params, anchor, shard_indexes)
    pushed_down = ["PARTIAL AGGREGATES", "TARGET LIST"]
    if select.where is not None:
        pushed_down.insert(0, "WHERE")
    if select.group_by:
        pushed_down.append("GROUP BY (worker)")
    coordinator = ["MERGE AGGREGATES"]
    if select.group_by:
        coordinator.append("GROUP BY (merge)")
    if select.having is not None:
        coordinator.append("HAVING")
    if select.order_by:
        coordinator.append("ORDER BY")
    if select.limit is not None:
        coordinator.append("LIMIT")
    if select.offset is not None:
        coordinator.append("OFFSET")
    if select.distinct:
        coordinator.append("DISTINCT")
    return PushdownSelect(
        tasks=tasks,
        mode="merge",
        master_query=master_query,
        intermediate_columns=[t.alias for t in worker_targets],
        visible_columns=_visible_columns(select),
        hidden_sort_keys=[],
        n_visible=len(targets),
        anchor_table=anchor.dist.name,
        total_shards=len(anchor.dist.shards),
        pushed_down=pushed_down,
        coordinator=coordinator,
        worker_query=worker_query,
        anchor_alias=anchor.alias,
        merge_strategy="GroupAggregate Merge (incremental)",
    )


def _contains_aggregate(expr) -> bool:
    return any(
        isinstance(n, A.FuncCall) and is_aggregate(n.name) for n in _walk_no_subquery(expr)
    )


def _make_tasks(ext, worker_query, params, anchor, shard_indexes) -> list[Task]:
    cache = ext.metadata.cache
    tasks = []
    for index in shard_indexes:
        shard = anchor.dist.shards[index]
        node = cache.placement_node(shard.shardid)
        shard_stmt = rewrite_to_shard(worker_query, cache, index)
        tasks.append(
            Task(node, None, params, shard_group=(anchor.dist.colocation_id, index),
                 stmt=shard_stmt)
        )
    return tasks


# ------------------------------------------------- streaming merge operators
#
# The execution side of the two merge strategies, operating over the
# adaptive executor's per-task streams (pull-based): k-way heap merge-append
# for ORDER BY (workers push the sort down, so each shard stream arrives
# pre-sorted), streaming concat with LIMIT early-stop, and an incremental
# GROUP BY merge that feeds worker partials into the coordinator's hash
# aggregate one batch at a time. The coordinator buffer stays bounded by
# O(batch_size × stream_count); its peak is recorded via
# ``execution.note_buffered`` (the ``rows_buffered_peak`` gauge).


def make_concat_sort_key(plan: PushdownSelect, visible_width: int):
    """Row-key function for the coordinator merge, resolving hidden sort
    keys against the worker result width. Shared by the streaming
    MergeAppend and the materializing fallback so both orders agree."""
    from ...engine.datum import sort_key as value_sort_key
    from ...engine.executor import _Reversed

    specs = []
    for position_spec, ascending, nulls_first in plan.hidden_sort_keys:
        kind, index = position_spec
        position = index if kind == "pos" else visible_width + index
        nf = nulls_first if nulls_first is not None else not ascending
        specs.append((position, ascending, nf))

    def key_fn(row):
        keys = []
        for position, ascending, nf in specs:
            value = row[position] if position < len(row) else None
            null_rank = (0 if nf else 1) if value is None else (1 if nf else 0)
            value_key = value_sort_key(value)
            if not ascending:
                value_key = _Reversed(value_key)
            keys.append((null_rank, value_key))
        return keys

    return key_fn


def concat_visible_columns(plan: PushdownSelect, streams) -> list:
    """The visible output column names of a concat-mode plan: the first
    shard stream's shape (``*`` targets expand only on the workers) with
    trailing hidden sort columns trimmed."""
    first_columns = list(streams[0].columns) if streams else []
    n_appended = plan.n_visible
    visible_width = len(first_columns) - n_appended
    return first_columns[:visible_width] if n_appended else first_columns


def stream_concat_rows(plan: PushdownSelect, execution, session, params):
    """Streaming coordinator merge for concat-mode plans, as a generator
    of visible rows (shared by the SELECT data plane and the INSERT..SELECT
    write pipeline).

    With ORDER BY: k-way MergeAppend over the pre-sorted shard streams.
    Without: plain concat in task order (matching the materializing path's
    row order). Either way DISTINCT / OFFSET / LIMIT apply streamingly, and
    a satisfied LIMIT closes the remaining streams — tasks whose stream was
    never started are skipped without ever being dispatched.
    """
    from ...engine.expr import EvalContext, Row, evaluate

    streams = execution.streams
    ctx = EvalContext(row=Row(), params=params, session=session)
    offset = int(evaluate(plan.offset, ctx)) if plan.offset is not None else 0
    limit = None
    if plan.limit is not None:
        value = evaluate(plan.limit, ctx)
        if value is not None:
            limit = int(value)

    first_columns = list(streams[0].columns) if streams else []
    n_appended = plan.n_visible
    visible_width = len(first_columns) - n_appended

    if plan.hidden_sort_keys:
        source = _merge_append_rows(plan, streams, execution, visible_width)
    else:
        source = _concat_rows(streams, execution)

    try:
        seen = set() if plan.distinct else None
        skipped = 0
        emitted = 0
        satisfied = limit is not None and limit <= 0
        if not satisfied:
            for row in source:
                if n_appended:
                    row = row[:visible_width]
                if seen is not None:
                    key = tuple(_stream_hashable(v) for v in row)
                    if key in seen:
                        continue
                    seen.add(key)
                if skipped < offset:
                    skipped += 1
                    continue
                yield row
                emitted += 1
                if limit is not None and emitted >= limit:
                    satisfied = True
                    break
        if satisfied and any(not s.done for s in streams):
            execution.note_early_termination()
    finally:
        for stream in streams:
            stream.close()


def run_streaming_concat(plan: PushdownSelect, execution, session, params):
    """Materializing wrapper over :func:`stream_concat_rows` — the SELECT
    statement path, which must return a full :class:`QueryResult`."""
    from ...engine.executor import QueryResult

    streams = execution.streams
    columns = concat_visible_columns(plan, streams)
    out_rows = list(stream_concat_rows(plan, execution, session, params))
    return QueryResult(columns, out_rows)


def _concat_rows(streams, execution):
    """Drain shard streams sequentially in task order, one batch at a time
    (the coordinator holds at most one batch)."""
    for stream in streams:
        while True:
            batch = stream.fetch()
            if batch is None:
                break
            execution.note_buffered(len(batch))
            for row in batch:
                yield row


def _merge_append_rows(plan, streams, execution, visible_width):
    """K-way heap merge over pre-sorted shard streams. Buffering is bounded
    to one in-flight batch per stream; ties break by task order then arrival
    order so the output matches the materializing path's stable sort."""
    import heapq
    from collections import deque

    key_fn = make_concat_sort_key(plan, visible_width)
    pending = [deque() for _ in streams]
    heap: list = []
    held = 0
    seq = 0

    def push_next(index):
        nonlocal held, seq
        rows = pending[index]
        if not rows:
            batch = streams[index].fetch()
            if not batch:
                return
            rows.extend(batch)
            held += len(batch)
            execution.note_buffered(held)
        row = rows.popleft()
        heapq.heappush(heap, (key_fn(row), index, seq, row))
        seq += 1

    for index in range(len(streams)):
        push_next(index)
    while heap:
        _key, index, _seq, row = heapq.heappop(heap)
        held -= 1
        yield row
        push_next(index)


def run_streaming_group_merge(plan: PushdownSelect, execution, session, params):
    """Incremental two-phase aggregation merge: worker partial-aggregate
    rows stream into the coordinator's hash aggregate one batch at a time
    instead of being concatenated wholesale first."""
    from ...engine.executor import LocalExecutor

    def intermediate_rows():
        for stream in execution.streams:
            while True:
                batch = stream.fetch()
                if batch is None:
                    break
                execution.note_buffered(len(batch))
                for row in batch:
                    yield row

    session.temp_results["citus_intermediate"] = (
        plan.intermediate_columns, intermediate_rows(),
    )
    try:
        result = LocalExecutor(session).execute_select(plan.master_query, params)
    finally:
        session.temp_results.pop("citus_intermediate", None)
    result.columns = plan.visible_columns
    return result


def _stream_hashable(value):
    if isinstance(value, (dict, list)):
        from ...engine.datum import to_text

        return to_text(value)
    return value


# ------------------------------------------------------------ DML pushdown


def plan_pushdown_dml(ext, stmt, params, analysis, search=None) -> list[Task] | None:
    """Multi-shard UPDATE/DELETE: one task per (pruned) shard."""
    dist_occurrences = analysis.distributed
    if len(dist_occurrences) != 1 or analysis.locals:
        if search is not None:
            search.reject("pushdown", "shape",
                          "multi-shard DML supports exactly one distributed"
                          " table and no local tables")
        return None
    if any(isinstance(n, A.SubqueryExpr) for n in A.walk(stmt)):
        message = "subqueries in multi-shard UPDATE/DELETE are not supported"
        if search is not None:
            search.reject("pushdown", "subquery", message)
        raise UnsupportedDistributedQuery(message)
    occ = dist_occurrences[0]
    cache = ext.metadata.cache
    shard_indexes = prune_shards(occ.dist, stmt.where, params, occ.alias)
    pruned = len(occ.dist.shards) - len(shard_indexes)
    if pruned:
        ext.stat_counters.incr("planner_shards_pruned", pruned)
    tasks = []
    for index in shard_indexes:
        shard = occ.dist.shards[index]
        node = cache.placement_node(shard.shardid)
        shard_stmt = rewrite_to_shard(stmt, cache, index)
        tasks.append(
            Task(node, None, params, shard_group=(occ.dist.colocation_id, index),
                 returns_rows=bool(getattr(stmt, "returning", [])), stmt=shard_stmt)
        )
    return tasks
