"""Router planner (§3.5).

Handles arbitrarily complex statements that can be scoped to one set of
co-located shards: every distributed table must share a colocation group
and have its distribution column constrained — directly or transitively
through join equalities — to the same constant. The whole query is then
rewritten to shard names and delegated to the placement node, which is why
"the router planner implicitly supports all SQL features that PostgreSQL
supports".
"""

from __future__ import annotations

from ...engine.datum import hash_value
from ...sql import ast as A
from ..sharding import analyze_statement
from .tasks import Task, rewrite_to_shard


def try_router(ext, stmt, params, analysis=None, search=None):
    """Return [Task] if the statement routes to a single shard group. A
    miss records its structured reason into ``search`` when given."""
    tasks, reason = _try_router(ext, stmt, params, analysis)
    if tasks is None:
        # Cascade fall-through: the statement needs a multi-shard planner.
        ext.stat_counters.incr("planner_router_misses")
        if search is not None:
            code, detail = reason or ("unknown", "")
            search.reject("router", code, detail)
    return tasks


def _try_router(ext, stmt, params, analysis=None):
    cache = ext.metadata.cache
    if analysis is None:
        analysis = analyze_statement(stmt, cache, params, ext.instance.catalog)
    dist = analysis.distributed
    if not dist:
        return None, ("no_distributed_tables",
                      "statement references no distributed tables")
    if analysis.locals:
        return None, ("local_tables",
                      "local/distributed table mix cannot be routed")
    colocation_ids = {o.dist.colocation_id for o in dist}
    if len(colocation_ids) != 1:
        return None, ("colocation",
                      f"{len(colocation_ids)} colocation groups referenced")
    value, ok = analysis.common_constant()
    if not ok:
        return None, ("no_common_constant",
                      "distribution columns are not all constrained to one"
                      " constant")
    anchor = dist[0].dist
    shard_index = anchor.shard_index_for_value(value)
    node = cache.placement_node(anchor.shards[shard_index].shardid)
    shard_stmt = rewrite_to_shard(stmt, cache, shard_index)
    returns = isinstance(stmt, A.Select) or bool(getattr(stmt, "returning", []))
    return [
        Task(node, None, params, shard_group=(anchor.colocation_id, shard_index),
             returns_rows=returns, stmt=shard_stmt)
    ], None
