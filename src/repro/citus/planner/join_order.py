"""Logical join order planner (§3.5): non-co-located joins.

When the join tree cannot be pushed down, one side is materialized as an
*intermediate result* and physically moved so that the join becomes
co-located:

- **re-partition join** — the moved table's rows are hashed on the join
  column into buckets aligned with the anchor table's shard ranges and
  loaded into per-shard intermediate tables on the anchor's nodes; network
  cost ≈ size(moved).
- **broadcast join** — the moved table is replicated in full to every node
  holding anchor shards; network cost ≈ size(moved) × #nodes. Chosen when
  the moved side is small or when neither side joins on its distribution
  column.

The planner estimates both costs and "chooses the order that minimizes the
network traffic". After the move, the rewritten query is handed to the
logical pushdown planner — the intermediate table is registered in the
metadata cache as a transient co-located (or reference) table, which makes
the pushdown machinery (including two-phase aggregation) apply unchanged.

Scope (documented limitation, cf. the paper's own "4 of the 22 TPC-H
queries are unsupported"): exactly two distributed tables per query;
correlated subqueries against non-co-located tables are unsupported.
"""

from __future__ import annotations

import itertools

from ...engine.datum import hash_value
from ...engine.executor import QueryResult
from ...errors import UnsupportedDistributedQuery
from ...sql import ast as A
from ...sql.deparse import deparse
from ..metadata import REFERENCE, ShardInterval
from ..sharding import analyze_statement
from .pushdown import plan_pushdown_select

_intermediate_counter = itertools.count(1)


def plan_join_order(ext, select: A.Select, params, analysis, search=None):
    """Return a RepartitionPlan, or None when this planner does not apply.

    Every costed strategy (repartition per join side, broadcast per side)
    is kept on the returned plan's ``candidates`` list and — when a
    PlanSearch is being recorded — fed into the pipeline as one chosen
    candidate plus the losing alternatives."""
    if not isinstance(select, A.Select):
        if search is not None:
            search.reject("join_order", "statement_kind",
                          "only SELECT joins can be repartitioned")
        return None
    dist = analysis.distributed
    if len(dist) != 2 or analysis.locals:
        if search is not None:
            search.reject("join_order", "shape",
                          "repartition joins support exactly two distributed"
                          " tables and no local tables")
        return None
    if select.ctes or select.set_ops or select.for_update:
        if search is not None:
            search.reject("join_order", "shape",
                          "CTEs, set operations, and FOR UPDATE cannot be"
                          " repartitioned")
        return None
    if not ext.config.enable_repartition_joins:
        message = ("the query contains a non-co-located join and"
                   " citus.enable_repartition_joins is off")
        if search is not None:
            search.reject("join_order", "disabled", message)
        raise UnsupportedDistributedQuery(message)
    a, b = dist
    candidates = []
    # Re-partition candidates: anchor joined on its own distribution column.
    for anchor, moved in ((a, b), (b, a)):
        join_col = _join_column_on_dist_key(ext, analysis, anchor, moved)
        if join_col is not None:
            candidates.append(
                ("repartition", anchor, moved, join_col, ext.table_size_estimate(moved.name))
            )
    # Broadcast candidates are always available for inner joins.
    n_nodes = max(len(ext.all_node_names()), 1)
    for anchor, moved in ((a, b), (b, a)):
        candidates.append(
            ("broadcast", anchor, moved, None,
             ext.table_size_estimate(moved.name) * n_nodes)
        )
    # "Chooses the order that minimizes the network traffic" (§3.5): the
    # move's network bytes decide; the per-task dispatch charge is the same
    # for every strategy (one task per anchor shard) and only matters for
    # the cross-tier cost reporting below.
    candidates.sort(key=lambda c: c[4])
    strategy, anchor, moved, join_col, cost = candidates[0]
    ext.stat_counters.incr(f"join_order_{strategy}")
    costed = [_describe_candidate(ext, c) for c in candidates]
    if search is not None:
        chosen, *rest = costed
        search.accept("join_order", f"Join Order ({strategy})",
                      chosen["cost"], **_candidate_attrs(chosen))
        for alt in rest:
            search.alternative("join_order",
                               f"Join Order ({alt['strategy']})",
                               alt["cost"], **_candidate_attrs(alt))
    return RepartitionPlan(ext, select, params, strategy, anchor, moved,
                           join_col, cost, candidates=costed)


def _describe_candidate(ext, candidate) -> dict:
    from .pipeline import candidate_cost

    strategy, anchor, moved, join_col, network_bytes = candidate
    return {
        "strategy": strategy,
        "anchor_table": anchor.dist.name,
        "moved_table": moved.name,
        "join_column": join_col,
        "network_bytes": int(network_bytes),
        "cost": candidate_cost(len(anchor.dist.shards), network_bytes),
    }


def _candidate_attrs(described: dict) -> dict:
    return {
        "strategy": described["strategy"],
        "moved_table": described["moved_table"],
        "network_bytes": described["network_bytes"],
    }


def _join_column_on_dist_key(ext, analysis, anchor, moved):
    """If the anchor's distribution column is equi-joined with a column of
    the moved table, return that column's name."""
    equivalence = analysis.equivalence
    anchor_root = equivalence.find(f"{anchor.alias}.{anchor.dist.dist_column}")
    shell = ext.instance.catalog.get_table(moved.name)
    for column in shell.column_names():
        key = f"{moved.alias}.{column}"
        if key in equivalence.parent and equivalence.find(key) == anchor_root:
            return column
    return None


class RepartitionPlan:
    """Executable plan: move one side, then push the join down."""

    tier = "join_order"
    search = None
    cached = False

    def __init__(self, ext, select, params, strategy, anchor, moved, join_col,
                 cost, candidates=None):
        self.ext = ext
        self.select = select
        self.params = params
        self.strategy = strategy
        self.anchor = anchor
        self.moved = moved
        self.join_col = join_col
        self.estimated_network_bytes = cost
        self.candidates = candidates or []

    @property
    def detail(self):
        return f"Join Order ({self.strategy})"

    # ------------------------------------------------------------ execute

    def execute(self, session, params):
        ext = self.ext
        cache = ext.metadata.cache
        qid = next(_intermediate_counter)
        name = f"citus_repart_{qid}" if self.strategy == "repartition" else f"citus_bcast_{qid}"
        shell = ext.instance.catalog.get_table(self.moved.name)
        columns = shell.column_names()

        # 1. Materialize the moved table on the coordinator.
        moved_rows = session.execute(f"SELECT * FROM {self.moved.name}").rows
        ext.stats["repartition_rows_moved"] += len(moved_rows)
        ext.stats["repartition_bytes"] += int(self.estimated_network_bytes)
        ext.stat_counters.incr("repartition_rows_moved", len(moved_rows))
        ext.stat_counters.incr("repartition_bytes", int(self.estimated_network_bytes))

        created: list[tuple] = []  # (node, table_name)
        try:
            if self.strategy == "repartition":
                self._load_repartitioned(ext, name, shell, columns, moved_rows, created)
                transient = _transient_distributed(name, self.anchor.dist, self.join_col,
                                                   shell, columns)
            else:
                self._load_broadcast(ext, name, shell, columns, moved_rows, created)
                transient = _transient_reference(ext, name)
            cache.tables[name] = transient

            rewritten = _replace_table(self.select, self.moved.name, name)
            analysis = analyze_statement(rewritten, cache, params, ext.instance.catalog)
            plan = plan_pushdown_select(ext, rewritten, params, analysis)
            if plan is None:
                raise UnsupportedDistributedQuery(
                    "non-co-located join could not be made co-located"
                )
            from .distributed import MultiTaskSelectPlan

            return MultiTaskSelectPlan(ext, plan).execute(session, params)
        finally:
            cache.tables.pop(name, None)
            for node, table in created:
                try:
                    ext.worker_connection(node).execute(f"DROP TABLE IF EXISTS {table}")
                except Exception:
                    pass

    def _load_repartitioned(self, ext, name, shell, columns, rows, created):
        cache = ext.metadata.cache
        join_position = columns.index(self.join_col)
        buckets: dict[int, list] = {}
        for row in rows:
            index = self.anchor.dist.shard_index_for_value(row[join_position])
            buckets.setdefault(index, []).append(row)
        for i, shard in enumerate(self.anchor.dist.shards):
            node = cache.placement_node(shard.shardid)
            table = f"{name}_{shard.shardid}"
            conn = ext.worker_connection(node)
            conn.execute(_intermediate_ddl(table, shell))
            conn.copy_rows(table, buckets.get(i, []), columns)
            created.append((node, table))

    def _load_broadcast(self, ext, name, shell, columns, rows, created):
        cache = ext.metadata.cache
        nodes = {
            cache.placement_node(shard.shardid) for shard in self.anchor.dist.shards
        }
        table = f"{name}_0"
        for node in sorted(nodes):
            conn = ext.worker_connection(node)
            conn.execute(_intermediate_ddl(table, shell))
            conn.copy_rows(table, rows, columns)
            created.append((node, table))

    def explain_lines(self):
        lines = [
            "Custom Scan (Citus Adaptive)",
            f"  Planner: Join Order ({self.strategy})",
            f"  Moved Table: {self.moved.name}",
            f"  Estimated Network Bytes: {int(self.estimated_network_bytes)}",
        ]
        if self.candidates:
            considered = " / ".join(
                f"{c['strategy']}({c['moved_table']}) cost={int(c['cost'])}"
                for c in self.candidates
            )
            lines.append(f"  Join strategy considered: {considered}")
        return lines

    def explain_info(self):
        from .tasks import Task

        cache = self.ext.metadata.cache
        # The final join runs one task per anchor shard once the moved side
        # is in place; the task SQL is only known after the move, so tasks
        # carry the target node and shard group but no SQL.
        tasks = [
            Task(cache.placement_node(shard.shardid), None,
                 shard_group=(self.anchor.dist.colocation_id, index))
            for index, shard in enumerate(self.anchor.dist.shards)
        ]
        return {
            "tier": self.tier,
            "detail": f"Join Order ({self.strategy})",
            "tasks": tasks,
            "total_shard_count": len(self.anchor.dist.shards),
            "pruned_shard_count": 0,
            "pushed_down": ["CO-LOCATED JOIN (after move)"],
            "coordinator": ["INTERMEDIATE RESULT MOVE"],
            "subplan": {
                "strategy": self.strategy,
                "anchor_table": self.anchor.dist.name,
                "moved_table": self.moved.name,
                "join_column": self.join_col,
                "estimated_network_bytes": int(self.estimated_network_bytes),
            },
        }


def _intermediate_ddl(table_name: str, shell) -> str:
    cols = [A.ColumnDef(c.name, c.type_name) for c in shell.columns]
    return deparse(A.CreateTable(name=table_name, columns=cols))


def _transient_distributed(name, anchor_dist, join_col, shell, columns):
    from ..metadata import DistributedTable

    shards = [
        ShardInterval(s.shardid, name, s.min_value, s.max_value)
        for s in anchor_dist.shards
    ]
    return DistributedTable(
        name, "h", join_col, anchor_dist.dist_column_type, anchor_dist.colocation_id, shards
    )


def _transient_reference(ext, name):
    from ..metadata import DistributedTable

    shard = ShardInterval(0, name, None, None)
    return DistributedTable(name, REFERENCE, None, None, -1, [shard])


def _replace_table(select: A.Select, old: str, new: str) -> A.Select:
    def visit(node):
        if isinstance(node, A.TableRef) and node.name == old:
            return A.TableRef(new, alias=node.alias or node.name)
        return node

    return A.transform(select.copy(), visit)
