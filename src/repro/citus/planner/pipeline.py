"""The candidate-plan pipeline: explicit records of the §3.5 cascade walk.

"Citus iterates over the four planners, from lowest to highest overhead" —
historically that walk was an opaque chain of ``try_*`` calls that threw
away everything it considered. This module makes the walk explicit:

- :class:`PlannerTier` names one tier of the cascade and the function that
  attempts it;
- :class:`PlanCandidate` is one considered plan — either costed (chosen or
  a viable alternative, e.g. the join-order planner's losing strategies) or
  rejected with a structured :class:`RejectionReason`;
- :class:`PlanSearch` is the per-statement record the driver in
  :mod:`.distributed` fills in: tiers tried in order, accept/reject with
  reason, chosen cost vs. best-alternative cost.

Searches surface through ``citus_plan_alternatives()`` (JSON), the
"Considered:" lines of ``citus_explain``, the planning span of the Chrome
trace export, and — replayed, marked ``cached`` — through the distributed
plan cache. ``benchmarks/bench_plan_quality.py`` diffs chosen tier and
cost ratio per query fingerprint against a checked-in baseline so planner
refactors cannot silently demote queries down the cascade.

The cost model is deliberately coarse: dispatching a task costs
:data:`TASK_COST` network-byte-equivalents (connection + round trip), plus
any bytes the plan physically moves (``estimated_network_bytes`` for
join-order moves). It only has to rank candidates consistently — the same
job the join-order planner's network estimate already does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cascade tiers in the order the driver tries them (lowest overhead first).
CASCADE_TIER_NAMES = ("fast_path", "router", "pushdown", "join_order")

#: Rank for tier-downgrade detection: larger = more expensive tier.
TIER_RANK = {name: rank for rank, name in enumerate(CASCADE_TIER_NAMES)}

#: Display label per tier (the strings EXPLAIN has always printed).
TIER_LABELS = {
    "fast_path": "Fast Path Router",
    "router": "Router",
    "pushdown": "Pushdown",
    "join_order": "Join Order",
    "insert_values": "Insert (values)",
    "insert_select": "Insert..Select",
    "reference": "Reference Table DML",
    "local_reference": "Local (reference replica)",
}

#: Cost of dispatching one task, in network-byte-equivalents: a per-task
#: connection/round-trip charge so a 1-task router plan beats an 8-task
#: pushdown plan even though neither moves table data.
TASK_COST = 1000.0


def tier_label(tier: str) -> str:
    return TIER_LABELS.get(tier, tier)


def candidate_cost(task_count: int, network_bytes: float = 0.0) -> float:
    """Estimated cost of a candidate: tasks dispatched + bytes moved."""
    return max(int(task_count), 1) * TASK_COST + float(network_bytes)


@dataclass
class PlannerTier:
    """One tier of the cascade: its name and the function that attempts it.

    ``try_fn(ext, session, stmt, params, analysis, search)`` returns an
    executable plan or None (recording its rejection into ``search``), and
    may raise UnsupportedDistributedQuery for recognisably unsupported SQL.
    """

    name: str
    try_fn: object


@dataclass
class RejectionReason:
    """Why a tier could not (or was not allowed to) plan a statement."""

    tier: str
    code: str  # stable machine-readable reason, e.g. "no_dist_value"
    detail: str = ""

    def as_dict(self) -> dict:
        return {"tier": self.tier, "code": self.code, "detail": self.detail}


@dataclass
class PlanCandidate:
    """One considered plan: costed (chosen/alternative) or rejected."""

    tier: str
    status: str  # "chosen" | "alternative" | "rejected"
    detail: str = ""  # display label, e.g. "Join Order (broadcast)"
    cost: float | None = None
    rejection: RejectionReason | None = None
    attrs: dict = field(default_factory=dict)  # tasks, moved_table, ...

    def as_dict(self) -> dict:
        return {
            "tier": self.tier,
            "status": self.status,
            "detail": self.detail,
            "cost": self.cost,
            "rejection": self.rejection.as_dict() if self.rejection else None,
            "attrs": dict(self.attrs),
        }


@dataclass
class PlanSearch:
    """Everything the cascade considered for one statement."""

    statement: str | None = None
    fingerprint: str | None = None
    tiers_tried: list = field(default_factory=list)
    candidates: list = field(default_factory=list)
    cached: bool = False  # replayed from the distributed plan cache
    error: str | None = None  # UnsupportedDistributedQuery text, if raised

    # --------------------------------------------------------- recording

    def note_tier(self, tier: str) -> None:
        if tier not in self.tiers_tried:
            self.tiers_tried.append(tier)

    def reject(self, tier: str, code: str, detail: str = "") -> None:
        self.note_tier(tier)
        self.candidates.append(PlanCandidate(
            tier, "rejected", detail=tier_label(tier),
            rejection=RejectionReason(tier, code, detail),
        ))

    def accept(self, tier: str, detail: str, cost: float, **attrs) -> None:
        self.note_tier(tier)
        self.candidates.append(PlanCandidate(
            tier, "chosen", detail=detail, cost=cost, attrs=attrs,
        ))

    def alternative(self, tier: str, detail: str, cost: float, **attrs) -> None:
        self.note_tier(tier)
        self.candidates.append(PlanCandidate(
            tier, "alternative", detail=detail, cost=cost, attrs=attrs,
        ))

    # ----------------------------------------------------------- reading

    @property
    def chosen(self) -> PlanCandidate | None:
        for candidate in self.candidates:
            if candidate.status == "chosen":
                return candidate
        return None

    @property
    def chosen_tier(self) -> str | None:
        chosen = self.chosen
        return chosen.tier if chosen is not None else None

    @property
    def chosen_cost(self) -> float | None:
        chosen = self.chosen
        return chosen.cost if chosen is not None else None

    @property
    def best_alternative_cost(self) -> float | None:
        costs = [c.cost for c in self.candidates
                 if c.status == "alternative" and c.cost is not None]
        return min(costs) if costs else None

    @property
    def cost_ratio(self) -> float | None:
        """Chosen cost over the best costed candidate (>= 1.0; exactly 1.0
        when the planner picked the cheapest option it saw)."""
        chosen = self.chosen_cost
        if chosen is None:
            return None
        costs = [c.cost for c in self.candidates if c.cost is not None]
        best = min(costs)
        if best <= 0:
            return None
        return chosen / best

    def replay_cached(self) -> "PlanSearch":
        """A cache hit replays the original search, marked cached. The
        candidate list is shared read-only with the stored search."""
        return PlanSearch(
            statement=self.statement, fingerprint=self.fingerprint,
            tiers_tried=list(self.tiers_tried), candidates=self.candidates,
            cached=True, error=self.error,
        )

    def as_dict(self) -> dict:
        return {
            "statement": self.statement,
            "fingerprint": self.fingerprint,
            "tiers_tried": list(self.tiers_tried),
            "candidates": [c.as_dict() for c in self.candidates],
            "chosen_tier": self.chosen_tier,
            "chosen_cost": self.chosen_cost,
            "best_alternative_cost": self.best_alternative_cost,
            "cost_ratio": self.cost_ratio,
            "cached": self.cached,
            "error": self.error,
        }

    def considered_lines(self) -> list[str]:
        """The "Considered:" block of ``citus_explain``."""
        lines = []
        for c in self.candidates:
            if c.status == "rejected":
                desc = f"rejected [{c.rejection.code}]"
                if c.rejection.detail:
                    desc += f" {c.rejection.detail}"
            else:
                desc = f"{c.status} cost={c.cost:.0f}"
                if c.attrs:
                    extra = " ".join(f"{k}={v}" for k, v in sorted(c.attrs.items()))
                    desc += f" ({extra})"
            lines.append(f"Considered: {c.tier} {desc}")
        return lines


def record_chosen_plan(search: PlanSearch, plan) -> None:
    """Derive the chosen candidate from an accepted plan's shape, unless
    the tier already recorded a richer one (join order records its whole
    candidate list itself)."""
    if search.chosen is not None:
        return
    tier = getattr(plan, "tier", "custom")
    detail = getattr(plan, "detail", None) or tier_label(tier)
    tasks = getattr(plan, "tasks", None)
    if tasks is None:
        inner = getattr(plan, "plan", None)
        tasks = getattr(inner, "tasks", None)
    task_count = len(tasks) if tasks is not None else 1
    network_bytes = float(getattr(plan, "estimated_network_bytes", 0.0))
    attrs = {"tasks": task_count}
    inner = getattr(plan, "plan", None)
    total_shards = getattr(inner, "total_shards", 0) if inner is not None else 0
    if total_shards:
        attrs["total_shards"] = total_shards
        attrs["pruned_shards"] = max(total_shards - task_count, 0)
    search.accept(tier, detail, candidate_cost(task_count, network_bytes),
                  **attrs)
