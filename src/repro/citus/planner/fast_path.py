"""Fast path planner (§3.5).

Handles simple CRUD on a single distributed table with an equality filter
(or VALUES row) on the distribution column. The planner extracts the
distribution value directly, picks the shard, rewrites the table name, and
produces a single task — with deliberately minimal analysis so that
high-throughput CRUD workloads pay almost no planning overhead.
"""

from __future__ import annotations

from ...engine.datum import hash_value
from ...engine.expr import BoundParams
from ...sql import ast as A
from .tasks import Task, rewrite_to_shard


def try_fast_path(ext, stmt, params, search=None):
    """Return a list with one Task, or None if the statement does not
    qualify for the fast path. A miss records its structured reason into
    ``search`` when a PlanSearch is being kept."""
    tasks, reason = _try_fast_path(ext, stmt, params)
    if tasks is None:
        # Cascade fall-through: the next (costlier) planner tier must run.
        ext.stat_counters.incr("planner_fast_path_misses")
        if search is not None:
            code, detail = reason or ("unknown", "")
            search.reject("fast_path", code, detail)
    return tasks


def _try_fast_path(ext, stmt, params):
    cache = ext.metadata.cache
    if isinstance(stmt, A.Insert):
        return _fast_path_insert(ext, stmt, params, cache)
    if isinstance(stmt, A.Select):
        if (
            len(stmt.from_items) != 1
            or not isinstance(stmt.from_items[0], A.TableRef)
            or stmt.ctes
            or stmt.set_ops
            or stmt.group_by
        ):
            return None, ("shape", "needs a single-table FROM without"
                          " CTEs, set operations, or GROUP BY")
        table_name = stmt.from_items[0].name
        alias = stmt.from_items[0].ref_name
        where = stmt.where
    elif isinstance(stmt, (A.Update, A.Delete)):
        table_name = stmt.table
        alias = stmt.alias or stmt.table
        where = stmt.where
    else:
        return None, ("statement_kind",
                      f"{type(stmt).__name__} has no fast path")

    dist = cache.tables.get(table_name)
    if dist is None or dist.is_reference:
        return None, ("table", f"{table_name!r} is not a hash-distributed table")
    value = _single_dist_value(where, dist, alias, params)
    if value is _MISS:
        return None, ("no_dist_value", "no dist_column = constant filter")
    if _contains_subquery(stmt):
        return None, ("subquery", "statement contains a subquery")
    shard_index = dist.shard_index_for_value(value)
    shard = dist.shards[shard_index]
    node = cache.placement_node(shard.shardid)
    shard_stmt = rewrite_to_shard(stmt, cache, shard_index)
    returns = isinstance(stmt, A.Select) or bool(getattr(stmt, "returning", None))
    return [
        Task(node, None, params, shard_group=(dist.colocation_id, shard_index),
             returns_rows=returns, stmt=shard_stmt)
    ], None


_MISS = object()


def _fast_path_insert(ext, stmt: A.Insert, params, cache):
    dist = cache.tables.get(stmt.table)
    if dist is None or dist.is_reference:
        return None, ("table", f"{stmt.table!r} is not a hash-distributed table")
    if stmt.select is not None or len(stmt.rows) != 1:
        # INSERT..SELECT and multi-row inserts take other paths.
        return None, ("shape", "INSERT..SELECT / multi-row insert")
    value = _insert_dist_value(stmt, dist, params, cache)
    if value is _MISS:
        return None, ("no_dist_value",
                      "positional insert or unresolvable distribution value")
    shard_index = dist.shard_index_for_value(value)
    shard = dist.shards[shard_index]
    node = cache.placement_node(shard.shardid)
    shard_stmt = rewrite_to_shard(stmt, cache, shard_index)
    return [
        Task(node, None, params, shard_group=(dist.colocation_id, shard_index),
             returns_rows=bool(stmt.returning), stmt=shard_stmt)
    ], None


def _insert_dist_value(stmt: A.Insert, dist, params, cache):
    from ...errors import NotNullViolation

    columns = stmt.columns
    if not columns:
        # Positional insert: resolve against the shell table's column order.
        columns = None
    row = stmt.rows[0]
    if columns is None:
        return _MISS  # caller resolves positional inserts via the multi-row path
    try:
        position = columns.index(dist.dist_column)
    except ValueError:
        raise NotNullViolation(
            f"cannot perform an INSERT without the distribution column"
            f" {dist.dist_column!r}"
        ) from None
    return _const_of(row[position], params)


def _single_dist_value(where, dist, alias, params):
    """Extract the value of a ``dist_col = const`` conjunct; _MISS if the
    filter is absent or not a simple equality."""
    if where is None:
        return _MISS
    from ..sharding import _conjuncts  # shared conjunct splitting

    for conjunct in _conjuncts(where):
        if not (isinstance(conjunct, A.BinaryOp) and conjunct.op == "="):
            continue
        left, right = conjunct.left, conjunct.right
        if _is_dist_ref(right, dist, alias):
            left, right = right, left
        if _is_dist_ref(left, dist, alias):
            value = _const_of(right, params)
            if value is not _MISS:
                return value
    return _MISS


def _is_dist_ref(expr, dist, alias) -> bool:
    return (
        isinstance(expr, A.ColumnRef)
        and expr.name == dist.dist_column
        and expr.table in (None, alias)
    )


def _const_of(expr, params):
    if isinstance(expr, A.Literal):
        return expr.value
    if isinstance(expr, A.Cast):
        inner = _const_of(expr.operand, params)
        if inner is _MISS:
            return _MISS
        from ...engine.datum import cast_value

        return cast_value(inner, expr.type_name)
    if isinstance(expr, A.Param):
        if type(params) is BoundParams:
            positional, named = params.positional, params.named
            if expr.index is not None and positional is not None \
                    and expr.index <= len(positional):
                return positional[expr.index - 1]
            if expr.name is not None and expr.name in named:
                return named[expr.name]
            return _MISS
        if expr.index is not None and isinstance(params, (list, tuple)):
            if expr.index <= len(params):
                return params[expr.index - 1]
        if expr.name is not None and isinstance(params, dict) and expr.name in params:
            return params[expr.name]
    return _MISS


def _contains_subquery(stmt) -> bool:
    return any(isinstance(n, A.SubqueryExpr) for n in A.walk(stmt))
