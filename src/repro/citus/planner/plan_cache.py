"""Distributed plan cache.

Planning a distributed statement repeats work that depends only on the
statement's *shape*: the cascade walk, the equivalence analysis, and the
per-shard query rewrite. This module caches that work keyed on a
parameterized fingerprint of the statement — literals and parameter
markers are normalized out — so repeated CRUD statements re-do only the
value-dependent part of planning: extracting the distribution value (or
pruning shards) from the newly bound parameters and picking placements
against the *current* metadata.

Correctness hinges on two rules:

- **Templates, not plans, are replayed.** A cached entry never re-ships
  artifacts that embed first-seen literal values. Replay starts from the
  normalized template (literals replaced by synthetic ``__cN`` params) and
  binds the current statement's extracted constants via
  :class:`~repro.engine.expr.BoundParams`, so every execution sees its own
  values. Per-shard rewritten ASTs are memoized per entry — they contain
  only parameter markers, never values.
- **Metadata generation.** Every entry records
  ``MetadataStore.generation`` at store time; DDL propagation,
  ``create_distributed_table`` and the shard rebalancer bump the counter,
  so a lookup that observes a different generation discards the entry
  instead of executing against stale shard placements.

``GROUP BY`` / ``ORDER BY`` (and window ``PARTITION BY``) subtrees are
kept verbatim in both the template and the fingerprint: positional
references like ``GROUP BY 1`` are structurally significant to the
planner's mode choice, so two statements differing there must not share a
cache entry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field as dc_field

from ...engine.expr import BoundParams
from ...engine.lru import LRUCache
from ...errors import UnsupportedDistributedQuery
from ...sql import ast as A
from ..sharding import analyze_statement, prune_shards
from .fast_path import _MISS, _insert_dist_value, _single_dist_value
from .tasks import Task, rewrite_to_shard

# Fields whose literal contents are planner-structural (positional group /
# sort references) and therefore stay verbatim in template + fingerprint.
_VERBATIM_FIELDS = {"group_by", "order_by", "partition_by", "distinct_on"}


# ------------------------------------------------------- normalization

def _normalize_value(value, consts: dict):
    if isinstance(value, A.Literal):
        name = f"__c{len(consts)}"
        consts[name] = value.value
        return A.Param(name=name)
    if isinstance(value, A.Node):
        changed = False
        kwargs = {}
        for f in dataclasses.fields(value):
            old = getattr(value, f.name)
            if f.name in _VERBATIM_FIELDS:
                kwargs[f.name] = old
                continue
            new = _normalize_value(old, consts)
            kwargs[f.name] = new
            if new is not old:
                changed = True
        return type(value)(**kwargs) if changed else value
    if isinstance(value, list):
        new = [_normalize_value(v, consts) for v in value]
        if any(a is not b for a, b in zip(new, value)):
            return new
        return value
    if isinstance(value, tuple):
        new = tuple(_normalize_value(v, consts) for v in value)
        if any(a is not b for a, b in zip(new, value)):
            return new
        return value
    return value


def _fingerprint(value, parts: list) -> None:
    """Serialize the normalized template into a stable shape key."""
    if value is None:
        parts.append("~")
    elif isinstance(value, A.Param):
        parts.append(f"$({value.index},{value.name})")
    elif isinstance(value, A.Node):
        parts.append(type(value).__name__)
        parts.append("(")
        for f in dataclasses.fields(value):
            _fingerprint(getattr(value, f.name), parts)
        parts.append(")")
    elif isinstance(value, (list, tuple)):
        parts.append("[")
        for v in value:
            _fingerprint(v, parts)
        parts.append("]")
    else:
        parts.append(repr(value))


def _eligible(stmt) -> bool:
    if isinstance(stmt, (A.Select, A.Update, A.Delete)):
        return True
    if isinstance(stmt, A.Insert):
        # Only the fast-path insert shape replays from a template; multi-row
        # and positional inserts re-evaluate rows on the coordinator anyway.
        return stmt.select is None and len(stmt.rows) == 1 and bool(stmt.columns)
    return False


_INELIGIBLE = object()

# Normalization is memoized by statement identity: the engine's statement
# cache returns the same AST object for repeated SQL text, so the walk and
# fingerprint run once per distinct statement. Entries hold a strong
# reference to the statement so its id() cannot be recycled underneath us.
_NORM_CACHE = LRUCache(1024)


def _normalize_statement(stmt):
    """Return (template, consts, fingerprint) or None when ineligible."""
    key = id(stmt)
    memo = _NORM_CACHE.get(key)
    if memo is not None and memo[0] is stmt:
        result = memo[1]
        return None if result is _INELIGIBLE else result
    if not _eligible(stmt):
        _NORM_CACHE.put(key, (stmt, _INELIGIBLE))
        return None
    consts: dict = {}
    template = _normalize_value(stmt, consts)
    parts: list = []
    _fingerprint(template, parts)
    result = (template, consts, "\x00".join(parts))
    _NORM_CACHE.put(key, (stmt, result))
    return result


def make_bound(params, consts: dict) -> BoundParams:
    """Merge user parameters with template-extracted constants."""
    if isinstance(params, (list, tuple)):
        return BoundParams(positional=params, named=consts)
    if isinstance(params, dict):
        if consts:
            merged = dict(params)
            merged.update(consts)
            return BoundParams(named=merged)
        return BoundParams(named=params)
    return BoundParams(named=consts)


# ------------------------------------------------------------- entries

@dataclass
class CachedPlanEntry:
    kind: str  # "single" | "pushdown_select" | "pushdown_dml" | "uncacheable"
    generation: int
    template: object = None
    mode: str = ""  # single: "where" | "insert" | "router"
    tier: str = ""
    detail: str = ""
    is_write: bool = False
    returns_rows: bool = True
    stats_key: str = ""
    table: str = ""
    alias: str = ""
    # pushdown_select: skeleton built from the template on the first hit
    skeleton: object = None
    # shard_index -> shard-rewritten template AST (parameter markers only;
    # shared read-only across sessions)
    shard_stmts: dict = dc_field(default_factory=dict)
    # PlanSearch recorded when the plan was first built; replayed (marked
    # cached) on every hit so alternatives stay observable for hot statements
    search: object = None


class PlanCache:
    """Per-extension distributed plan cache with generation invalidation."""

    def __init__(self, ext, capacity: int = 1024):
        self.ext = ext
        self.entries = LRUCache(capacity)

    # ------------------------------------------------------------ lookup

    def lookup(self, session, stmt, params):
        norm = _normalize_statement(stmt)
        if norm is None:
            return None
        template, consts, fingerprint = norm
        counters = self.ext.stat_counters
        entry = self.entries.get(fingerprint)
        if entry is None:
            counters.incr("plan_cache_misses")
            return None
        if entry.generation != self.ext.metadata.generation:
            self.entries.delete(fingerprint)
            counters.incr("plan_cache_invalidations")
            counters.incr("plan_cache_misses")
            return None
        if entry.kind == "uncacheable":
            counters.incr("plan_cache_misses")
            return None
        bound = make_bound(params, consts)
        try:
            plan = self._replay(session, entry, bound)
        except Exception:
            # A failing replay falls back to a full replan, which reproduces
            # any real error with the statement itself.
            plan = None
        if plan is None:
            counters.incr("plan_cache_misses")
            return None
        plan.cached = True
        if entry.search is not None and self.ext.config.enable_plan_alternatives:
            plan.search = entry.search.replay_cached()
        if entry.stats_key:
            self.ext.stats[entry.stats_key] += 1
        counters.incr("plan_cache_hits")
        return plan

    # ------------------------------------------------------------- store

    def store(self, stmt, plan) -> None:
        norm = _normalize_statement(stmt)
        if norm is None:
            return
        template, _consts, fingerprint = norm
        generation = self.ext.metadata.generation
        existing = self.entries.get(fingerprint)
        if existing is not None and existing.generation == generation:
            return
        entry = self._build_entry(template, plan, generation)
        entry.search = getattr(plan, "search", None)
        self.entries.put(fingerprint, entry)

    def _build_entry(self, template, plan, generation) -> CachedPlanEntry:
        from .distributed import (MultiTaskDMLPlan, MultiTaskSelectPlan,
                                  SingleTaskPlan)

        if isinstance(plan, SingleTaskPlan):
            if plan.tier == "fast_path":
                if isinstance(template, A.Insert):
                    mode, table, alias = "insert", template.table, template.table
                elif isinstance(template, A.Select):
                    ref = template.from_items[0]
                    mode, table, alias = "where", ref.name, ref.ref_name
                else:
                    mode = "where"
                    table = template.table
                    alias = template.alias or template.table
            else:
                mode, table, alias = "router", "", ""
            return CachedPlanEntry(
                kind="single", generation=generation, template=template,
                mode=mode, tier=plan.tier, detail=plan.detail,
                is_write=plan.is_write,
                returns_rows=plan.tasks[0].returns_rows,
                stats_key="fast_path_queries" if plan.tier == "fast_path"
                else "router_queries",
                table=table, alias=alias,
            )
        if isinstance(plan, MultiTaskSelectPlan) and isinstance(template, A.Select):
            inner = plan.plan
            if inner.worker_query is not None and inner.anchor_alias is not None:
                return CachedPlanEntry(
                    kind="pushdown_select", generation=generation,
                    template=template, tier=plan.tier,
                    stats_key="pushdown_queries",
                    table=inner.anchor_table, alias=inner.anchor_alias,
                )
        if isinstance(plan, MultiTaskDMLPlan) and isinstance(
            template, (A.Update, A.Delete)
        ):
            return CachedPlanEntry(
                kind="pushdown_dml", generation=generation, template=template,
                tier=plan.tier, is_write=True, stats_key="pushdown_queries",
                table=template.table,
                alias=template.alias or template.table,
            )
        # InsertValuesPlan, reference/local plans, join-order and
        # INSERT..SELECT plans re-plan every time.
        return CachedPlanEntry(kind="uncacheable", generation=generation)

    # ------------------------------------------------------------ replay

    def _replay(self, session, entry: CachedPlanEntry, bound: BoundParams):
        if entry.kind == "single":
            if entry.mode == "router":
                return self._replay_router(entry, bound)
            return self._replay_single(entry, bound)
        if entry.kind == "pushdown_select":
            return self._replay_pushdown_select(entry, bound)
        if entry.kind == "pushdown_dml":
            return self._replay_pushdown_dml(entry, bound)
        return None

    def _shard_stmt(self, entry: CachedPlanEntry, cache, shard_index,
                    template=None):
        stmt = entry.shard_stmts.get(shard_index)
        if stmt is None:
            stmt = rewrite_to_shard(
                template if template is not None else entry.template,
                cache, shard_index,
            )
            entry.shard_stmts[shard_index] = stmt
        return stmt

    def _single_task_plan(self, entry, cache, dist, shard_index, bound):
        from .distributed import SingleTaskPlan

        node = cache.placement_node(dist.shards[shard_index].shardid)
        task = Task(
            node, None, bound,
            shard_group=(dist.colocation_id, shard_index),
            returns_rows=entry.returns_rows,
            stmt=self._shard_stmt(entry, cache, shard_index),
        )
        return SingleTaskPlan(self.ext, [task], entry.detail,
                              tier=entry.tier, is_write=entry.is_write)

    def _replay_single(self, entry: CachedPlanEntry, bound):
        """Fast-path replay: only the distribution value is re-extracted."""
        cache = self.ext.metadata.cache
        dist = cache.tables.get(entry.table)
        if dist is None or dist.is_reference:
            return None
        if entry.mode == "insert":
            value = _insert_dist_value(entry.template, dist, bound, cache)
        else:
            value = _single_dist_value(entry.template.where, dist,
                                       entry.alias, bound)
        if value is _MISS:
            return None
        shard_index = dist.shard_index_for_value(value)
        return self._single_task_plan(entry, cache, dist, shard_index, bound)

    def _replay_router(self, entry: CachedPlanEntry, bound):
        """Router replay re-runs the equivalence analysis (the routing
        decision depends on the bound values), skipping the cascade."""
        cache = self.ext.metadata.cache
        analysis = analyze_statement(entry.template, cache, bound,
                                     self.ext.instance.catalog)
        dist = analysis.distributed
        if not dist or analysis.locals:
            return None
        if len({o.dist.colocation_id for o in dist}) != 1:
            return None
        value, ok = analysis.common_constant()
        if not ok:
            return None
        anchor = dist[0].dist
        shard_index = anchor.shard_index_for_value(value)
        return self._single_task_plan(entry, cache, anchor, shard_index, bound)

    def _prune(self, entry: CachedPlanEntry, dist, where, bound):
        shard_indexes = prune_shards(dist, where, bound, entry.alias)
        pruned = len(dist.shards) - len(shard_indexes)
        if pruned:
            self.ext.stat_counters.incr("planner_shards_pruned", pruned)
        return shard_indexes

    def _replay_pushdown_select(self, entry: CachedPlanEntry, bound):
        from .distributed import MultiTaskSelectPlan
        from .pushdown import plan_pushdown_select

        cache = self.ext.metadata.cache
        if entry.skeleton is None:
            # First hit: plan the template once. All later hits re-do only
            # shard pruning + task construction from this skeleton.
            analysis = analyze_statement(entry.template, cache, bound,
                                         self.ext.instance.catalog)
            try:
                skeleton = plan_pushdown_select(self.ext, entry.template,
                                                bound, analysis)
            except UnsupportedDistributedQuery:
                return None
            if skeleton is None:
                return None
            entry.skeleton = skeleton
            for task in skeleton.tasks:
                entry.shard_stmts.setdefault(task.shard_group[1], task.stmt)
            return self._rebind_tasks(entry, skeleton, bound)
        dist = cache.tables.get(entry.table)
        if dist is None or dist.is_reference:
            return None
        skeleton = entry.skeleton
        shard_indexes = self._prune(entry, dist, skeleton.worker_query.where,
                                    bound)
        tasks = [
            Task(
                cache.placement_node(dist.shards[index].shardid), None, bound,
                shard_group=(dist.colocation_id, index),
                stmt=self._shard_stmt(entry, cache, index,
                                      template=skeleton.worker_query),
            )
            for index in shard_indexes
        ]
        replayed = dataclasses.replace(skeleton, tasks=tasks)
        return MultiTaskSelectPlan(self.ext, replayed, bound)

    def _rebind_tasks(self, entry, skeleton, bound):
        """Fresh per-execution tasks for the first-hit skeleton (its own
        tasks carry the first hit's bindings)."""
        from .distributed import MultiTaskSelectPlan

        cache = self.ext.metadata.cache
        tasks = [
            Task(t.node, None, bound, shard_group=t.shard_group,
                 returns_rows=t.returns_rows, stmt=t.stmt)
            for t in skeleton.tasks
        ]
        return MultiTaskSelectPlan(
            self.ext, dataclasses.replace(skeleton, tasks=tasks), bound
        )

    def _replay_pushdown_dml(self, entry: CachedPlanEntry, bound):
        from .distributed import MultiTaskDMLPlan

        cache = self.ext.metadata.cache
        dist = cache.tables.get(entry.table)
        if dist is None or dist.is_reference:
            return None
        shard_indexes = self._prune(entry, dist, entry.template.where, bound)
        tasks = [
            Task(
                cache.placement_node(dist.shards[index].shardid), None, bound,
                shard_group=(dist.colocation_id, index),
                returns_rows=bool(getattr(entry.template, "returning", [])),
                stmt=self._shard_stmt(entry, cache, index),
            )
            for index in shard_indexes
        ]
        return MultiTaskDMLPlan(self.ext, tasks)
