"""Tasks and shard-name rewriting.

A distributed query plan is "a set of tasks (queries on shards) to run on
the workers" (§3.5). A :class:`Task` carries the rewritten SQL, the target
node, and the co-located shard group key used for connection affinity in
the adaptive executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...sql import ast as A
from ...sql.deparse import deparse


@dataclass
class Task:
    node: str
    sql: str | None
    params: object = None
    # (colocation_id, shard_index): tasks touching the same co-located shard
    # group must reuse the same connection within a transaction (§3.6.1).
    shard_group: tuple | None = None
    returns_rows: bool = True
    # rows to ship with the task (used by COPY-style tasks)
    copy_rows: list | None = None
    copy_table: str | None = None
    copy_columns: list | None = None
    # Pre-parsed rewritten statement. When set, the executor ships the AST
    # directly (no deparse → lex → parse round-trip) and ``sql`` is only
    # materialized lazily for EXPLAIN/observability via :meth:`sql_text`.
    # Shard-rewritten ASTs may be shared across tasks and sessions, so they
    # must never be mutated downstream.
    stmt: object = None

    def sql_text(self) -> str | None:
        if self.sql is None and self.stmt is not None:
            stmt = self.stmt
            from ...engine.expr import BoundParams

            if type(self.params) is BoundParams:
                # Plan-cache replay templates carry synthetic parameter
                # markers; substitute the bound values so EXPLAIN shows the
                # same SQL a freshly planned statement would.
                stmt = _substitute_bound(stmt, self.params)
            self.sql = deparse(stmt)
        return self.sql


def _substitute_bound(stmt, bound):
    """Replace every resolvable parameter marker with its bound value."""

    def visit(node):
        if isinstance(node, A.Param):
            if node.index is not None and bound.positional is not None \
                    and node.index <= len(bound.positional):
                return A.Literal(bound.positional[node.index - 1])
            if node.name is not None and node.name in bound.named:
                return A.Literal(bound.named[node.name])
        return node

    return A.transform(stmt.copy(), visit)


def rewrite_to_shard(stmt, cache, shard_index: int | None):
    """Rewrite every Citus table reference in the statement to the shard
    name for ``shard_index`` (distributed) or the replica name (reference).

    Returns a new AST; the input is not modified.
    """

    def rename(name: str) -> str:
        dist = cache.tables.get(name)
        if dist is None:
            return name
        if dist.is_reference:
            return dist.shards[0].shard_name
        if shard_index is None:
            raise ValueError(f"no shard index for distributed table {name!r}")
        return dist.shards[shard_index].shard_name

    def visit(node):
        if isinstance(node, A.TableRef):
            new_name = rename(node.name)
            if new_name != node.name:
                # Keep the original name visible as the alias so column
                # references like ``orders.key`` keep resolving.
                return A.TableRef(new_name, alias=node.alias or node.name)
            return node
        if isinstance(node, (A.Insert, A.Update, A.Delete)):
            renamed = rename(node.table)
            if renamed != node.table:
                node = node.copy()
                if isinstance(node, (A.Update, A.Delete)) and node.alias is None:
                    node.alias = node.table
                node.table = renamed
            return node
        return node

    return A.transform(stmt.copy(), visit)


def task_sql_for_shard(stmt, cache, shard_index: int | None) -> str:
    return deparse(rewrite_to_shard(stmt, cache, shard_index))
