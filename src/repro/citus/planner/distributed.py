"""The distributed planner cascade (§3.5) and executable plan objects.

"For each query, Citus iterates over the four planners, from lowest to
highest overhead. If a particular planner can plan the query, Citus uses
it": fast path → router → logical pushdown → logical join-order. The walk
is driven over the explicit :data:`CASCADE` tier list and recorded into a
:class:`~.pipeline.PlanSearch` (tiers tried, accept/reject reasons, costed
candidates) when ``citus.enable_plan_alternatives`` is on. Plans are
:class:`CustomScanPlan` objects returned from the planner hook; their
``execute`` drives the adaptive executor and (for merge plans) the local
executor for the merge step on the coordinator.
"""

from __future__ import annotations

from ...engine.datum import cast_value, hash_value
from ...engine.executor import LocalExecutor, QueryResult
from ...engine.expr import EvalContext, Row, evaluate
from ...engine.hooks import CustomScanPlan
from ...errors import NotNullViolation, UnsupportedDistributedQuery
from ...sql import ast as A
from ..sharding import analyze_statement, collect_table_names
from ..tracing import partition_key_for
from .fast_path import try_fast_path
from .pipeline import PlannerTier, PlanSearch, record_chosen_plan
from .pushdown import plan_pushdown_dml, plan_pushdown_select
from .router import try_router
from .tasks import Task, rewrite_to_shard, task_sql_for_shard


def make_planner_hook(ext):
    """Build the planner_hook callable for this extension instance."""

    def planner_hook(session, stmt, params):
        cache = ext.metadata.cache
        if not cache.tables:
            return None
        names = collect_table_names(stmt)
        if not any(name in cache.tables for name in names):
            return None
        ext.stats["distributed_queries"] += 1
        ext.stat_counters.incr("planner_total")
        alternatives = ext.config.enable_plan_alternatives
        plan = ext.plan_cache.lookup(session, stmt, params)
        cache_hit = plan is not None
        if plan is None:
            search = PlanSearch() if alternatives else None
            try:
                plan = plan_statement(ext, session, stmt, params, search=search)
            except UnsupportedDistributedQuery as exc:
                # The search (with every tier's rejection reason) is still
                # recorded so citus_plan_alternatives() can explain why the
                # statement was unplannable.
                if search is not None:
                    search.error = str(exc)
                    _finish_search(ext, stmt, search)
                raise
            if search is not None:
                plan.search = search
                _finish_search(ext, stmt, search)
            ext.plan_cache.store(stmt, plan)
        elif alternatives:
            replayed = getattr(plan, "search", None)
            if replayed is not None:
                ext.plan_searches.append(replayed)
        tier = getattr(plan, "tier", None)
        if tier:
            ext.stat_counters.incr(f"planner_{tier}")
        tracer = ext.tracer
        tracing = tracer is not None and tracer.active
        tenant = None
        if (tracing or ext.instance.tenant_stats is not None
                or ext.txn_graph is not None):
            # Tenant attribution works on the raw statement + params, so it
            # is identical on plan-cache hits and misses — the cached fast
            # path must still stamp the tenant id.
            tenant = partition_key_for(ext, stmt, params)
            session._citus_tier = tier
            session._citus_tenant = tenant
        if tracing:
            _trace_planning(ext, tracer, session, stmt, params, plan,
                            tier, cache_hit, tenant)
        return plan

    return planner_hook


def _statement_fingerprint(stmt) -> str:
    from .plan_cache import _normalize_statement

    norm = _normalize_statement(stmt)
    if norm is not None:
        return norm[2]
    # Plan-cache-ineligible shapes (multi-row INSERT, INSERT..SELECT)
    # still deserve a stat_statements identity, keyed by shape+table.
    return f"{type(stmt).__name__}:{getattr(stmt, 'table', '')}"


def _finish_search(ext, stmt, search: PlanSearch) -> None:
    """Stamp the statement identity onto a completed search and retain it
    in the extension's ring buffer (citus_plan_alternatives())."""
    if search.fingerprint is None:
        search.fingerprint = _statement_fingerprint(stmt)
    ext.plan_searches.append(search)


def _trace_planning(ext, tracer, session, stmt, params, plan, tier,
                    cache_hit: bool, tenant) -> None:
    """Attach the plan span and statement-level attribution to the active
    trace. Planning consumes no simulated time, so the span is an instant
    marker carrying the cascade's decisions."""
    task_count = None
    tasks = getattr(plan, "tasks", None)
    if tasks is None:
        inner = getattr(plan, "plan", None)
        tasks = getattr(inner, "tasks", None)
    if tasks is not None:
        task_count = len(tasks)
    attrs = {}
    search = getattr(plan, "search", None)
    if search is not None:
        # Search attributes ride on the plan event, so the Chrome trace
        # export shows what the cascade considered for every statement.
        attrs = {
            "tiers_tried": ",".join(search.tiers_tried),
            "chosen_cost": search.chosen_cost,
            "best_alternative_cost": search.best_alternative_cost,
            "cost_ratio": search.cost_ratio,
        }
    tracer.event(
        "plan", "planner", node=session.instance.name,
        tier=tier, cached=cache_hit, tasks=task_count, **attrs,
    )
    fingerprint = _statement_fingerprint(stmt)
    tracer.annotate(
        tier=tier,
        fingerprint=fingerprint,
        tenant=tenant,
        cached=cache_hit,
    )


def _tier_fast_path(ext, session, stmt, params, analysis, search):
    tasks = try_fast_path(ext, stmt, params, search=search)
    if tasks is None:
        return None
    ext.stats["fast_path_queries"] += 1
    return SingleTaskPlan(ext, tasks, "Fast Path Router", tier="fast_path",
                          is_write=not isinstance(stmt, A.Select))


def _tier_router(ext, session, stmt, params, analysis, search):
    tasks = try_router(ext, stmt, params, analysis, search=search)
    if tasks is None:
        return None
    ext.stats["router_queries"] += 1
    return SingleTaskPlan(ext, tasks, "Router", tier="router",
                          is_write=not isinstance(stmt, A.Select))


def _tier_pushdown(ext, session, stmt, params, analysis, search):
    if isinstance(stmt, A.Select):
        plan = plan_pushdown_select(ext, stmt, params, analysis, search=search)
        if plan is None:
            return None
        ext.stats["pushdown_queries"] += 1
        return MultiTaskSelectPlan(ext, plan)
    if isinstance(stmt, (A.Update, A.Delete)):
        tasks = plan_pushdown_dml(ext, stmt, params, analysis, search=search)
        if tasks is None:
            return None
        ext.stats["pushdown_queries"] += 1
        return MultiTaskDMLPlan(ext, tasks)
    if search is not None:
        search.reject("pushdown", "statement_kind",
                      f"{type(stmt).__name__} has no multi-shard pushdown plan")
    return None


def _tier_join_order(ext, session, stmt, params, analysis, search):
    if not isinstance(stmt, A.Select):
        if search is not None:
            search.reject("join_order", "statement_kind",
                          "only SELECT joins can be repartitioned")
        return None
    from .join_order import plan_join_order

    plan = plan_join_order(ext, stmt, params, analysis, search=search)
    if plan is not None:
        ext.stats["repartition_queries"] += 1
    return plan


#: The §3.5 cascade, lowest overhead first. plan_statement walks this list.
CASCADE = (
    PlannerTier("fast_path", _tier_fast_path),
    PlannerTier("router", _tier_router),
    PlannerTier("pushdown", _tier_pushdown),
    PlannerTier("join_order", _tier_join_order),
)


def _disabled_tiers(ext) -> frozenset:
    raw = ext.config.planner_disabled_tiers
    if not raw:
        return frozenset()
    return frozenset(t.strip() for t in raw.split(",") if t.strip())


def plan_statement(ext, session, stmt, params, search=None) -> CustomScanPlan:
    cache = ext.metadata.cache

    if isinstance(stmt, A.Insert):
        plan = _pre_route_insert(ext, session, stmt, params, cache, search)
        if plan is not None:
            if search is not None:
                record_chosen_plan(search, plan)
            return plan

    analysis = analyze_statement(stmt, cache, params, ext.instance.catalog)

    # Queries touching only reference tables (optionally with local tables)
    # run locally against the coordinator's replicas; reference writes fan
    # out to every replica.
    if not analysis.distributed:
        if isinstance(stmt, (A.Update, A.Delete)) and cache.tables.get(
            getattr(stmt, "table", None)
        ):
            plan = ReferenceDMLPlan(ext, stmt, params)
        else:
            plan = LocalReferencePlan(ext, stmt, params)
        if search is not None:
            record_chosen_plan(search, plan)
        return plan

    disabled = _disabled_tiers(ext)
    for tier in CASCADE:
        if tier.name in disabled:
            if search is not None:
                search.reject(tier.name, "disabled",
                              "tier disabled via citus.planner_disabled_tiers")
            continue
        plan = tier.try_fn(ext, session, stmt, params, analysis, search)
        if plan is not None:
            if search is not None:
                record_chosen_plan(search, plan)
            return plan

    if isinstance(stmt, A.Select):
        raise UnsupportedDistributedQuery(
            "could not produce a distributed plan for this query shape"
        )
    raise UnsupportedDistributedQuery(
        f"cannot plan {type(stmt).__name__} on distributed tables"
    )


def _pre_route_insert(ext, session, stmt, params, cache, search):
    """INSERT statements route before the cascade: INSERT..SELECT has its
    own strategy choice, reference inserts replicate, and plain inserts
    either take the fast path or the coordinator row-evaluation plan."""
    if stmt.select is not None:
        from ..insert_select import plan_insert_select

        return plan_insert_select(ext, stmt, params)
    dist = cache.tables.get(stmt.table)
    if dist is None:
        return None  # falls through to the reference/local analysis
    if dist.is_reference:
        return ReferenceDMLPlan(ext, stmt, params)
    # Fast path for single-row inserts with explicit columns; the general
    # plan handles multi-row / positional inserts.
    if "fast_path" in _disabled_tiers(ext):
        if search is not None:
            search.reject("fast_path", "disabled",
                          "tier disabled via citus.planner_disabled_tiers")
        tasks = None
    else:
        tasks = try_fast_path(ext, stmt, params, search=search)
    if tasks is not None:
        ext.stats["fast_path_queries"] += 1
        return SingleTaskPlan(ext, tasks, "Fast Path Router",
                              tier="fast_path", is_write=True)
    return InsertValuesPlan(ext, stmt, params)


# ---------------------------------------------------------------- plans


class CitusPlan(CustomScanPlan):
    planner_name = "Citus Adaptive"
    #: Planner-cascade tier for observability ("fast_path", "router",
    #: "pushdown", "join_order", or a DML-specific tier).
    tier = "custom"
    #: True when this plan was replayed from the distributed plan cache.
    cached = False
    #: The PlanSearch recorded while planning this statement (None when
    #: citus.enable_plan_alternatives is off).
    search = None

    def __init__(self, ext):
        self.ext = ext

    def _explain_header(self, task_count: int, detail: str | None = None) -> list[str]:
        lines = [f"Custom Scan (Citus Adaptive)"]
        if detail:
            marker = " (cached)" if self.cached else ""
            lines.append(f"  Planner: {detail}{marker}")
        lines.append(f"  Task Count: {task_count}")
        return lines

    def explain_info(self) -> dict:
        """Structured plan description consumed by
        :func:`repro.citus.observability.describe_plan`. ``tier`` is the
        cascade tier; ``detail`` (optional) overrides the display label
        when it carries more than the tier name."""
        return {"tier": self.tier, "tasks": []}

    def explain_analyze_lines(self, session, stmt, params) -> list[str]:
        """EXPLAIN ANALYZE: execute under trace capture and render the
        plan tree annotated with per-task actuals and the merge span."""
        from ..observability import run_explain_analyze

        return run_explain_analyze(self, session, stmt, params)


class SingleTaskPlan(CitusPlan):
    """Fast path / router: the entire statement is one task."""

    def __init__(self, ext, tasks, detail, tier, is_write=False):
        super().__init__(ext)
        self.tasks = tasks
        self.detail = detail
        self.tier = tier
        self.is_write = is_write

    def execute(self, session, params):
        results = self.ext.executor.execute_tasks(session, self.tasks,
                                                  is_write=self.is_write)
        if self.is_write and session.in_transaction:
            from ..txn.deadlock import assign_distributed_txn_ids

            assign_distributed_txn_ids(self.ext, session)
        return results[0]

    def explain_lines(self):
        lines = self._explain_header(1, self.detail)
        lines.append(f"  Task: {self.tasks[0].sql_text()}")
        return lines

    def explain_info(self):
        return {
            "tier": self.tier,
            "detail": self.detail,
            "tasks": self.tasks,
            "is_write": self.is_write,
            "pushed_down": ["FULL STATEMENT"],
        }


class MultiTaskDMLPlan(CitusPlan):
    """Parallel, distributed UPDATE/DELETE."""

    tier = "pushdown"

    def __init__(self, ext, tasks):
        super().__init__(ext)
        self.tasks = tasks

    def execute(self, session, params):
        results = self.ext.executor.execute_tasks(session, self.tasks, is_write=True)
        from ..txn.deadlock import assign_distributed_txn_ids

        assign_distributed_txn_ids(self.ext, session)
        rows = []
        columns = []
        total = 0
        command = "UPDATE"
        for result in results:
            if result is None:
                continue
            total += result.rowcount
            command = result.command
            if result.columns:
                columns = result.columns
                rows.extend(result.rows)
        out = QueryResult(columns, rows, command=command)
        out.rowcount = total
        return out

    def explain_lines(self):
        lines = self._explain_header(len(self.tasks), "Pushdown (DML)")
        if self.tasks:
            lines.append(f"  Task: {self.tasks[0].sql_text()}")
        return lines

    def explain_info(self):
        return {
            "tier": self.tier,
            "detail": "Pushdown (DML)",
            "tasks": self.tasks,
            "is_write": True,
            "pushed_down": ["FULL STATEMENT"],
        }


class MultiTaskSelectPlan(CitusPlan):
    """Logical pushdown SELECT: concat or two-phase-aggregation merge."""

    tier = "pushdown"

    def __init__(self, ext, plan, bound=None):
        super().__init__(ext)
        self.plan = plan
        # Plan-cache replay: merged (user + extracted-constant) parameters
        # that the coordinator-side merge/limit evaluation must use instead
        # of the raw user params.
        self.bound = bound

    def execute(self, session, params):
        if self.bound is not None:
            params = self.bound
        plan = self.plan
        execution = self.ext.executor.open_task_streams(session, plan.tasks)
        if execution is None:
            return self._execute_materialized(session, params)
        from .pushdown import run_streaming_concat, run_streaming_group_merge

        tracer = self.ext.tracer
        tracing = tracer is not None and tracer.active
        merge_start = self.ext.cluster.clock.now() if tracing else 0.0
        result = None
        try:
            if plan.mode == "concat":
                result = run_streaming_concat(plan, execution, session, params)
            else:
                result = run_streaming_group_merge(plan, execution, session, params)
            return result
        finally:
            report = execution.finish()
            if tracing:
                # The merge interleaves with the fetches it drives, so its
                # span covers the statement's whole executor window (the
                # clock advanced inside finish()).
                tracer.add_span(
                    "merge", "merge", merge_start,
                    self.ext.cluster.clock.now(), strategy=self._merge_label(),
                    rows=len(result.rows) if result is not None else 0,
                    rows_buffered_peak=report.rows_buffered_peak,
                    early_terminated=bool(report.early_terminations),
                    tasks_skipped=report.tasks_skipped,
                    streaming=True,
                )

    def _merge_label(self) -> str:
        plan = self.plan
        if plan.merge_strategy:
            return plan.merge_strategy
        return "concat" if plan.mode == "concat" else "group-merge"

    # ------------------------------------------------- streaming consumers

    def execute_batches(self, session, params):
        """Open this SELECT as a generator of visible row batches for a
        streaming consumer (the INSERT..SELECT write pipeline). Returns
        None when the streaming pipeline does not apply — the caller falls
        back to materialized :meth:`execute`."""
        if self.bound is not None:
            params = self.bound
        execution = self.ext.executor.open_task_streams(session, self.plan.tasks)
        if execution is None:
            return None
        return self._batch_generator(execution, session, params)

    def _batch_generator(self, execution, session, params):
        from .pushdown import stream_concat_rows

        plan = self.plan
        batch_size = self.ext.config.stream_batch_size
        tracer = self.ext.tracer
        tracing = tracer is not None and tracer.active
        merge_start = self.ext.cluster.clock.now() if tracing else 0.0
        rows_out = 0
        try:
            if plan.mode == "concat":
                source = stream_concat_rows(plan, execution, session, params)
            else:
                # Group-merge: the worker partials stream into the hash
                # aggregate batch by batch; the (much smaller) aggregated
                # output is then re-chunked for the consumer.
                from .pushdown import run_streaming_group_merge

                source = iter(run_streaming_group_merge(
                    plan, execution, session, params).rows)
            batch = []
            for row in source:
                batch.append(row)
                if len(batch) >= batch_size:
                    rows_out += len(batch)
                    yield batch
                    batch = []
            if batch:
                rows_out += len(batch)
                yield batch
        finally:
            report = execution.finish()
            if tracing:
                tracer.add_span(
                    "merge", "merge", merge_start,
                    self.ext.cluster.clock.now(), strategy=self._merge_label(),
                    rows=rows_out,
                    rows_buffered_peak=report.rows_buffered_peak,
                    early_terminated=bool(report.early_terminations),
                    tasks_skipped=report.tasks_skipped,
                    streaming=True,
                )

    def _execute_materialized(self, session, params):
        """Fallback data plane (``citus.enable_streaming_pipeline = off``):
        every per-shard result is fully buffered before the merge."""
        results = self.ext.executor.execute_tasks(session, self.plan.tasks)
        all_rows = []
        columns = None
        for result in results:
            if result is None:
                continue
            if columns is None:
                columns = result.columns
            all_rows.extend(result.rows)
        columns = columns or []
        tracer = self.ext.tracer
        if tracer is not None and tracer.active:
            with tracer.span("merge", "merge", strategy=self._merge_label(),
                             streaming=False,
                             rows_buffered_peak=len(all_rows)) as span:
                if self.plan.mode == "concat":
                    result = self._finish_concat(session, params, columns, all_rows)
                else:
                    result = self._finish_merge(session, params, all_rows)
                span.attrs["rows"] = len(result.rows)
                return result
        if self.plan.mode == "concat":
            return self._finish_concat(session, params, columns, all_rows)
        return self._finish_merge(session, params, all_rows)

    def _finish_concat(self, session, params, columns, rows):
        plan = self.plan
        n_appended = plan.n_visible  # count of appended hidden sort columns
        total_width = len(columns)
        visible_width = total_width - n_appended

        if plan.hidden_sort_keys:
            from .pushdown import make_concat_sort_key

            rows = sorted(rows, key=make_concat_sort_key(plan, visible_width))
        if n_appended:
            rows = [row[:visible_width] for row in rows]
            columns = columns[:visible_width]
        if plan.distinct:
            seen = set()
            deduped = []
            for row in rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        ctx = EvalContext(row=Row(), params=params, session=session)
        if plan.offset is not None:
            rows = rows[int(evaluate(plan.offset, ctx)):]
        if plan.limit is not None:
            limit = evaluate(plan.limit, ctx)
            if limit is not None:
                rows = rows[: int(limit)]
        return QueryResult(columns, rows)

    def _finish_merge(self, session, params, worker_rows):
        plan = self.plan
        session.temp_results["citus_intermediate"] = (
            plan.intermediate_columns, worker_rows,
        )
        try:
            executor = LocalExecutor(session)
            result = executor.execute_select(plan.master_query, params)
        finally:
            session.temp_results.pop("citus_intermediate", None)
        result.columns = plan.visible_columns
        return result

    def explain_lines(self):
        lines = self._explain_header(
            len(self.plan.tasks),
            "Pushdown" if self.plan.mode == "concat" else "Pushdown (partial aggregation)",
        )
        if self.plan.tasks:
            lines.append(f"  Task: {self.plan.tasks[0].sql_text()}")
        if self.plan.mode == "merge":
            from ...sql.deparse import deparse

            lines.append(f"  Merge Query: {deparse(self.plan.master_query)}")
        return lines

    def explain_info(self):
        plan = self.plan
        merge_query = None
        if plan.mode == "merge" and plan.master_query is not None:
            from ...sql.deparse import deparse

            merge_query = deparse(plan.master_query)
        return {
            "tier": self.tier,
            "detail": "Pushdown" if plan.mode == "concat"
            else "Pushdown (partial aggregation)",
            "tasks": plan.tasks,
            "total_shard_count": plan.total_shards or None,
            "pushed_down": plan.pushed_down,
            "coordinator": plan.coordinator,
            "merge_query": merge_query,
            "merge_strategy": plan.merge_strategy,
        }


class InsertValuesPlan(CitusPlan):
    """Multi-row (or positional) INSERT: rows are evaluated on the
    coordinator (volatile functions like ``random()`` run once, centrally,
    as in Citus), grouped by target shard, and shipped as one task per
    shard."""

    tier = "insert_values"

    def __init__(self, ext, stmt: A.Insert, params):
        super().__init__(ext)
        self.stmt = stmt
        self.params = params
        self.dist = ext.metadata.cache.get_table(stmt.table)

    def execute(self, session, params):
        stmt = self.stmt
        cache = self.ext.metadata.cache
        shell = self.ext.instance.catalog.get_table(stmt.table)
        columns = stmt.columns or shell.column_names()
        try:
            dist_position = columns.index(self.dist.dist_column)
        except ValueError:
            raise NotNullViolation(
                "cannot perform an INSERT without the distribution column"
                f" {self.dist.dist_column!r}"
            ) from None
        ctx = EvalContext(row=Row(), params=params, session=session)
        dist_type = shell.column(self.dist.dist_column).type_name
        by_shard: dict[int, list[list]] = {}
        for row_exprs in stmt.rows:
            values = [evaluate(e, ctx) for e in row_exprs]
            dist_value = cast_value(values[dist_position], dist_type)
            if dist_value is None:
                raise NotNullViolation(
                    f"the distribution column {self.dist.dist_column!r} cannot be NULL"
                )
            values[dist_position] = dist_value
            index = self.dist.shard_index_for_value(dist_value)
            by_shard.setdefault(index, []).append(values)
        tasks = []
        for index, rows in sorted(by_shard.items()):
            shard = self.dist.shards[index]
            node = cache.placement_node(shard.shardid)
            insert = A.Insert(
                table=shard.shard_name,
                columns=list(columns),
                rows=[[A.Literal(v) for v in row] for row in rows],
                on_conflict=stmt.on_conflict.copy() if stmt.on_conflict else None,
                returning=[t.copy() for t in stmt.returning],
            )
            tasks.append(
                Task(node, None, None,
                     shard_group=(self.dist.colocation_id, index),
                     returns_rows=bool(stmt.returning), stmt=insert)
            )
        results = self.ext.executor.execute_tasks(session, tasks, is_write=True)
        if session.in_transaction:
            from ..txn.deadlock import assign_distributed_txn_ids

            assign_distributed_txn_ids(self.ext, session)
        total = sum(r.rowcount for r in results if r is not None)
        rows = [row for r in results if r is not None for row in r.rows]
        cols = next((r.columns for r in results if r is not None and r.columns), [])
        out = QueryResult(cols, rows, command="INSERT")
        out.rowcount = total
        return out

    def explain_lines(self):
        return self._explain_header(len(self.stmt.rows), "Insert (values)")

    def explain_info(self):
        return {
            "tier": self.tier,
            "tasks": [],
            "task_count": len(self.stmt.rows),  # upper bound: one per row
            "total_shard_count": len(self.dist.shards),
            "is_write": True,
            "coordinator": ["ROW EVALUATION", "SHARD GROUPING"],
        }


class ReferenceDMLPlan(CitusPlan):
    """Writes to a reference table replicate to every placement; reads of
    the commit protocol treat each replica as a participant (2PC when the
    table has more than one replica)."""

    tier = "reference"

    def __init__(self, ext, stmt, params):
        super().__init__(ext)
        self.stmt = stmt
        self.params = params
        table_name = stmt.table
        self.dist = ext.metadata.cache.get_table(table_name)

    def execute(self, session, params):
        cache = self.ext.metadata.cache
        shard = self.dist.shards[0]
        nodes = self.ext.metadata.all_placements(shard.shardid)
        rewritten = rewrite_to_shard(self.stmt, cache, None)
        tasks = [
            Task(node, None, params, shard_group=(self.dist.colocation_id, 0, node),
                 returns_rows=bool(getattr(self.stmt, "returning", [])),
                 stmt=rewritten)
            for node in nodes
        ]
        results = self.ext.executor.execute_tasks(session, tasks, is_write=True)
        first = next((r for r in results if r is not None), None)
        if first is None:
            return QueryResult([], [], command="INSERT")
        return first

    def explain_lines(self):
        shard = self.dist.shards[0]
        n = len(self.ext.metadata.all_placements(shard.shardid))
        return self._explain_header(n, "Reference Table DML")

    def explain_info(self):
        from .tasks import Task, task_sql_for_shard

        shard = self.dist.shards[0]
        sql = task_sql_for_shard(self.stmt, self.ext.metadata.cache, None)
        tasks = [
            Task(node, sql, self.params,
                 shard_group=(self.dist.colocation_id, 0, node))
            for node in self.ext.metadata.all_placements(shard.shardid)
        ]
        return {
            "tier": self.tier,
            "tasks": tasks,
            "total_shard_count": 1,
            "pruned_shard_count": 0,
            "is_write": True,
            "pushed_down": ["FULL STATEMENT (per replica)"],
        }


class LocalReferencePlan(CitusPlan):
    """Reads over reference tables (optionally joined with local tables)
    answered from the local replicas without network traffic."""

    tier = "local_reference"

    def __init__(self, ext, stmt, params):
        super().__init__(ext)
        self.stmt = stmt

    def execute(self, session, params):
        rewritten = rewrite_to_shard(self.stmt, self.ext.metadata.cache, None)
        return session._execute_local_dml(rewritten, params)

    def explain_lines(self):
        lines = self._explain_header(0, "Local (reference replica)")
        return lines

    def explain_info(self):
        return {
            "tier": self.tier,
            "tasks": [],
            "task_count": 0,
            "coordinator": ["FULL STATEMENT (local replica)"],
        }


def _hashable(value):
    if isinstance(value, (dict, list)):
        from ...engine.datum import to_text

        return to_text(value)
    return value
