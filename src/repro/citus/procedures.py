"""Distributed stored procedures (§3.8).

``create_distributed_function`` (exposed here as
:func:`register_distributed_procedure`) replicates a procedure to all nodes
and records a *distribution argument*: CALLs whose distribution argument
lands on a worker-owned shard are delegated wholesale to that worker, which
"can then perform most operations locally without network round trips" —
the optimization the TPC-C benchmark (§4.1) relies on.

Delegation requires the worker to have synced metadata (it must plan the
procedure's queries against local shards); otherwise the CALL runs on the
coordinator.
"""

from __future__ import annotations

from ..engine.catalog import Procedure
from ..engine.datum import hash_value
from ..engine.executor import QueryResult
from ..engine.expr import EvalContext, Row, evaluate
from ..sql import ast as A
from ..sql.deparse import deparse


def register_distributed_procedure(ext, name: str, fn, distribution_arg: int | None = None,
                                   colocated_table: str | None = None) -> None:
    """Register a procedure on every node ("Citus replicates database
    objects such as custom types and functions to all servers", §3)."""
    proc = Procedure(name, fn, distribution_arg, colocated_table)
    ext.instance.catalog.register_procedure(proc)
    if ext.cluster is not None:
        for node_name, instance in ext.cluster.nodes.items():
            if instance is not ext.instance:
                instance.catalog.register_procedure(
                    Procedure(name, fn, distribution_arg, colocated_table)
                )


def try_delegate_call(ext, session, stmt: A.CallProcedure):
    """Utility-hook handler for CALL: delegate to a worker if possible."""
    try:
        proc = ext.instance.catalog.get_procedure(stmt.name)
    except Exception:
        return None
    if proc.distribution_arg is None or proc.colocated_table is None:
        return None
    cache = ext.metadata.cache
    dist = cache.tables.get(proc.colocated_table)
    if dist is None or dist.is_reference:
        return None
    params = getattr(session, "_pending_params", None)
    ctx = EvalContext(row=Row(), params=params, session=session)
    args = [evaluate(a, ctx) for a in stmt.args]
    if proc.distribution_arg >= len(args):
        return None
    value = args[proc.distribution_arg]
    shard_index = dist.shard_index_for_value(value)
    node = cache.placement_node(dist.shards[shard_index].shardid)
    if node == ext.instance.name:
        return None  # local shard: plain local execution path
    if node not in cache.nodes_with_metadata:
        ext.stats["procedure_not_delegated"] += 1
        return None  # worker cannot plan distributed queries
    # Ship the whole CALL; the worker executes it with local planning.
    call_sql = "CALL {}({})".format(
        stmt.name, ", ".join(_literal(v) for v in args)
    )
    conn = ext.worker_connection(node)
    conn.execute(call_sql)
    ext.stats["procedure_delegated"] += 1
    return QueryResult([], [], command="CALL")


def _literal(value) -> str:
    from ..sql.deparse import quote_literal

    return quote_literal(value)
