"""Distributed COPY (§3.8).

The coordinator parses the incoming row stream, routes every row to its
shard by hashing the distribution column, and streams row batches to the
shards over per-shard COPY channels — "the coordinator opens COPY commands
for each of the shards and streams rows to the shards asynchronously,
which means writes are partially parallelized across cores even with a
single client."

With ``citus.enable_streaming_writes`` (the default) routing is pipelined:
each shard has a bounded COPY channel that flushes to its worker whenever
it reaches ``citus.copy_flush_threshold`` rows, so the coordinator holds
O(flush_threshold × shards) rows instead of the whole input. Every flush
runs inside the write transaction — a mid-stream error (NULL distribution
value, cast failure, worker error) rolls back all shards through the
normal 1PC/2PC machinery. With the GUC off, the pre-streaming behavior is
restored bit-for-bit: full per-shard batches shipped as one task each.

Reference-table COPY replicates every row to all placements.
"""

from __future__ import annotations

from ..engine.datum import cast_value, hash_value
from ..errors import NotNullViolation, SQLError
from .planner.tasks import Task


class ShardCopyRouter:
    """Hash-routes an incoming row stream into per-target-shard bounded
    COPY channels, flushing each channel to its worker incrementally.

    Channels are plain row buffers; the wire work (connection choice,
    transaction registration, byte costing, counters, spans) lives in the
    executor's :class:`~.executor.adaptive.CopyChannelExecution`, which the
    router drives through ``flush``. The router tracks the total buffered
    row count across all channels as it routes and reports the high-water
    mark to the execution at the end, so the ``copy_channel_peak_rows``
    gauge records the true coordinator peak.
    """

    def __init__(self, ext, session, dist, shell, columns):
        self.ext = ext
        self.dist = dist
        self.columns = columns
        self.flush_threshold = max(1, int(ext.config.copy_flush_threshold))
        self.column_types = [shell.column(c).type_name for c in columns]
        if dist.is_reference:
            self.dist_position = None
            shard = dist.shards[0]
            # One channel per placement; every row replicates to all.
            self.targets = [
                (node, (dist.colocation_id, 0, node), shard.shard_name)
                for node in ext.metadata.all_placements(shard.shardid)
            ]
        else:
            self.dist_position = _dist_position(columns, dist)
            cache = ext.metadata.cache
            self.targets = [
                (cache.placement_node(shard.shardid),
                 (dist.colocation_id, index), shard.shard_name)
                for index, shard in enumerate(dist.shards)
            ]
        expected: dict[str, int] = {}
        for node, _group, _name in self.targets:
            expected[node] = expected.get(node, 0) + 1
        self.execution = ext.executor.open_copy_channels(
            session, expected_by_node=expected
        )
        self.channels: list[list] = [[] for _ in self.targets]
        self.buffered = 0
        self.peak_buffered = 0
        self.total = 0

    def route(self, row) -> None:
        """Cast, route, and buffer one row; flush its channel when full."""
        values = [cast_value(v, t) for v, t in zip(row, self.column_types)]
        position = self.dist_position
        if position is None:
            # Reference table: replicate to every placement channel.
            for index in range(len(self.targets)):
                self._buffer(index, values)
        else:
            dist_value = values[position]
            if dist_value is None:
                raise NotNullViolation(
                    f"the distribution column {self.dist.dist_column!r}"
                    " cannot be NULL in COPY"
                )
            self._buffer(self.dist.shard_index_for_value(dist_value), values)
        self.total += 1

    def _buffer(self, index: int, values) -> None:
        channel = self.channels[index]
        channel.append(values)
        buffered = self.buffered + 1
        self.buffered = buffered
        if buffered > self.peak_buffered:
            self.peak_buffered = buffered
        if len(channel) >= self.flush_threshold:
            self._flush(index)

    def _flush(self, index: int) -> None:
        rows = self.channels[index]
        if not rows:
            return
        node, group, shard_name = self.targets[index]
        self.channels[index] = []
        self.buffered -= len(rows)
        self.execution.flush(index, index, node, group, shard_name,
                             self.columns, rows)

    def finish(self) -> int:
        """Flush every channel's remainder and settle the execution.
        Returns the number of input rows routed."""
        for index in range(len(self.channels)):
            self._flush(index)
        self.execution.note_buffered(self.peak_buffered)
        self.execution.finish()
        return self.total

    def abort(self) -> None:
        """Settle executor gauges after a mid-stream error. Worker-side
        rollback happens through the statement-failure path, which aborts
        every transaction block registered in ``session.remote_txns``."""
        self.execution.note_buffered(self.peak_buffered)
        self.execution.finish()


def distribute_rows(ext, session, table_name: str, rows, columns=None) -> int:
    """Route and apply rows of a COPY into a Citus table. Returns count.

    ``rows`` may be any iterable (including a generator fed by the
    streaming read pipeline); on the streaming-writes path it is consumed
    incrementally and never materialized in full.
    """
    cache = ext.metadata.cache
    dist = cache.get_table(table_name)
    shell = ext.instance.catalog.get_table(table_name)
    columns = list(columns or shell.column_names())

    if getattr(ext.config, "enable_streaming_writes", True) and ext.cluster is not None:
        router = ShardCopyRouter(ext, session, dist, shell, columns)
        try:
            route = router.route  # hot loop: one call per input row
            for row in rows:
                route(row)
        except BaseException as exc:
            router.abort()
            # SQLErrors roll back through the engine's statement-failure
            # path; a non-SQL error (e.g. the client's row iterator raised)
            # bypasses it, so abort the flushed worker transactions here —
            # otherwise the next statement would commit the partial COPY.
            if not isinstance(exc, SQLError):
                session._statement_failed(exc)
            raise
        total = router.finish()
        session.stats["rows_copied"] += total
        return total

    if dist.is_reference:
        return _copy_reference(ext, session, dist, shell, rows, columns)

    dist_position = _dist_position(columns, dist)
    dist_type = shell.column(dist.dist_column).type_name
    column_types = [shell.column(c).type_name for c in columns]

    batches: dict[int, list] = {}
    total = 0
    for row in rows:
        values = [cast_value(v, t) for v, t in zip(row, column_types)]
        dist_value = values[dist_position]
        if dist_value is None:
            raise NotNullViolation(
                f"the distribution column {dist.dist_column!r} cannot be NULL in COPY"
            )
        index = dist.shard_index_for_value(dist_value)
        batches.setdefault(index, []).append(values)
        total += 1

    tasks = []
    for index, batch in sorted(batches.items()):
        shard = dist.shards[index]
        node = cache.placement_node(shard.shardid)
        tasks.append(
            Task(node, "", shard_group=(dist.colocation_id, index), returns_rows=False,
                 copy_rows=batch, copy_table=shard.shard_name, copy_columns=columns)
        )
    ext.executor.execute_tasks(session, tasks, is_write=True)
    session.stats["rows_copied"] += total
    return total


def _copy_reference(ext, session, dist, shell, rows, columns) -> int:
    column_types = [shell.column(c).type_name for c in columns]
    materialized = [
        [cast_value(v, t) for v, t in zip(row, column_types)] for row in rows
    ]
    shard = dist.shards[0]
    tasks = []
    for node in ext.metadata.all_placements(shard.shardid):
        tasks.append(
            Task(node, "", shard_group=(dist.colocation_id, 0, node), returns_rows=False,
                 copy_rows=materialized, copy_table=shard.shard_name,
                 copy_columns=columns)
        )
    ext.executor.execute_tasks(session, tasks, is_write=True)
    session.stats["rows_copied"] += len(materialized)
    return len(materialized)


def _dist_position(columns, dist) -> int:
    try:
        return columns.index(dist.dist_column)
    except ValueError:
        raise NotNullViolation(
            f"COPY into {dist.name!r} requires the distribution column"
            f" {dist.dist_column!r}"
        ) from None
