"""Distributed COPY (§3.8).

The coordinator parses the incoming row stream, routes every row to its
shard by hashing the distribution column, and streams row batches to the
shards over per-shard COPY channels — "the coordinator opens COPY commands
for each of the shards and streams rows to the shards asynchronously,
which means writes are partially parallelized across cores even with a
single client."

Reference-table COPY replicates every row to all placements.
"""

from __future__ import annotations

from ..engine.datum import cast_value, hash_value
from ..errors import NotNullViolation
from .planner.tasks import Task


def distribute_rows(ext, session, table_name: str, rows, columns=None) -> int:
    """Route and apply rows of a COPY into a Citus table. Returns count."""
    cache = ext.metadata.cache
    dist = cache.get_table(table_name)
    shell = ext.instance.catalog.get_table(table_name)
    columns = list(columns or shell.column_names())

    if dist.is_reference:
        return _copy_reference(ext, session, dist, shell, rows, columns)

    dist_position = _dist_position(columns, dist)
    dist_type = shell.column(dist.dist_column).type_name
    column_types = [shell.column(c).type_name for c in columns]

    batches: dict[int, list] = {}
    total = 0
    for row in rows:
        values = [cast_value(v, t) for v, t in zip(row, column_types)]
        dist_value = values[dist_position]
        if dist_value is None:
            raise NotNullViolation(
                f"the distribution column {dist.dist_column!r} cannot be NULL in COPY"
            )
        index = dist.shard_index_for_value(dist_value)
        batches.setdefault(index, []).append(values)
        total += 1

    tasks = []
    for index, batch in sorted(batches.items()):
        shard = dist.shards[index]
        node = cache.placement_node(shard.shardid)
        tasks.append(
            Task(node, "", shard_group=(dist.colocation_id, index), returns_rows=False,
                 copy_rows=batch, copy_table=shard.shard_name, copy_columns=columns)
        )
    ext.executor.execute_tasks(session, tasks, is_write=True)
    session.stats["rows_copied"] += total
    return total


def _copy_reference(ext, session, dist, shell, rows, columns) -> int:
    column_types = [shell.column(c).type_name for c in columns]
    materialized = [
        [cast_value(v, t) for v, t in zip(row, column_types)] for row in rows
    ]
    shard = dist.shards[0]
    tasks = []
    for node in ext.metadata.all_placements(shard.shardid):
        tasks.append(
            Task(node, "", shard_group=(dist.colocation_id, 0, node), returns_rows=False,
                 copy_rows=materialized, copy_table=shard.shard_name,
                 copy_columns=columns)
        )
    ext.executor.execute_tasks(session, tasks, is_write=True)
    session.stats["rows_copied"] += len(materialized)
    return len(materialized)


def _dist_position(columns, dist) -> int:
    try:
        return columns.index(dist.dist_column)
    except ValueError:
        raise NotNullViolation(
            f"COPY into {dist.name!r} requires the distribution column"
            f" {dist.dist_column!r}"
        ) from None
