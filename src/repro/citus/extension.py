"""The Citus extension object: hook registration, UDFs, configuration.

``install_citus(instance, cluster)`` is the equivalent of ``CREATE
EXTENSION citus``: it creates the metadata tables, registers the UDF
surface (``create_distributed_table`` & co.), and installs the planner
hook, utility hook, transaction callbacks, and the maintenance background
worker — the full §3.1 hook inventory. Everything the distributed layer
does flows through those hooks; the engine knows nothing about Citus.
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from dataclasses import dataclass, field

from ..engine.catalog import Procedure
from ..engine.stats import StatsRegistry, stats_for
from ..errors import MetadataError, ReproError
from ..sql import ast as A
from .ddl import DistributedDDL
from .executor.adaptive import AdaptiveExecutor
from .metadata import FIRST_SHARD_ID, MetadataStore
from .planner.distributed import make_planner_hook
from .planner.plan_cache import PlanCache
from .txn.deadlock import detect_distributed_deadlocks
from .txn.recovery import recover_prepared_transactions
from .txn.twopc import TransactionCallbacks


@dataclass
class CitusConfig:
    """The citus.* GUCs this reproduction models."""

    shard_count: int = 32
    max_shared_pool_size: int = 100  # per worker node, shared across backends
    executor_slow_start_interval_ms: float = 10.0
    per_row_cpu_cost: float = 2e-6  # simulated seconds per result row
    enable_repartition_joins: bool = True
    # Streaming tuple pipeline: multi-shard SELECTs pull row batches from
    # per-task worker cursors instead of materializing whole shard results.
    enable_streaming_pipeline: bool = True
    stream_batch_size: int = 256  # rows per cursor fetch round trip
    # Streaming write data plane (§3.8): COPY / INSERT..SELECT route rows
    # into per-shard COPY channels that flush to the workers incrementally
    # instead of materializing whole per-shard batches on the coordinator.
    enable_streaming_writes: bool = True
    copy_flush_threshold: int = 512  # rows per channel before a flush
    deadlock_detection_interval_s: float = 2.0
    recovery_interval_s: float = 2.0
    # Distributed tracing / statement telemetry.
    enable_tracing: bool = True  # collect a span tree per statement
    trace_buffer_size: int = 256  # ring buffer of finished traces
    log_min_duration: float = -1.0  # slow-query log threshold (ms); <0 off
    # Live introspection: wait-event accounting + per-tenant statistics
    # (citus_dist_stat_activity / citus_lock_waits / citus_stat_tenants).
    enable_introspection: bool = True
    # Candidate-plan pipeline: record a PlanSearch (tiers tried, structured
    # rejections, costed alternatives) per planned statement, exposed via
    # citus_plan_alternatives() / EXPLAIN "Considered:" lines. Off keeps
    # the planner hot path free of per-statement search bookkeeping.
    enable_plan_alternatives: bool = True
    # Comma-separated cascade tiers to skip (fast_path,router,pushdown,
    # join_order) — a debugging/regression-gate lever, not a paper GUC.
    planner_disabled_tiers: str = ""
    # Distributed-transaction co-access graph + time-windowed statistics
    # (citus_stat_txn_graph / citus_stat_windows). Off detaches the graph
    # entirely: the executor and 2PC paths then pay one attribute test.
    enable_txn_graph: bool = True
    stat_window_seconds: float = 60.0  # width of one window bucket
    stat_window_buckets: int = 8  # ring retention (closed + current)
    # Active Session History (citus_ash): a deterministic wait/state
    # sampler driven by SimClock observers. Off detaches the observer, so
    # every clock advance pays one empty-list test and capture surfaces
    # one ``ext.ash is None`` attribute test.
    enable_ash: bool = True
    ash_sampling_interval: float = 1.0  # virtual seconds between samples
    ash_buffer_size: int = 65536  # ring capacity, in session-samples


class NamedArgument:
    """Carrier for ``name := value`` UDF arguments."""

    def __init__(self, name, value):
        self.name = name
        self.value = value


def _named_arg(name, value):
    return NamedArgument(name, value)


def split_named_args(args):
    positional = []
    named = {}
    for arg in args:
        if isinstance(arg, NamedArgument):
            named[arg.name] = arg.value
        else:
            positional.append(arg)
    return positional, named


class CitusExtension:
    def __init__(self, instance, cluster, config: CitusConfig | None = None,
                 is_coordinator: bool = True):
        self.instance = instance
        self.cluster = cluster
        self.config = config or CitusConfig()
        self.is_coordinator = is_coordinator
        self.metadata = MetadataStore(instance)
        self.plan_cache = PlanCache(self)
        self.ddl = DistributedDDL(self)
        self.executor = AdaptiveExecutor(self)
        self.txn_callbacks = TransactionCallbacks(self)
        # Cluster-shared tracer, attached by install_citus. A plain
        # attribute (not a property) so benchmarks can detach it entirely
        # for an uninstrumented baseline.
        self.tracer = None
        # Cluster-shared co-access graph (citus.enable_txn_graph); None
        # when disabled, so hot paths gate on a single attribute test.
        self.txn_graph = None
        # Cluster-shared Active Session History sampler
        # (citus.enable_ash); None when disabled.
        self.ash = None
        self.stats: Counter = Counter()
        # Ring buffer of PlanSearch records (citus.enable_plan_alternatives),
        # newest last; drained by citus_plan_alternatives().
        self.plan_searches: deque = deque(maxlen=128)
        # citus_stat_counters_reset() baseline for the engine-level
        # expression-compilation counter (a process-wide monotonic count).
        self.expr_compile_baseline = 0
        self.failpoints: dict[str, bool] = {}
        self._utility_connections: dict[str, object] = {}
        self._shared_slots: Counter = Counter()  # outgoing conns per worker
        self._dist_txn_counter = itertools.count(1)
        self._restore_point_lock = False
        instance.extensions["citus"] = self

    # ------------------------------------------------------------ helpers

    @property
    def stat_counters(self) -> StatsRegistry:
        """The cluster-wide stats registry (``citus_stat_*``): one registry
        per cluster, shared by every node's extension, so counters reflect
        the whole cluster regardless of which node incremented them."""
        holder = self.cluster if self.cluster is not None else self
        return stats_for(holder)

    def all_node_names(self) -> list[str]:
        nodes = list(self.metadata.cache.nodes)
        if not nodes:
            nodes = [self.instance.name]
        return nodes

    def worker_connection(self, node: str):
        """A cached utility connection for DDL/maintenance (not the
        adaptive executor's pools)."""
        conn = self._utility_connections.get(node)
        if conn is None or conn.closed or not conn.session.instance.is_up or (
            self.cluster and conn.session.instance is not self.cluster.nodes.get(node)
        ):
            conn = self.cluster.connect(node, application_name="citus_utility")
            self._utility_connections[node] = conn
        return conn

    def allocate_shard_ids(self, count: int) -> list[int]:
        holder = self.cluster if self.cluster is not None else self
        counter = getattr(holder, "_citus_shard_id_seq", None)
        if counter is None:
            counter = itertools.count(FIRST_SHARD_ID)
            holder._citus_shard_id_seq = counter
        return [next(counter) for _ in range(count)]

    def next_distributed_txn_id(self) -> int:
        holder = self.cluster if self.cluster is not None else self
        counter = getattr(holder, "_citus_dist_txn_seq", None)
        if counter is None:
            counter = itertools.count(1)
            holder._citus_dist_txn_seq = counter
        return next(counter)

    def try_reserve_shared_slot(self, node: str, force: bool = False) -> bool:
        if not force and self._shared_slots[node] >= self.config.max_shared_pool_size:
            self.stats["shared_pool_throttled"] += 1
            self.stat_counters.incr("shared_pool_throttled", node=node)
            return False
        self._shared_slots[node] += 1
        self.stat_counters.gauge_incr("shared_pool_slots", node=node)
        return True

    def release_shared_slot(self, node: str) -> None:
        if self._shared_slots[node] > 0:
            self._shared_slots[node] -= 1
            self.stat_counters.gauge_decr("shared_pool_slots", node=node)

    def table_size_estimate(self, table_name: str) -> int:
        """Total bytes across a Citus table's shards (catalog introspection
        stands in for citus_table_size())."""
        dist = self.metadata.cache.get_table(table_name)
        total = 0
        for shard in dist.shards:
            for node in self.metadata.all_placements(shard.shardid):
                instance = self.cluster.node(node)
                if instance.catalog.has_table(shard.shard_name):
                    total += instance.catalog.get_table(shard.shard_name).heap.total_bytes
        return total

    # ------------------------------------------------------ metadata sync

    def sync_metadata_if_enabled(self, session) -> None:
        targets = self.metadata.cache.nodes_with_metadata
        if not targets:
            return
        rows = self.metadata.dump_rows(session)
        for node in targets:
            if node == self.instance.name:
                continue
            self._sync_to(node, rows)

    def start_metadata_sync_to_node(self, session, node: str) -> None:
        session.execute(
            "UPDATE pg_dist_node SET hasmetadata = true WHERE nodename = $1", [node]
        )
        self.metadata.reload(session)
        rows = self.metadata.dump_rows(session)
        self._sync_to(node, rows)

    def _sync_to(self, node: str, rows) -> None:
        worker = self.cluster.node(node)
        worker_ext = worker.extensions.get("citus")
        if worker_ext is None:
            raise MetadataError(
                f"node {node!r} does not have the citus extension installed"
            )
        worker_session = worker.connect("metadata_sync")
        try:
            worker_ext.metadata.load_rows(worker_session, rows)
            # Shell tables must exist on the worker so it can plan queries
            # against them (the worker becomes a coordinator, §3.2.1).
            from .ddl import table_to_create_stmt
            from ..sql.deparse import deparse

            for table_name in worker_ext.metadata.cache.tables:
                if worker.catalog.has_table(table_name):
                    continue
                shell = self.instance.catalog.get_table(table_name)
                stmt = table_to_create_stmt(shell)
                stmt.foreign_keys = []  # enforced at the shard level
                stmt.if_not_exists = True
                worker_session._execute_utility(stmt, None, None)
        finally:
            worker_session.close()

    # -------------------------------------------------------- maintenance

    def run_maintenance(self) -> dict:
        """One maintenance-daemon cycle: 2PC recovery + distributed
        deadlock detection (§3.1's background worker)."""
        if self.tracer is not None:
            with self.tracer.operation("maintenance"):
                return self._run_maintenance_inner()
        return self._run_maintenance_inner()

    def _run_maintenance_inner(self) -> dict:
        self.stat_counters.incr("maintenance_cycles")
        recovered = recover_prepared_transactions(self)
        cancelled = detect_distributed_deadlocks(self)
        return {"recovery": recovered, "deadlocks_cancelled": cancelled}

    # ------------------------------------------------------ restore points

    def create_distributed_restore_point(self, name: str) -> None:
        """§3.9: block 2PC commits, then write the restore point into every
        node's WAL so all nodes can be restored to a consistent point."""
        self._restore_point_lock = True
        try:
            self.instance.wal.create_restore_point(name)
            for node in self.all_node_names():
                if node == self.instance.name:
                    continue
                self.cluster.node(node).wal.create_restore_point(name)
        finally:
            self._restore_point_lock = False


def install_citus(instance, cluster, config: CitusConfig | None = None,
                  is_coordinator: bool = True) -> CitusExtension:
    ext = CitusExtension(instance, cluster, config, is_coordinator)
    session = instance.connect("citus_install")
    try:
        ext.metadata.create_tables(session)
        ext.metadata.reload(session)
    finally:
        session.close()
    if cluster is not None:
        # One tracer per cluster (like the stats registry): spans emitted
        # by any node's executor, 2PC callbacks, or engine land in the
        # same trace. Attached to the instance too so the engine's
        # dispatch/executor layers can reach it without knowing Citus.
        from .tracing import trace_for

        tracer = trace_for(cluster, cluster.clock)
        tracer.configure(
            enabled=ext.config.enable_tracing,
            buffer_size=ext.config.trace_buffer_size,
            log_min_duration=ext.config.log_min_duration,
        )
        ext.tracer = tracer
        instance.tracer = tracer
    _configure_introspection(ext)
    _configure_txngraph(ext)
    _configure_ash(ext)
    _register_udfs(ext)
    instance.hooks.planner_hooks.append(make_planner_hook(ext))
    instance.hooks.utility_hooks.append(_make_utility_hook(ext))
    instance.hooks.pre_commit_callbacks.append(ext.txn_callbacks.pre_commit)
    instance.hooks.post_commit_callbacks.append(ext.txn_callbacks.post_commit)
    instance.hooks.abort_callbacks.append(ext.txn_callbacks.abort)
    instance.register_background_worker(
        "citus_maintenance", lambda _inst: ext.run_maintenance(),
        interval=ext.config.deadlock_detection_interval_s,
    )
    return ext


# ------------------------------------------------------------ introspection


def _configure_introspection(ext: CitusExtension) -> None:
    """Point every node's engine-level wait-event accounting at the
    cluster-wide stats registry and attach the shared tenant-stats table
    (or detach both when ``citus.enable_introspection`` is off — the
    engine then skips accounting entirely on the hot path)."""
    from .introspection import tenant_stats_for

    holder = ext.cluster if ext.cluster is not None else ext
    if ext.config.enable_introspection:
        registry = stats_for(holder)
        tenants = tenant_stats_for(holder)
    else:
        registry = None
        tenants = None
    instances = (ext.cluster.nodes.values() if ext.cluster is not None
                 else (ext.instance,))
    for instance in instances:
        instance.wait_registry = registry
        instance.tenant_stats = tenants


def _configure_txngraph(ext: CitusExtension) -> None:
    """Attach (or detach) the cluster-shared transaction co-access graph
    on every node's extension. CitusConfig is shared cluster-wide, so one
    reconfiguration covers every node; when ``citus.enable_txn_graph`` is
    off every extension's ``txn_graph`` is None and the executor/2PC
    capture points reduce to one attribute test."""
    from .txngraph import txngraph_for

    holder = ext.cluster if ext.cluster is not None else ext
    if ext.config.enable_txn_graph:
        clock = ext.cluster.clock if ext.cluster is not None else None
        graph = txngraph_for(holder, clock, stats_for(holder))
        graph.configure(ext.config.stat_window_seconds,
                        ext.config.stat_window_buckets)
    else:
        graph = None
    instances = (ext.cluster.nodes.values() if ext.cluster is not None
                 else (ext.instance,))
    for instance in instances:
        node_ext = instance.extensions.get("citus")
        if node_ext is not None:
            node_ext.txn_graph = graph
    ext.txn_graph = graph


def _configure_ash(ext: CitusExtension) -> None:
    """Attach (or detach) the cluster-shared Active Session History
    sampler. One sampler per cluster, hooked into the shared SimClock as
    an observer; the config is shared cluster-wide so one reconfiguration
    covers every node. When ``citus.enable_ash`` is off the observer is
    detached (clock advances pay one empty-list test) and every node's
    ``ext.ash`` is None — but the holder keeps the ring, so toggling the
    GUC back on via citus_set_config resumes with history intact. A
    single-node install (no cluster) has no shared clock to observe and
    stays unsampled."""
    from .ash import ash_for, holder_has_sampler

    if ext.cluster is None:
        ext.ash = None
        return
    holder = ext.cluster
    sampler = None
    if ext.config.enable_ash or holder_has_sampler(holder):
        sampler = ash_for(holder, ext.cluster.clock, stats_for(holder))
        sampler.configure(
            enabled=ext.config.enable_ash,
            interval=ext.config.ash_sampling_interval,
            buffer_size=ext.config.ash_buffer_size,
            ext=ext,
        )
        if not ext.config.enable_ash:
            sampler = None
    for instance in ext.cluster.nodes.values():
        node_ext = instance.extensions.get("citus")
        if node_ext is not None:
            node_ext.ash = sampler
    ext.ash = sampler


def view_rows(records, columns, sort_key=None) -> list[list]:
    """Render per-row mappings into the list-of-lists shape every
    monitoring UDF returns, in a fixed column order. The single formatter
    behind citus_shards, citus_tables, citus_stat_counters and the live
    introspection views."""
    rows = [[record.get(column) for column in columns] for record in records]
    if sort_key is not None:
        rows.sort(key=sort_key)
    return rows


# --------------------------------------------------------------------- UDFs


def _register_udfs(ext: CitusExtension) -> None:
    catalog = ext.instance.catalog
    catalog.register_function("_named_arg", lambda _s, n, v: NamedArgument(n, v))

    def require_coordinator():
        if not ext.is_coordinator:
            raise MetadataError(
                "operation is only allowed on the coordinator (connect there for DDL)"
            )

    def citus_add_node(session, nodename, *args):
        require_coordinator()
        ext.metadata.add_node(session, nodename)
        return nodename

    def create_distributed_table(session, table_name, dist_column, *rest):
        require_coordinator()
        positional, named = split_named_args(rest)
        colocate_with = named.get("colocate_with")
        shard_count = named.get("shard_count")
        if positional:
            colocate_with = positional[0]
        ext.ddl.create_distributed_table(
            session, table_name, dist_column,
            colocate_with=colocate_with,
            shard_count=int(shard_count) if shard_count else None,
        )
        return table_name

    def create_reference_table(session, table_name):
        require_coordinator()
        ext.ddl.create_reference_table(session, table_name)
        return table_name

    def create_range_distributed_table(session, table_name, dist_column, ranges):
        require_coordinator()
        ext.ddl.create_range_distributed_table(session, table_name, dist_column, ranges)
        return table_name

    def undistribute_table(session, table_name):
        require_coordinator()
        from .rebalancer import undistribute_table as undo

        undo(ext, session, table_name)
        return table_name

    def start_metadata_sync(session, nodename):
        require_coordinator()
        ext.start_metadata_sync_to_node(session, nodename)
        return nodename

    def rebalance_table_shards(session, *rest):
        require_coordinator()
        from .rebalancer import Rebalancer

        moves = Rebalancer(ext).rebalance(session)
        return len(moves)

    def citus_move_shard_placement(session, shardid, target_node, *rest):
        require_coordinator()
        from .rebalancer import move_shard

        move_shard(ext, session, int(shardid), target_node)
        return int(shardid)

    def get_shard_id(session, table_name, value):
        dist = ext.metadata.cache.get_table(table_name)
        from .ddl import shard_id_for_value

        return shard_id_for_value(dist, value)

    def citus_table_size(session, table_name):
        return ext.table_size_estimate(table_name)

    def citus_create_restore_point(session, name):
        require_coordinator()
        ext.create_distributed_restore_point(name)
        return name

    def run_command_on_workers(session, sql):
        results = []
        for node in ext.all_node_names():
            try:
                ext.worker_connection(node).execute(sql)
                results.append(f"{node}: OK")
            except ReproError as exc:
                results.append(f"{node}: ERROR {exc}")
        return results

    def citus_drain_node(session, nodename):
        require_coordinator()
        from .rebalancer import drain_node

        moves = drain_node(ext, session, nodename)
        return len(moves)

    def isolate_tenant(session, table_name, tenant_value, *rest):
        require_coordinator()
        from .isolation import isolate_tenant_to_new_shard

        return isolate_tenant_to_new_shard(ext, session, table_name, tenant_value)

    def citus_shards(session):
        """Rows of the citus_shards monitoring view, as an array of
        [table, shardid, shard_name, node, size_bytes] entries."""
        def records():
            for table in ext.metadata.cache.tables.values():
                for shard in table.shards:
                    for node in ext.metadata.all_placements(shard.shardid):
                        instance = ext.cluster.node(node)
                        size = 0
                        if instance.catalog.has_table(shard.shard_name):
                            size = instance.catalog.get_table(
                                shard.shard_name
                            ).heap.total_bytes
                        yield {
                            "table_name": table.name,
                            "shardid": shard.shardid,
                            "shard_name": shard.shard_name,
                            "nodename": node,
                            "shard_size": size,
                        }

        return view_rows(records(), (
            "table_name", "shardid", "shard_name", "nodename", "shard_size",
        ))

    def citus_tables(session):
        """Rows of the citus_tables monitoring view: [table, citus_table_type,
        distribution_column, colocation_id, shard_count, size_bytes]."""
        def records():
            for table in ext.metadata.cache.tables.values():
                kind = "reference" if table.is_reference else (
                    "range distributed" if table.method == "r" else "distributed"
                )
                yield {
                    "table_name": table.name,
                    "citus_table_type": kind,
                    "distribution_column": table.dist_column,
                    "colocation_id": table.colocation_id,
                    "shard_count": table.shard_count,
                    "table_size": ext.table_size_estimate(table.name),
                }

        return view_rows(records(), (
            "table_name", "citus_table_type", "distribution_column",
            "colocation_id", "shard_count", "table_size",
        ))

    def citus_set_config(session, name, value):
        if not hasattr(ext.config, name):
            raise MetadataError(f"unknown citus configuration {name!r}")
        current = getattr(ext.config, name)
        setattr(ext.config, name, type(current)(value))
        if ext.tracer is not None and name in (
            "enable_tracing", "trace_buffer_size", "log_min_duration"
        ):
            ext.tracer.configure(
                enabled=ext.config.enable_tracing,
                buffer_size=ext.config.trace_buffer_size,
                log_min_duration=ext.config.log_min_duration,
            )
        if name == "enable_introspection":
            _configure_introspection(ext)
        if name in ("enable_txn_graph", "stat_window_seconds",
                    "stat_window_buckets"):
            _configure_txngraph(ext)
        if name in ("enable_ash", "ash_sampling_interval",
                    "ash_buffer_size"):
            _configure_ash(ext)
        return value

    def alter_table_set_access_method(session, table_name, method):
        require_coordinator()
        from .columnar import set_access_method

        set_access_method(ext, session, table_name, method)
        return table_name

    def citus_stat_counters(session, *rest):
        """Rows of the citus_stat_counters view: [name, node, value] for
        every cluster-wide counter and gauge."""
        from collections import Counter as _Counter

        from ..engine.compile import compile_count

        snap = ext.stat_counters.snapshot()
        # Expression compilations happen in the engine layer (shared by all
        # nodes of this process); surfaced here relative to the last reset.
        compiled = compile_count() - ext.expr_compile_baseline
        if compiled:
            snap.counters["expr_compile_count"] = _Counter({"": compiled})

        def records():
            for kind in (snap.counters, snap.gauges):
                for name in sorted(kind):
                    for node, value in sorted(kind[name].items()):
                        yield {"name": name, "node": node or None, "value": value}

        return view_rows(records(), ("name", "node", "value"))

    def _reset_counters():
        from ..engine.compile import compile_count

        ext.stat_counters.reset()
        ext.expr_compile_baseline = compile_count()

    def _reset_statements():
        if ext.tracer is not None:
            ext.tracer.stat_statements.reset()

    def _reset_tenants():
        stats = ext.instance.tenant_stats
        if stats is not None:
            stats.reset()

    def citus_stat_counters_reset(session):
        """citus_stat_counters_reset(): zero the cluster-wide statistics.

        Reset semantics: monotonic counters (including the wait-event
        count/time accumulators), latency histograms, and high-water
        gauges (peaks recorded via ``gauge_max``, e.g.
        ``rows_buffered_peak``) are cleared; *live* up/down gauges
        (``shared_pool_slots``, ``wait_events_in_progress``, ...) are
        preserved, because they track currently-held resources — zeroing
        a held level would go negative on release. Tenant statistics are
        cleared alongside (they are derived from the same accounting
        epoch). Statement telemetry has its own reset:
        ``citus_stat_statements_reset()``.
        """
        _reset_counters()
        _reset_tenants()
        return True

    def citus_explain(session, sql, *rest):
        """Text form of the structured distributed EXPLAIN."""
        from .observability import explain as dist_explain

        return dist_explain(session, sql).as_text()

    def citus_explain_analyze(session, sql, *rest):
        """EXPLAIN ANALYZE text: executes the statement and annotates the
        distributed plan tree with per-task and merge actuals."""
        from .observability import explain_analyze as dist_explain_analyze

        return "\n".join(dist_explain_analyze(session, sql))

    def citus_stat_statements(session, *rest):
        """Rows of the citus_stat_statements view: [query, partition_key,
        tier, calls, total_ms, min_ms, max_ms, p50_ms, p95_ms, p99_ms,
        rows, bytes, plan_cache_hits], ordered by total time descending.
        Only statements planned by the distributed planner are tracked."""
        if ext.tracer is None:
            return []
        return ext.tracer.stat_statements.rows()

    def citus_stat_statements_reset(session):
        """Clear statement telemetry, plus the tenant statistics derived
        from the same per-statement records."""
        _reset_statements()
        _reset_tenants()
        return True

    def _reset_graph():
        if ext.txn_graph is not None:
            ext.txn_graph.reset_graph()

    def _reset_windows():
        if ext.txn_graph is not None:
            ext.txn_graph.reset_windows()

    def _reset_ash():
        # The ring survives on the holder while citus.enable_ash is off
        # (so a re-enable resumes with history); a reset must clear it
        # either way, without creating a sampler that never existed.
        from .ash import _HOLDER_ATTR

        sampler = ext.ash
        if sampler is None and ext.cluster is not None:
            sampler = getattr(ext.cluster, _HOLDER_ATTR, None)
        if sampler is not None:
            sampler.reset()

    def citus_stat_reset(session, mode="all"):
        """citus_stat_reset([mode]): one reset to rule them all.

        ``mode`` selects what to clear: 'counters' (cluster counters +
        wait-event totals), 'statements' (citus_stat_statements),
        'tenants' (citus_stat_tenants), 'graph' (the lifetime
        transaction co-access graph behind citus_stat_txn_graph),
        'windows' (the time-bucket ring behind citus_stat_windows),
        'ash' (the Active Session History sample ring behind
        citus_ash), or 'all' (the default — every scope above).
        """
        if mode not in ("counters", "statements", "tenants", "graph",
                        "windows", "ash", "all"):
            raise MetadataError(
                f"unknown citus_stat_reset mode {mode!r} "
                "(expected counters, statements, tenants, graph, "
                "windows, ash, or all)"
            )
        if mode in ("counters", "all"):
            _reset_counters()
        if mode in ("statements", "all"):
            _reset_statements()
        if mode in ("tenants", "all"):
            _reset_tenants()
        if mode in ("graph", "all"):
            _reset_graph()
        if mode in ("windows", "all"):
            _reset_windows()
        if mode in ("ash", "all"):
            _reset_ash()
        return mode

    def citus_trace_export(session, *rest):
        """Buffered traces as Chrome trace-event JSON (load the string in
        chrome://tracing or Perfetto). Optional argument limits the export
        to the N most recent traces."""
        if ext.tracer is None:
            return '{"traceEvents": []}'
        limit = int(rest[0]) if rest else None
        return ext.tracer.export_chrome_json(limit)

    def citus_plan_alternatives(session, *rest):
        """The candidate-plan pipeline's PlanSearch records as JSON.

        With a SQL argument the statement is planned afresh (bypassing the
        plan cache) and that single search — every cascade tier tried, each
        structured rejection, and all costed candidates — is returned.
        Without arguments, the ring buffer of recent searches is returned,
        newest last."""
        import json

        from ..errors import UnsupportedDistributedQuery
        from ..sql import parse
        from .planner.distributed import plan_statement
        from .planner.pipeline import PlanSearch, record_chosen_plan

        if not ext.config.enable_plan_alternatives:
            return json.dumps(
                {"error": "citus.enable_plan_alternatives is off"}
            )
        if rest:
            statements = parse(rest[0])
            if len(statements) != 1:
                raise ReproError(
                    "citus_plan_alternatives() needs exactly one statement"
                )
            stmt = statements[0]
            search = PlanSearch(statement=rest[0])
            try:
                plan = plan_statement(ext, session, stmt, None, search=search)
                record_chosen_plan(search, plan)
            except UnsupportedDistributedQuery as exc:
                search.error = str(exc)
            return json.dumps(search.as_dict())
        return json.dumps([s.as_dict() for s in ext.plan_searches])

    def citus_slow_queries(session, *rest):
        """Slow-query log entries (citus.log_min_duration gate): rows of
        [sql, duration_ms, tier, partition_key, rows, error]."""
        if ext.tracer is None:
            return []
        return [
            [e["sql"], e["duration_ms"], e["tier"], e["tenant"],
             e["rows"], e["error"]]
            for e in ext.tracer.slow_log
        ]

    def citus_dist_stat_activity(session):
        """Rows of the citus_dist_stat_activity view: one per open session
        on any alive node — [global_pid, nodename, pid, distributed_txn_id,
        application_name, state, wait_event_type, wait_event, citus_tier,
        query, query_fingerprint, elapsed_ms]."""
        from .introspection import activity_records

        return view_rows(activity_records(ext), (
            "global_pid", "nodename", "pid", "distributed_txn_id",
            "application_name", "state", "wait_event_type", "wait_event",
            "citus_tier", "query", "query_fingerprint", "elapsed_ms",
        ))

    def citus_lock_waits(session):
        """Rows of the citus_lock_waits view: one per (waiter, holder)
        edge in any node's lock wait-for graph, both sides resolved back
        to the originating query — [waiting_gpid, blocking_gpid,
        blocked_statement, current_statement_in_blocking_process,
        waiting_nodename, blocking_nodename, lock]."""
        from .introspection import lock_waits_records

        return view_rows(lock_waits_records(ext), (
            "waiting_gpid", "blocking_gpid", "blocked_statement",
            "current_statement_in_blocking_process",
            "waiting_nodename", "blocking_nodename", "lock",
        ))

    def get_rebalance_progress(session):
        """Rows of get_rebalance_progress(): one per shard move (in
        progress, completed, or failed) — [move_id, table_name, shardid,
        source, target, bytes_copied, bytes_total, rows_copied,
        rows_total, phase, status, error]."""
        from .rebalancer import progress_for

        return view_rows(
            ({
                "move_id": m.move_id, "table_name": m.table_name,
                "shardid": m.shardid, "source": m.source, "target": m.target,
                "bytes_copied": m.bytes_copied, "bytes_total": m.bytes_total,
                "rows_copied": m.rows_copied, "rows_total": m.rows_total,
                "phase": m.phase, "status": m.status, "error": m.error,
            } for m in progress_for(ext).moves),
            ("move_id", "table_name", "shardid", "source", "target",
             "bytes_copied", "bytes_total", "rows_copied", "rows_total",
             "phase", "status", "error"),
        )

    def citus_stat_tenants(session):
        """Rows of the citus_stat_tenants view, busiest tenant first —
        [tenant_attribute, query_count, rows, total_query_time_ms,
        total_wait_time_ms]."""
        stats = ext.instance.tenant_stats
        if stats is None:
            return []
        return view_rows(
            ({
                "tenant_attribute": tenant, "query_count": calls,
                "rows": rows, "total_query_time_ms": query_s * 1000.0,
                "total_wait_time_ms": wait_s * 1000.0,
            } for tenant, calls, rows, query_s, wait_s in stats.records()),
            ("tenant_attribute", "query_count", "rows",
             "total_query_time_ms", "total_wait_time_ms"),
        )

    def citus_stat_txn_graph(session, *rest):
        """The distributed-transaction co-access graph.

        Default: per-edge rows [src, dst, txns, single_node, cross_node,
        twopc, writes, bytes, recent_txns] sorted by (src, dst), where
        src/dst are shard-group labels ("c<colocation>.s<index>"),
        per-kind columns count how the folding transactions committed,
        and recent_txns is the edge weight within the retained window
        ring. Modes: 'vertices' → per-shard-group rows [shard, txns,
        writes, bytes, tenants, top_tenants]; 'json' → sorted-key JSON
        export with tenant-pair detail; 'dot' → GraphViz source."""
        graph = ext.txn_graph
        mode = rest[0] if rest else None
        if graph is None:
            return "{}" if mode == "json" else (
                "graph citus_txn_graph {\n}" if mode == "dot" else [])
        if mode == "json":
            return graph.as_json()
        if mode == "dot":
            return graph.as_dot()
        if mode == "vertices":
            return view_rows(graph.vertex_records(), (
                "shard", "txns", "writes", "bytes", "tenants",
                "top_tenants",
            ))
        return view_rows(graph.edge_records(), (
            "src", "dst", "txns", "single_node", "cross_node", "twopc",
            "writes", "bytes", "recent_txns",
        ))

    def citus_stat_windows(session, *rest):
        """Per-bucket rows of the time-window ring, oldest first —
        [bucket, start_s, end_s, current, statements, p50_ms, p95_ms,
        p99_ms, txns, txns_multi_group, txns_cross_node, txns_2pc,
        edge_txns, counters], where counters is the sorted-key JSON of
        every cluster counter delta accrued during the bucket."""
        if ext.txn_graph is None:
            return []
        return view_rows(ext.txn_graph.window_records(), (
            "bucket", "start_s", "end_s", "current", "statements",
            "p50_ms", "p95_ms", "p99_ms", "txns", "txns_multi_group",
            "txns_cross_node", "txns_2pc", "edge_txns", "counters",
        ))

    def citus_ash(session, *rest):
        """Active Session History: the deterministic wait/state sample
        ring (citus.enable_ash / ash_sampling_interval / ash_buffer_size).

        ``citus_ash([mode [, start [, end [, bucket]]]])`` — ``start`` /
        ``end`` bound the virtual-time range (inclusive, both optional):

        - default / 'samples': raw ring rows [sample_time, global_pid,
          nodename, state, wait_event_type, wait_event, wait_stack,
          query_fingerprint, citus_tier, tenant, distributed_txn_id];
        - 'top_waits': [wait_event_type, wait_event, samples, pct,
          top_node], busiest first;
        - 'top_queries': [query_fingerprint, samples, pct, top_wait];
        - 'top_tenants': [tenant, samples, pct];
        - 'timeline': bucketed rows [bucket, start_s, end_s, samples,
          active, idle, wait_classes] (``bucket`` seconds wide, default
          10 sampling intervals);
        - 'flamegraph': collapsed-stack text
          (``node;wclass;event;...;fingerprint count`` lines) for
          flamegraph.pl / speedscope.
        """
        sampler = ext.ash
        positional, _named = split_named_args(rest)
        mode = positional[0] if positional and positional[0] is not None \
            else "samples"
        if mode not in ("samples", "top_waits", "top_queries",
                        "top_tenants", "timeline", "flamegraph"):
            raise MetadataError(
                f"unknown citus_ash mode {mode!r} (expected samples, "
                "top_waits, top_queries, top_tenants, timeline, or "
                "flamegraph)"
            )
        start = float(positional[1]) if len(positional) > 1 \
            and positional[1] is not None else None
        end = float(positional[2]) if len(positional) > 2 \
            and positional[2] is not None else None
        if sampler is None:
            return "" if mode == "flamegraph" else []
        if mode == "top_waits":
            return view_rows(sampler.top_waits(start, end), (
                "wait_event_type", "wait_event", "samples", "pct",
                "top_node",
            ))
        if mode == "top_queries":
            return view_rows(sampler.top_queries(start, end), (
                "query_fingerprint", "samples", "pct", "top_wait",
            ))
        if mode == "top_tenants":
            return view_rows(sampler.top_tenants(start, end), (
                "tenant", "samples", "pct",
            ))
        if mode == "timeline":
            bucket = float(positional[3]) if len(positional) > 3 \
                and positional[3] is not None else None
            return view_rows(sampler.timeline(start, end, bucket), (
                "bucket", "start_s", "end_s", "samples", "active",
                "idle", "wait_classes",
            ))
        if mode == "flamegraph":
            return sampler.flamegraph(start, end)
        return view_rows(sampler.raw_records(start, end), (
            "sample_time", "global_pid", "nodename", "state",
            "wait_event_type", "wait_event", "wait_stack",
            "query_fingerprint", "citus_tier", "tenant",
            "distributed_txn_id",
        ))

    def citus_metrics_snapshot(session, *rest):
        """All counters, gauges, wait-event totals, histograms, and
        per-node health in Prometheus text exposition format."""
        from .metrics import metrics_snapshot

        return metrics_snapshot(ext)

    registry = {
        "citus_add_node": citus_add_node,
        "master_add_node": citus_add_node,
        "create_distributed_table": create_distributed_table,
        "create_reference_table": create_reference_table,
        "create_range_distributed_table": create_range_distributed_table,
        "undistribute_table": undistribute_table,
        "start_metadata_sync_to_node": start_metadata_sync,
        "rebalance_table_shards": rebalance_table_shards,
        "citus_move_shard_placement": citus_move_shard_placement,
        "master_move_shard_placement": citus_move_shard_placement,
        "get_shard_id_for_distribution_column": get_shard_id,
        "citus_table_size": citus_table_size,
        "citus_total_relation_size": citus_table_size,
        "citus_create_restore_point": citus_create_restore_point,
        "run_command_on_workers": run_command_on_workers,
        "isolate_tenant_to_new_shard": isolate_tenant,
        "citus_drain_node": citus_drain_node,
        "citus_shards": citus_shards,
        "citus_tables": citus_tables,
        "citus_set_config": citus_set_config,
        "alter_table_set_access_method": alter_table_set_access_method,
        "citus_stat_counters": citus_stat_counters,
        "citus_stat_counters_reset": citus_stat_counters_reset,
        "citus_stat_reset": citus_stat_reset,
        "citus_explain": citus_explain,
        "citus_explain_analyze": citus_explain_analyze,
        "citus_stat_statements": citus_stat_statements,
        "citus_stat_statements_reset": citus_stat_statements_reset,
        "citus_trace_export": citus_trace_export,
        "citus_plan_alternatives": citus_plan_alternatives,
        "citus_slow_queries": citus_slow_queries,
        "citus_dist_stat_activity": citus_dist_stat_activity,
        "citus_lock_waits": citus_lock_waits,
        "get_rebalance_progress": get_rebalance_progress,
        "citus_stat_tenants": citus_stat_tenants,
        "citus_stat_txn_graph": citus_stat_txn_graph,
        "citus_stat_windows": citus_stat_windows,
        "citus_ash": citus_ash,
        "citus_metrics_snapshot": citus_metrics_snapshot,
    }
    for name, fn in registry.items():
        catalog.register_function(name, fn)


# ------------------------------------------------------------ utility hook


def _make_utility_hook(ext: CitusExtension):
    from .copy_dist import distribute_rows
    from .procedures import try_delegate_call

    def utility_hook(session, stmt):
        cache = ext.metadata.cache
        if isinstance(stmt, A.Copy) and cache.is_citus_table(stmt.table):
            return _handle_copy(ext, session, stmt)
        if isinstance(stmt, A.CreateIndex) and cache.is_citus_table(stmt.table):
            session.create_index_from_ast(stmt)
            ext.ddl.propagate_create_index(session, stmt)
            ext.metadata.bump_generation()
            from ..engine.executor import QueryResult

            return QueryResult([], [], command="CREATE INDEX")
        if isinstance(stmt, A.DropIndex):
            # Find the index on a Citus shell table and drop it everywhere.
            for table_name, dist in cache.tables.items():
                if not ext.instance.catalog.has_table(table_name):
                    continue
                shell = ext.instance.catalog.get_table(table_name)
                if stmt.name in shell.indexes:
                    ext.instance.catalog.drop_index(stmt.name)
                    for shard in dist.shards:
                        for node in ext.metadata.all_placements(shard.shardid):
                            suffix = str(shard.shardid)
                            ext.worker_connection(node).execute(
                                f"DROP INDEX IF EXISTS {stmt.name}_{suffix}"
                            )
                    ext.metadata.bump_generation()
                    from ..engine.executor import QueryResult

                    return QueryResult([], [], command="DROP INDEX")
            return None
        if isinstance(stmt, A.AlterTable) and cache.is_citus_table(stmt.table):
            session._alter_table(stmt)
            ext.ddl.propagate_alter_table(session, stmt)
            ext.metadata.bump_generation()
            from ..engine.executor import QueryResult

            return QueryResult([], [], command="ALTER TABLE")
        if isinstance(stmt, A.DropTable):
            citus_names = [n for n in stmt.names if cache.is_citus_table(n)]
            if citus_names:
                from ..engine.executor import QueryResult

                for name in citus_names:
                    ext.ddl.propagate_drop_table(session, name)
                for name in stmt.names:
                    ext.instance.catalog.drop_table(name, if_exists=True)
                return QueryResult([], [], command="DROP TABLE")
        if isinstance(stmt, A.TruncateTable):
            citus_names = [n for n in stmt.names if cache.is_citus_table(n)]
            if citus_names:
                from ..engine.executor import QueryResult

                for name in citus_names:
                    ext.ddl.propagate_truncate(session, name)
                ext.metadata.bump_generation()
                local = [n for n in stmt.names if n not in citus_names]
                if local:
                    session._execute_utility(A.TruncateTable(local), None, None)
                return QueryResult([], [], command="TRUNCATE")
        if isinstance(stmt, A.Vacuum) and stmt.table and cache.is_citus_table(stmt.table):
            from ..engine.executor import QueryResult

            dist = cache.get_table(stmt.table)
            for shard in dist.shards:
                for node in ext.metadata.all_placements(shard.shardid):
                    ext.worker_connection(node).execute(f"VACUUM {shard.shard_name}")
            return QueryResult([], [], command="VACUUM")
        if isinstance(stmt, A.CallProcedure):
            return try_delegate_call(ext, session, stmt)
        return None

    def _handle_copy(ext, session, stmt):
        from ..engine.copy import _normalize_rows
        from ..engine.executor import QueryResult

        if stmt.direction == "to":
            result = session.execute(f"SELECT * FROM {stmt.table}")
            result.command = "COPY"
            return result
        copy_data = getattr(session, "_pending_copy_data", None)
        if copy_data is None:
            from ..errors import DataError

            raise DataError("COPY FROM STDIN requires copy_data")
        rows = _normalize_rows(copy_data, session, stmt)
        count = distribute_rows(ext, session, stmt.table, rows, stmt.columns or None)
        result = QueryResult([], [], command="COPY")
        result.rowcount = count
        return result

    return utility_hook
