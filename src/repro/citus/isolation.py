"""Tenant isolation: ``isolate_tenant_to_new_shard`` (§2.1).

"Customers may need control over tenant placement to avoid issues with
noisy neighbors. For this, Citus provides features to view hotspots, to
isolate a tenant onto its own server, and to provide fine-grained control
over tenant placement."

The mechanism, as in real Citus: the shard covering the tenant's hash
value is *split* into up to three shards — the range below the tenant,
the single-value range [h, h], and the range above — across the whole
co-location group so the ranges stay aligned. The tenant's dedicated shard
can then be moved to its own node with ``citus_move_shard_placement``.
"""

from __future__ import annotations

from ..engine.datum import hash_value
from ..errors import MetadataError
from .ddl import shard_ddl_statements
from .metadata import ShardInterval


def isolate_tenant_to_new_shard(ext, session, table_name: str, tenant_value) -> int:
    """Split the shard holding ``tenant_value`` so the tenant gets a shard
    of its own (across the entire co-location group). Returns the new
    shardid that exclusively holds the tenant."""
    cache = ext.metadata.cache
    dist = cache.get_table(table_name)
    if dist.is_reference:
        raise MetadataError("cannot isolate a tenant of a reference table")
    from .metadata import RANGE

    if dist.method == RANGE:
        raise MetadataError("tenant isolation applies to hash-distributed tables")
    tenant_hash = hash_value(tenant_value)
    index = dist.shard_index_for_hash(tenant_hash)
    old = dist.shards[index]
    if old.min_value == tenant_hash and old.max_value == tenant_hash:
        return old.shardid  # already isolated

    # The split ranges (skipping empty ones).
    ranges = []
    if old.min_value < tenant_hash:
        ranges.append((old.min_value, tenant_hash - 1))
    tenant_range_position = len(ranges)
    ranges.append((tenant_hash, tenant_hash))
    if old.max_value > tenant_hash:
        ranges.append((tenant_hash + 1, old.max_value))

    group = [
        t for t in cache.colocated_tables(dist.colocation_id) if not t.is_reference
    ]
    node = cache.placement_node(old.shardid)
    tenant_shardid = None
    for member in group:
        member_old = member.shards[index]
        new_ids = ext.allocate_shard_ids(len(ranges))
        intervals = [
            ShardInterval(sid, member.name, lo, hi)
            for sid, (lo, hi) in zip(new_ids, ranges)
        ]
        if member.name == table_name:
            tenant_shardid = intervals[tenant_range_position].shardid
        _split_physical_shard(ext, session, member, member_old, intervals, node, index)
    ext.sync_metadata_if_enabled(session)
    ext.stats["tenant_isolations"] += 1
    return tenant_shardid


def _split_physical_shard(ext, session, dist_table, old: ShardInterval,
                          intervals: list[ShardInterval], node: str,
                          shard_index: int) -> None:
    shell = ext.instance.catalog.get_table(dist_table.name)
    conn = ext.worker_connection(node)
    dist_position = shell.column_index(dist_table.dist_column)
    # 1. Create the new shard tables next to the old one.
    for interval in intervals:
        for ddl in shard_ddl_statements(ext, shell, interval.shard_name, shard_index):
            conn.execute(ddl)
    # 2. Route the old shard's rows into the splits by hash.
    rows = conn.execute(f"SELECT * FROM {old.shard_name}").rows
    buckets: dict[int, list] = {}
    for row in rows:
        h = hash_value(row[dist_position])
        for i, interval in enumerate(intervals):
            if interval.min_value <= h <= interval.max_value:
                buckets.setdefault(i, []).append(list(row))
                break
    for i, interval in enumerate(intervals):
        if buckets.get(i):
            conn.copy_rows(interval.shard_name, buckets[i])
    # 3. Swap the metadata: old shard out, splits in.
    _replace_shard_metadata(ext, session, old, intervals, node)
    # 4. Drop the old physical shard.
    conn.execute(f"DROP TABLE IF EXISTS {old.shard_name}")


def _replace_shard_metadata(ext, session, old: ShardInterval,
                            intervals: list[ShardInterval], node: str) -> None:
    session.execute("DELETE FROM pg_dist_shard WHERE shardid = $1", [old.shardid])
    session.execute("DELETE FROM pg_dist_placement WHERE shardid = $1", [old.shardid])
    for interval in intervals:
        session.execute(
            "INSERT INTO pg_dist_shard (shardid, logicalrelid, shardminvalue,"
            " shardmaxvalue) VALUES ($1, $2, $3, $4)",
            [interval.shardid, interval.table_name, interval.min_value,
             interval.max_value],
        )
        session.execute(
            "INSERT INTO pg_dist_placement (shardid, nodename) VALUES ($1, $2)",
            [interval.shardid, node],
        )
    ext.metadata.reload(session)
