"""End-to-end distributed tracing and statement telemetry.

Every statement the coordinator dispatches gets a **trace**: a tree of
:class:`Span` objects stamped from the simulated clock — parse/plan (tier,
cache hit, task count), per-task dispatch (queue wait, connection setup,
network bytes, worker execution, cursor batches), the coordinator merge,
and the 2PC prepare/commit/recovery phases. Because every timestamp comes
from :class:`~repro.net.clock.SimClock`, traces are fully deterministic:
the same workload produces byte-identical span trees run after run.

On top of the span stream:

- :class:`StatementStats` aggregates finished traces per plan-cache
  fingerprint (and per tenant, extracted from the distribution-column
  filter) into the ``citus_stat_statements()`` view: calls, total/min/max
  time, a log-bucketed latency histogram (p50/p95/p99), rows, bytes, tier.
- :meth:`Tracer.export_chrome` renders buffered traces as Chrome
  trace-event JSON (open in ``chrome://tracing`` / Perfetto), one lane per
  node.
- A slow-query log gated by ``citus.log_min_duration`` (milliseconds;
  negative disables).

The tracer is attached to the *cluster* object (like the stats registry)
via :func:`trace_for`, so spans emitted by any layer — executor, network,
2PC callbacks, recovery daemon — land in the same trace. ``EXPLAIN
ANALYZE`` uses :meth:`Tracer.capture` to collect spans for a single
statement even while tracing is globally disabled.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager

from ..engine.expr import BoundParams
from ..engine.stats import LogHistogram
from ..sql import ast as A

#: Statement types that never appear in citus_stat_statements (transaction
#: control and introspection noise, mirroring real pg_stat_statements
#: defaults).
_UNTRACKED_STMTS = (A.Begin, A.Commit, A.Rollback, A.SetVar, A.ShowVar)


class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are simulated-clock seconds; ``attrs`` carries
    operation-specific detail (rows, bytes, tier, queue wait...);
    ``children`` nest.
    """

    __slots__ = ("name", "cat", "start", "end", "node", "attrs", "children")

    def __init__(self, name: str, cat: str, start: float, end: float | None = None,
                 node: str | None = None, attrs: dict | None = None):
        self.name = name
        self.cat = cat
        self.start = start
        self.end = start if end is None else end
        self.node = node
        self.attrs = attrs if attrs is not None else {}
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def add(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, cat: str | None = None, name: str | None = None) -> list["Span"]:
        """All descendant spans (including self) matching category/name."""
        return [
            s for s in self.walk()
            if (cat is None or s.cat == cat) and (name is None or s.name == name)
        ]

    def note_result(self, result) -> None:
        rows = getattr(result, "rowcount", 0) or len(getattr(result, "rows", ()))
        self.attrs["rows"] = rows

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "node": self.node,
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }

    def __repr__(self):
        return (f"Span({self.name!r}, cat={self.cat!r},"
                f" dur={self.duration * 1000:.3f}ms,"
                f" children={len(self.children)})")


class Trace:
    """A finished (or in-flight) statement trace: the root span plus the
    statement-level attribution the planner hook fills in."""

    __slots__ = ("root", "stmt", "session_name", "tier", "fingerprint",
                 "tenant", "cached", "rows", "error", "kind", "_sql")

    def __init__(self, root: Span, stmt=None, session_name: str | None = None,
                 kind: str = "statement"):
        self.root = root
        self.stmt = stmt
        self.session_name = session_name
        self.tier: str | None = None
        self.fingerprint: str | None = None
        self.tenant = None
        self.cached = False
        self.rows = 0
        self.error: str | None = None
        self.kind = kind
        self._sql: str | None = None

    @property
    def sql(self) -> str:
        """The statement's SQL text, deparsed lazily (only traces that are
        actually reported — stat_statements keys, slow log, export — pay
        for deparsing)."""
        if self._sql is None:
            if self.stmt is None:
                self._sql = self.root.name
            else:
                try:
                    from ..sql.deparse import deparse

                    self._sql = deparse(self.stmt)
                except Exception:
                    self._sql = type(self.stmt).__name__
        return self._sql

    @property
    def duration(self) -> float:
        return self.root.duration

    @property
    def bytes(self) -> int:
        """Total wire bytes attributed to this statement: the sum over
        task spans only — their batch children break the same bytes down
        per fetch, so summing every span would double-count."""
        return sum(
            s.attrs.get("bytes", 0)
            for s in self.root.walk()
            if s.cat == "executor"
        )

    def note_result(self, result) -> None:
        self.rows = (getattr(result, "rowcount", 0)
                     or len(getattr(result, "rows", ())))
        self.root.attrs["rows"] = self.rows

    def find(self, cat: str | None = None, name: str | None = None) -> list[Span]:
        return self.root.find(cat, name)

    def as_dict(self) -> dict:
        return {
            "sql": self.sql,
            "tier": self.tier,
            "fingerprint": self.fingerprint,
            "tenant": self.tenant,
            "cached": self.cached,
            "rows": self.rows,
            "bytes": self.bytes,
            "error": self.error,
            "duration_ms": self.duration * 1000.0,
            "root": self.root.as_dict(),
        }

    def __repr__(self):
        return (f"Trace({self.root.name!r}, tier={self.tier!r},"
                f" dur={self.duration * 1000:.3f}ms)")


def _stmt_sql(stmt) -> str:
    """SQL text of a statement AST, falling back to the node type name."""
    if stmt is None:
        return "<unknown>"
    try:
        from ..sql.deparse import deparse

        return deparse(stmt)
    except Exception:
        return type(stmt).__name__


class StatementStats:
    """Per-fingerprint aggregation of finished traces — the data behind
    ``citus_stat_statements()``.

    Keyed on ``(fingerprint, tenant)`` where the fingerprint is the same
    normalized-template key the distributed plan cache uses and the tenant
    is the distribution-column value of fast-path/router statements (None
    for multi-shard statements). Only statements that went through the
    distributed planner are tracked, matching real ``citus_stat_statements``.
    """

    __slots__ = ("entries",)

    def __init__(self):
        self.entries: dict[tuple, dict] = {}

    def record(self, trace: Trace) -> None:
        if trace.fingerprint is None:
            return
        key = (trace.fingerprint, trace.tenant)
        entry = self.entries.get(key)
        if entry is None:
            entry = self.entries[key] = {
                # The query text deparses lazily in rows(): only entries
                # actually viewed pay for it, keeping record() off the
                # statement hot path.
                "query": None,
                "_stmt": trace.stmt,
                "tenant": trace.tenant,
                "tier": trace.tier,
                "calls": 0,
                "total_time": 0.0,
                "min_time": float("inf"),
                "max_time": 0.0,
                "rows": 0,
                "bytes": 0,
                "errors": 0,
                "cache_hits": 0,
                "histogram": LogHistogram(),
            }
        elapsed = trace.duration
        entry["calls"] += 1
        entry["total_time"] += elapsed
        entry["min_time"] = min(entry["min_time"], elapsed)
        entry["max_time"] = max(entry["max_time"], elapsed)
        entry["rows"] += trace.rows
        entry["bytes"] += trace.bytes
        entry["tier"] = trace.tier or entry["tier"]
        if trace.error:
            entry["errors"] += 1
        if trace.cached:
            entry["cache_hits"] += 1
        entry["histogram"].observe(elapsed)

    def rows(self) -> list[list]:
        """``citus_stat_statements()`` rows: [query, partition_key, tier,
        calls, total_ms, min_ms, max_ms, p50_ms, p95_ms, p99_ms, rows,
        bytes, plan_cache_hits], ordered by total time descending."""
        out = []
        for entry in self.entries.values():
            hist = entry["histogram"]
            if entry["query"] is None:
                entry["query"] = _stmt_sql(entry.pop("_stmt"))
            out.append([
                entry["query"],
                entry["tenant"],
                entry["tier"],
                entry["calls"],
                entry["total_time"] * 1000.0,
                (0.0 if entry["calls"] == 0 else entry["min_time"]) * 1000.0,
                entry["max_time"] * 1000.0,
                hist.percentile(50) * 1000.0,
                hist.percentile(95) * 1000.0,
                hist.percentile(99) * 1000.0,
                entry["rows"],
                entry["bytes"],
                entry["cache_hits"],
            ])
        out.sort(key=lambda r: r[4], reverse=True)
        return out

    def reset(self) -> None:
        self.entries.clear()


class Tracer:
    """The per-cluster trace collector.

    Single-threaded by construction (the whole cluster simulation is), so
    a plain span stack models the call tree exactly: nested statement
    dispatches (worker backends on the same process, UDF-internal SQL)
    become nested spans rather than separate traces.
    """

    def __init__(self, clock):
        self.clock = clock
        self.enabled = True
        self.buffer: deque[Trace] = deque(maxlen=256)
        self.stat_statements = StatementStats()
        self.slow_log: list[dict] = []
        #: citus.log_min_duration in milliseconds; negative disables.
        self.log_min_duration: float = -1.0
        self._stack: list[Span] = []
        self._trace: Trace | None = None

    # -------------------------------------------------------- configuration

    def configure(self, enabled: bool | None = None,
                  buffer_size: int | None = None,
                  log_min_duration: float | None = None) -> None:
        if enabled is not None:
            self.enabled = bool(enabled)
        if buffer_size is not None and buffer_size != self.buffer.maxlen:
            self.buffer = deque(self.buffer, maxlen=max(1, int(buffer_size)))
        if log_min_duration is not None:
            self.log_min_duration = float(log_min_duration)

    @property
    def active(self) -> bool:
        """True while any trace or capture is collecting — the cheap guard
        every instrumentation point checks before building spans."""
        return bool(self._stack)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------- recording

    def begin_statement(self, session, stmt) -> tuple:
        """Open a statement trace (or, inside an already-active trace, a
        nested statement span) and return an opaque token for
        :meth:`end_statement` / :meth:`fail_statement`.

        This begin/end pair is the statement-dispatch hot path — it avoids
        the generator machinery of the :meth:`statement` context manager.
        The caller must have checked ``tracer.enabled or tracer.active``.
        """
        name = type(stmt).__name__
        span = Span(name, "statement", self.clock.now(),
                    node=session.instance.name)
        if self._stack:
            self._stack[-1].add(span)
            self._stack.append(span)
            return (None, span)
        trace = Trace(span, stmt=stmt,
                      session_name=getattr(session, "name", None))
        self._trace = trace
        self._stack.append(span)
        return (trace, span)

    def end_statement(self, token: tuple, result=None) -> None:
        trace, span = token
        self._stack.pop()
        if trace is None:
            self._finalize(span)
            return
        if result is not None:
            trace.note_result(result)
        self._trace = None
        self._finalize(span)
        self._record(trace)

    def fail_statement(self, token: tuple, exc: BaseException) -> None:
        trace, _span = token
        if trace is not None:
            trace.error = type(exc).__name__
        self.end_statement(token)

    @contextmanager
    def statement(self, session, stmt):
        """Trace one statement dispatch (context-manager convenience over
        :meth:`begin_statement` / :meth:`end_statement`).

        At the top level this opens a new :class:`Trace` (recorded into the
        ring buffer on exit); inside an already-active trace — a worker
        backend on this process, UDF-internal SQL, EXPLAIN ANALYZE capture
        — it nests a child span instead.
        """
        if not self._stack and not self.enabled:
            yield None
            return
        token = self.begin_statement(session, stmt)
        try:
            yield token[0] if token[0] is not None else token[1]
        except BaseException as exc:
            self.fail_statement(token, exc)
            raise
        else:
            self.end_statement(token)

    @contextmanager
    def span(self, name: str, cat: str = "span", node: str | None = None,
             **attrs):
        """Nest a child span under the current one; no-op (yields None)
        when nothing is collecting."""
        if not self._stack:
            yield None
            return
        span = Span(name, cat, self.clock.now(), node=node, attrs=attrs)
        self._stack[-1].add(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            self._finalize(span)

    def add_span(self, name: str, cat: str, start: float, end: float,
                 node: str | None = None, parent: Span | None = None,
                 **attrs) -> Span | None:
        """Attach a completed span with explicit timestamps (the executor's
        reconstructed-parallel timeline) under ``parent`` or the current
        span. Returns None when nothing is collecting."""
        if parent is None:
            if not self._stack:
                return None
            parent = self._stack[-1]
        span = Span(name, cat, start, end, node=node, attrs=attrs)
        parent.add(span)
        return span

    def event(self, name: str, cat: str = "event", node: str | None = None,
              **attrs) -> Span | None:
        """A zero-duration instant span at the current simulated time."""
        now = self.clock.now()
        return self.add_span(name, cat, now, now, node=node, **attrs)

    @contextmanager
    def capture(self, name: str = "capture"):
        """Force span collection for the duration of the block, regardless
        of the ``enabled`` flag, and yield the collecting root span.

        EXPLAIN ANALYZE uses this: it needs the span tree for exactly one
        execution even when tracing is off. The captured tree is *not*
        recorded into the buffer or statement stats (unless it is itself
        nested inside an enabled trace, in which case it shows up there as
        a subtree too).
        """
        root = Span(name, "capture", self.clock.now())
        if self._stack:
            self._stack[-1].add(root)
        self._stack.append(root)
        try:
            yield root
        finally:
            self._stack.pop()
            self._finalize(root)

    @contextmanager
    def operation(self, name: str):
        """Trace a non-statement operation (maintenance cycle, recovery
        round) as its own buffered trace. Nested under an active trace it
        degrades to a plain span; disabled tracing makes it a no-op."""
        if self._stack:
            with self.span(name, "operation") as span:
                yield span
            return
        if not self.enabled:
            yield None
            return
        root = Span(name, "operation", self.clock.now())
        trace = Trace(root, kind="operation")
        self._trace = trace
        self._stack.append(root)
        try:
            yield trace
        finally:
            self._stack.pop()
            self._trace = None
            self._finalize(root)
            if len(root.children) > 0:
                self.buffer.append(trace)

    def annotate(self, tier: str | None = None, fingerprint: str | None = None,
                 tenant=None, cached: bool | None = None) -> None:
        """Statement-level attribution from the planner hook. Only fills
        fields still unset so a nested distributed statement (UDF-internal
        SQL) cannot overwrite the outer statement's attribution."""
        trace = self._trace
        if trace is None:
            return
        if tier is not None and trace.tier is None:
            trace.tier = tier
        if fingerprint is not None and trace.fingerprint is None:
            trace.fingerprint = fingerprint
        if tenant is not None and trace.tenant is None:
            trace.tenant = tenant
        if cached is not None and trace.tier is not None and not trace.cached:
            trace.cached = cached

    def _finalize(self, span: Span) -> None:
        """Close a span: its end is the later of the current simulated time
        and its children's ends (executor spans use reconstructed offsets
        that the clock has already advanced past)."""
        end = self.clock.now()
        for child in span.children:
            if child.end > end:
                end = child.end
        span.end = max(end, span.start)

    def _record(self, trace: Trace) -> None:
        self.buffer.append(trace)
        if trace.kind == "statement" and not isinstance(
            trace.stmt, _UNTRACKED_STMTS
        ):
            self.stat_statements.record(trace)
        if self.log_min_duration >= 0:
            duration_ms = trace.duration * 1000.0
            if duration_ms >= self.log_min_duration:
                self.slow_log.append({
                    "sql": trace.sql,
                    "duration_ms": duration_ms,
                    "tier": trace.tier,
                    "tenant": trace.tenant,
                    "rows": trace.rows,
                    "error": trace.error,
                    "at": trace.root.start,
                })

    def reset(self) -> None:
        """Drop buffered traces, statement stats, and the slow-query log
        (does not touch in-flight spans)."""
        self.buffer.clear()
        self.stat_statements.reset()
        self.slow_log.clear()

    # --------------------------------------------------------------- export

    def export_chrome(self, limit: int | None = None) -> dict:
        """Buffered traces as a Chrome trace-event object (load the JSON in
        ``chrome://tracing`` or https://ui.perfetto.dev). Each node gets
        its own thread lane; span attrs become event ``args``."""
        traces = list(self.buffer)
        if limit is not None:
            traces = traces[-limit:]
        events: list[dict] = []
        tids: dict[str, int] = {}

        def tid_for(node: str | None) -> int:
            key = node or "coordinator"
            if key not in tids:
                tids[key] = len(tids)
            return tids[key]

        def emit(span: Span, trace_sql: str | None, inherit_node: str | None):
            node = span.node or inherit_node
            args = {k: v for k, v in span.attrs.items() if v is not None}
            if trace_sql is not None:
                args["sql"] = trace_sql
            events.append({
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": tid_for(node),
                "args": args,
            })
            for child in span.children:
                emit(child, None, node)

        for trace in traces:
            emit(trace.root, trace.sql, None)
        for name, tid in tids.items():
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_json(self, limit: int | None = None) -> str:
        return json.dumps(self.export_chrome(limit), default=str)


# --------------------------------------------------------------- attachment

_ATTR = "_citus_tracer"


def trace_for(holder, clock) -> Tracer:
    """The tracer attached to ``holder`` (the cluster object), creating it
    on first use — every node's extension shares the same tracer, exactly
    like the stats registry."""
    tracer = getattr(holder, _ATTR, None)
    if tracer is None:
        tracer = Tracer(clock)
        setattr(holder, _ATTR, tracer)
    return tracer


# --------------------------------------------------------- tenant extraction


# Tenant extraction is memoized by statement identity (the engine's
# statement cache returns the same AST object for repeated SQL text), so
# the WHERE-clause walk runs once per distinct statement and metadata
# generation; per execution only a pre-compiled value lookup remains.
# A plain dict (wholesale clear at the cap) beats an LRU here: entries
# are tiny and the id-keyed hit path must cost one dict.get, nothing more.
_TENANT_EXPR_CACHE: dict = {}
_TENANT_CACHE_CAP = 4096

#: Resolver kinds a tenant expression compiles to (see _compile_tenant_plan).
_K_VALUE, _K_NAMED, _K_POSITIONAL, _K_EXPR = 0, 1, 2, 3


def _find_tenant_exprs(cache, stmt):
    """Candidate AST expressions holding the statement's distribution-column
    value (``dist_col = <expr>`` conjuncts, or the INSERT column), or None
    when the statement is not single-tenant-shaped."""
    from .planner.fast_path import _is_dist_ref
    from .sharding import _conjuncts

    if isinstance(stmt, A.Insert):
        dist = cache.tables.get(stmt.table)
        if dist is None or dist.is_reference or stmt.select is not None:
            return None
        if len(stmt.rows) != 1 or not stmt.columns:
            return None
        try:
            position = stmt.columns.index(dist.dist_column)
        except ValueError:
            return None
        return (stmt.rows[0][position],)
    if isinstance(stmt, A.Select):
        if len(stmt.from_items) != 1 or not isinstance(
            stmt.from_items[0], A.TableRef
        ):
            return None
        dist = cache.tables.get(stmt.from_items[0].name)
        if dist is None or dist.is_reference:
            return None
        where, alias = stmt.where, stmt.from_items[0].ref_name
    elif isinstance(stmt, (A.Update, A.Delete)):
        dist = cache.tables.get(stmt.table)
        if dist is None or dist.is_reference:
            return None
        where, alias = stmt.where, stmt.alias or stmt.table
    else:
        return None
    if where is None:
        return None
    exprs = []
    for conjunct in _conjuncts(where):
        if not (isinstance(conjunct, A.BinaryOp) and conjunct.op == "="):
            continue
        left, right = conjunct.left, conjunct.right
        if _is_dist_ref(right, dist, alias):
            left, right = right, left
        if _is_dist_ref(left, dist, alias):
            exprs.append(right)
    return tuple(exprs) or None


def _compile_tenant_plan(exprs):
    """Lower candidate expressions into (kind, payload) resolver steps so
    the per-execution path is a couple of inline dict lookups — no AST
    dispatch, no _const_of call for the common literal/param shapes."""
    if not exprs:
        return None
    plan = []
    for expr in exprs:
        if type(expr) is A.Literal:
            plan.append((_K_VALUE, expr.value))
        elif type(expr) is A.Param:
            if expr.name is not None:
                plan.append((_K_NAMED, expr.name))
            elif expr.index is not None:
                plan.append((_K_POSITIONAL, expr.index))
        else:
            # Casts and anything exotic fall back to full constant folding.
            plan.append((_K_EXPR, expr))
    return tuple(plan) or None


# Lazily bound once on first use (importing fast_path at module load would
# couple tracing into the planner package's import order); a per-call
# ``from ... import`` re-runs the importlib machinery on every statement.
_MISS = _const_of = None


def partition_key_for(ext, stmt, params):
    """The distribution-column value a single-tenant statement targets
    (the ``partition_key`` attribute of citus_stat_statements), or None
    for multi-shard statements."""
    global _MISS, _const_of
    generation = ext.metadata.generation
    key = id(stmt)
    memo = _TENANT_EXPR_CACHE.get(key)
    if memo is not None and memo[0] is stmt and memo[1] == generation:
        plan = memo[2]
    else:
        try:
            exprs = _find_tenant_exprs(ext.metadata.cache, stmt)
        except Exception:
            exprs = None
        plan = _compile_tenant_plan(exprs)
        if len(_TENANT_EXPR_CACHE) >= _TENANT_CACHE_CAP:
            _TENANT_EXPR_CACHE.clear()
        _TENANT_EXPR_CACHE[key] = (stmt, generation, plan)
    if plan is None:
        return None
    named = positional = None
    params_type = type(params)
    if params_type is dict:
        named = params
    elif params_type is BoundParams:
        named = params.named
        positional = params.positional
    elif params_type is list or params_type is tuple:
        positional = params
    for kind, payload in plan:
        if kind == _K_VALUE:
            return payload
        if kind == _K_NAMED:
            if named is not None and payload in named:
                return named[payload]
        elif kind == _K_POSITIONAL:
            if positional is not None and payload <= len(positional):
                return positional[payload - 1]
        else:
            if _const_of is None:
                from .planner.fast_path import _MISS, _const_of
            try:
                value = _const_of(payload, params)
            except Exception:
                return None
            if value is not _MISS:
                return value
    return None
