"""Exception hierarchy for the repro engine and Citus layer.

The hierarchy mirrors the error classes a PostgreSQL + Citus deployment
surfaces to clients: syntax errors, catalog errors, runtime/data errors,
transaction errors (serialization, deadlock), and distributed-planning
errors raised when a query cannot be supported on distributed tables.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SQLError(ReproError):
    """Base class for errors surfaced through the SQL interface."""


class SyntaxErrorSQL(SQLError):
    """The query text could not be parsed."""


class CatalogError(SQLError):
    """Unknown or duplicate table, column, index, or function."""


class DataError(SQLError):
    """Bad input value: cast failure, wrong arity, type mismatch."""


class IntegrityError(SQLError):
    """Constraint violation: NOT NULL, UNIQUE / primary key, foreign key."""


class UniqueViolation(IntegrityError):
    """A unique or primary-key constraint was violated."""


class NotNullViolation(IntegrityError):
    """A NOT NULL constraint was violated."""


class ForeignKeyViolation(IntegrityError):
    """A foreign-key constraint was violated."""


class TransactionError(SQLError):
    """Transaction lifecycle misuse or failure."""


class InvalidTransactionState(TransactionError):
    """e.g. COMMIT PREPARED on an unknown gid, nested BEGIN misuse."""


class TransactionAborted(TransactionError):
    """Commands were issued inside an aborted transaction block."""


class DeadlockDetected(TransactionError):
    """A (possibly distributed) deadlock was detected; the txn was chosen as victim."""


class LockTimeout(TransactionError):
    """A lock could not be acquired within the allowed wait."""


class QueryCanceled(TransactionError):
    """The backend received a cancellation (e.g. distributed deadlock victim)."""


class ConnectionError_(ReproError):
    """A (simulated) connection failed: node down, connection limit reached."""


class TooManyConnections(ConnectionError_):
    """The instance's max_connections limit was reached."""


class NodeUnavailable(ConnectionError_):
    """The target node is down or unreachable."""


class DistributedPlanningError(SQLError):
    """The distributed planner cannot support this query shape."""


class UnsupportedDistributedQuery(DistributedPlanningError):
    """Feature not supported on distributed tables (paper: e.g. correlated
    subqueries on non-co-located tables, 4 of 22 TPC-H queries)."""


class MetadataError(ReproError):
    """Citus metadata inconsistency or misuse (e.g. colocate_with mismatch)."""


class RebalanceError(ReproError):
    """Shard rebalancer could not produce or apply a plan."""


class RecoveryError(ReproError):
    """2PC recovery or restore-point machinery failure."""
