"""Stored procedure delegation (§3.8), columnar storage, HA failover,
and the PgBouncer pool."""

import pytest

from repro.citus import register_distributed_procedure
from repro.citus.columnar import ColumnarStore, get_store
from repro.net.cluster import StandbyConfig
from repro.net.pool import ConnectionPool
from repro.errors import TooManyConnections


# ------------------------------------------------------------- procedures


def make_transfer_proc():
    def transfer(session, account, amount):
        session.execute("BEGIN")
        session.execute(
            "UPDATE accounts SET balance = balance + $1 WHERE aid = $2",
            [amount, account],
        )
        session.execute(
            "INSERT INTO ledger (aid, delta) VALUES ($1, $2)", [account, amount]
        )
        session.execute("COMMIT")

    return transfer


@pytest.fixture
def proc_cluster(citus, citus_session):
    s = citus_session
    s.execute("CREATE TABLE accounts (aid int PRIMARY KEY, balance int)")
    s.execute("SELECT create_distributed_table('accounts', 'aid')")
    s.execute("CREATE TABLE ledger (aid int, delta int, lid serial,"
              " PRIMARY KEY (aid, lid))")
    s.execute("SELECT create_distributed_table('ledger', 'aid',"
              " colocate_with := 'accounts')")
    s.copy_rows("accounts", [[i, 100] for i in range(1, 21)])
    register_distributed_procedure(
        citus.coordinator_ext, "transfer", make_transfer_proc(),
        distribution_arg=0, colocated_table="accounts",
    )
    return citus, s


class TestProcedureDelegation:
    def test_call_without_metadata_runs_on_coordinator(self, proc_cluster):
        citus, s = proc_cluster
        s.execute("CALL transfer(5, 10)")
        assert s.execute("SELECT balance FROM accounts WHERE aid = 5").scalar() == 110
        assert citus.coordinator_ext.stats.get("procedure_delegated", 0) == 0

    def test_call_delegated_with_metadata_sync(self, proc_cluster):
        citus, s = proc_cluster
        citus.enable_metadata_sync()
        before = citus.coordinator_ext.stats.get("procedure_delegated", 0)
        for aid in range(1, 11):
            s.execute("CALL transfer($1, 1)", [aid])
        delegated = citus.coordinator_ext.stats.get("procedure_delegated", 0)
        assert delegated > before  # most keys live on workers
        total = s.execute("SELECT sum(balance) FROM accounts").scalar()
        assert total == 20 * 100 + 10

    def test_delegated_procedure_is_transactional(self, proc_cluster):
        citus, s = proc_cluster
        citus.enable_metadata_sync()
        s.execute("CALL transfer(3, 7)")
        ledger = s.execute("SELECT count(*) FROM ledger WHERE aid = 3").scalar()
        assert ledger == 1
        assert s.execute("SELECT balance FROM accounts WHERE aid = 3").scalar() == 107


# --------------------------------------------------------------- columnar


class TestColumnarStore:
    def test_stripes_and_compression(self):
        store = ColumnarStore("t", ["a", "b"], ["int", "text"])
        store.append_rows([[i, "hello world " * 3] for i in range(25_000)])
        store.finalize()
        assert store.stripe_count == 3  # 10k rows per stripe
        # Compressed int column is much smaller than raw 8B/row.
        assert store.column_bytes("a") < 25_000 * 8

    def test_projection_reads_fewer_bytes(self):
        store = ColumnarStore("t", ["a", "b"], ["int", "text"])
        store.append_rows([[i, "x" * 100] for i in range(5000)])
        narrow = store.scan_bytes(["a"])
        wide = store.scan_bytes(["a", "b"])
        assert narrow < wide / 5

    def test_zone_map_pruning(self):
        store = ColumnarStore("t", ["ts", "v"], ["int", "int"])
        # Two stripes with disjoint ts ranges.
        store.append_rows([[i, 0] for i in range(10_000)])
        store.append_rows([[i, 0] for i in range(50_000, 60_000)])
        store.finalize()
        full = store.scan_bytes(["v"])
        pruned = store.scan_bytes(["v"], predicate_column="ts", low=55_000, high=56_000)
        assert pruned <= full / 2

    def test_alter_access_method(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE logs (id int PRIMARY KEY, line text)")
        s.execute("SELECT create_distributed_table('logs', 'id')")
        s.copy_rows("logs", [[i, f"line {i}"] for i in range(100)])
        s.execute("SELECT alter_table_set_access_method('logs', 'columnar')")
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("logs")
        for shard in dist.shards:
            node = ext.metadata.cache.placement_node(shard.shardid)
            table = citus.cluster.node(node).catalog.get_table(shard.shard_name)
            assert table.access_method == "columnar"
            assert get_store(table) is not None
        # Queries still answer correctly.
        assert s.execute("SELECT count(*) FROM logs").scalar() == 100

    def test_columnar_scan_cost_model(self, citus, citus_session):
        from repro.citus.columnar import columnar_scan_cost_pages

        s = citus_session
        s.execute("CREATE TABLE wide (id int PRIMARY KEY, a text, b text)")
        s.execute("SELECT create_distributed_table('wide', 'id')")
        s.copy_rows("wide", [[i, "a" * 200, "b" * 200] for i in range(500)])
        s.execute("SELECT alter_table_set_access_method('wide', 'columnar')")
        ext = citus.coordinator_ext
        dist = ext.metadata.cache.get_table("wide")
        shard = dist.shards[0]
        node = ext.metadata.cache.placement_node(shard.shardid)
        table = citus.cluster.node(node).catalog.get_table(shard.shard_name)
        narrow = columnar_scan_cost_pages(table, ["id"])
        full = columnar_scan_cost_pages(table, None)
        assert narrow <= full


# --------------------------------------------------------------------- HA


class TestFailover:
    @pytest.fixture
    def ha(self, citus, citus_session):
        s = citus_session
        s.execute("CREATE TABLE t (k int PRIMARY KEY, v int)")
        s.execute("SELECT create_distributed_table('t', 'k')")
        s.copy_rows("t", [[i, i] for i in range(40)])
        return citus, s

    def test_synchronous_standby_loses_nothing(self, ha):
        citus, s = ha
        citus.cluster.enable_standby("worker1", StandbyConfig(mode="synchronous"))
        citus.cluster.fail_node("worker1")
        citus.cluster.promote_standby("worker1")
        citus.coordinator_ext._utility_connections.clear()
        assert s.execute("SELECT count(*) FROM t").scalar() == 40

    def test_async_standby_may_lose_tail(self, ha):
        citus, s = ha
        citus.cluster.enable_standby(
            "worker1", StandbyConfig(mode="asynchronous", async_lag_records=10)
        )
        s.copy_rows("t", [[100 + i, i] for i in range(20)])
        citus.cluster.fail_node("worker1")
        citus.cluster.promote_standby("worker1")
        citus.coordinator_ext._utility_connections.clear()
        count = s.execute("SELECT count(*) FROM t").scalar()
        assert count <= 60  # some tail may be gone, never extra rows

    def test_failed_node_rejects_connections(self, ha):
        citus, s = ha
        from repro.errors import NodeUnavailable

        citus.cluster.fail_node("worker1")
        with pytest.raises(NodeUnavailable):
            citus.cluster.connect("worker1")

    def test_failover_takes_seconds_on_the_clock(self, ha):
        citus, s = ha
        citus.cluster.enable_standby("worker2")
        before = citus.cluster.clock.now()
        citus.cluster.fail_node("worker2")
        citus.cluster.promote_standby("worker2")
        assert 20 <= citus.cluster.clock.now() - before <= 30

    def test_unconfigured_standby_rejected(self, ha):
        citus, s = ha
        from repro.errors import NodeUnavailable

        with pytest.raises(NodeUnavailable):
            citus.cluster.promote_standby("worker1")


# -------------------------------------------------------------- pgbouncer


class TestConnectionPool:
    def test_pool_multiplexes_clients(self, pg):
        pg.connect().execute("CREATE TABLE t (a int)")
        pool = ConnectionPool(pg, pool_size=2, max_client_conn=50)
        clients = [pool.client() for _ in range(10)]
        for i, client in enumerate(clients):
            client.execute("INSERT INTO t VALUES ($1)", [i])
        # Server-side sessions stay bounded by pool_size (+1 setup session).
        assert pg.connection_count <= 3

    def test_txn_holds_lease_until_commit(self, pg):
        pg.connect().execute("CREATE TABLE t (a int)")
        pool = ConnectionPool(pg, pool_size=2)
        client = pool.client()
        client.execute("BEGIN")
        client.execute("INSERT INTO t VALUES (1)")
        assert client._leased is not None
        client.execute("COMMIT")
        assert client._leased is None

    def test_max_clients_enforced(self, pg):
        pool = ConnectionPool(pg, pool_size=1, max_client_conn=2)
        pool.client()
        pool.client()
        with pytest.raises(TooManyConnections):
            pool.client()

    def test_pool_exhaustion_raises(self, pg):
        pg.connect().execute("CREATE TABLE t (a int)")
        pool = ConnectionPool(pg, pool_size=1)
        c1, c2 = pool.client(), pool.client()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(TooManyConnections):
            c2.execute("SELECT 1")
        c1.execute("COMMIT")
        c2.execute("SELECT 1")
