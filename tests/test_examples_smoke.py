"""Smoke-run every example script: the documented entry points must keep
working end to end (each runs in-process with a fresh module namespace)."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did
    assert "Traceback" not in out


def test_explain_analyze_reports_actuals(citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    s.copy_rows("t", [[i] for i in range(10)])
    text = "\n".join(
        r[0] for r in s.execute("EXPLAIN ANALYZE SELECT count(*) FROM t").rows
    )
    assert "actual rows=1" in text
    # Per-task actuals plus the statement-level execution summary.
    assert "Task on" in text
    assert "Execution: rows=1 time=" in text


def test_citus_tables_view(citus_session):
    s = citus_session
    s.execute("CREATE TABLE t (k int PRIMARY KEY)")
    s.execute("SELECT create_distributed_table('t', 'k')")
    s.execute("CREATE TABLE r (id int PRIMARY KEY)")
    s.execute("SELECT create_reference_table('r')")
    rows = s.execute("SELECT citus_tables()").scalar()
    kinds = {name: kind for name, kind, *_rest in rows}
    assert kinds["t"] == "distributed"
    assert kinds["r"] == "reference"
